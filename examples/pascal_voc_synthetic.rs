//! Table-III-style comparison on the synthetic PASCAL-VOC-like dataset:
//! K-means, Otsu, IQFT (RGB) and IQFT (grayscale), scored by average
//! foreground/background mIOU and wall-clock runtime.
//!
//! ```text
//! cargo run --release --example pascal_voc_synthetic [num_images]
//! ```

use datasets::{LabeledImage, PascalVocLikeConfig, PascalVocLikeDataset};
use imaging::Segmenter;
use iqft_seg::{reduce_to_foreground, ForegroundPolicy};
use std::time::Instant;

/// Runs the four paper methods over `samples` and prints a Table-III-like
/// summary.  (The `experiments` crate offers the full-featured version of
/// this loop; the example keeps the logic visible.)
fn run_comparison(dataset_name: &str, samples: &[LabeledImage]) {
    let methods: Vec<(&str, Box<dyn Segmenter>)> = vec![
        ("K-means", Box::new(baselines::KMeansSegmenter::binary(42))),
        ("OTSU", Box::new(baselines::OtsuSegmenter::new())),
        (
            "IQFT (RGB)",
            Box::new(iqft_seg::IqftRgbSegmenter::paper_default()),
        ),
        (
            "IQFT (Grayscale)",
            Box::new(iqft_seg::IqftGraySegmenter::paper_default()),
        ),
    ];
    println!("Dataset: {dataset_name} ({} images)", samples.len());
    println!(
        "{:<18} {:>14} {:>16}",
        "Method", "Average mIOU", "Runtime (sec.)"
    );
    for (name, segmenter) in &methods {
        let mut total_miou = 0.0;
        let mut runtime = 0.0;
        for sample in samples {
            let start = Instant::now();
            let raw = segmenter.segment_rgb(&sample.image);
            runtime += start.elapsed().as_secs_f64();
            let binary = reduce_to_foreground(
                &raw,
                ForegroundPolicy::LargestIsBackground,
                Some(&sample.image),
                None,
            );
            total_miou += metrics::mean_iou(&binary, &sample.ground_truth);
        }
        println!(
            "{:<18} {:>14.4} {:>16.3}",
            name,
            total_miou / samples.len() as f64,
            runtime
        );
    }
}

fn main() {
    let num_images: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let samples: Vec<_> = PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: num_images,
        width: 160,
        height: 120,
        seed: 2012,
        ..PascalVocLikeConfig::default()
    })
    .iter()
    .collect();
    run_comparison("PASCAL VOC 2012 (synthetic stand-in)", &samples);
    println!();
    println!("For the full Table III (both datasets, win rates, poor-image fractions):");
    println!("  cargo run --release -p experiments --bin iqft-experiments -- table3");
}
