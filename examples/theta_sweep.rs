//! θ exploration (the paper's Table I, Table II and Fig. 6 in one place):
//! prints the θ ↔ threshold table, the reachable segment counts, and the
//! per-image effect of θ on a synthetic scene, then runs the per-image θ
//! search of Fig. 10.
//!
//! ```text
//! cargo run --release --example theta_sweep
//! ```

use datasets::{PascalVocLikeConfig, PascalVocLikeDataset};
use imaging::Segmenter;
use iqft_seg::analysis::{count_segments, table2_rows};
use iqft_seg::theta::{table1_rows, thresholds_for_theta};
use iqft_seg::{AutoThetaSearch, IqftRgbSegmenter, ThetaParams};
use std::f64::consts::PI;

fn main() {
    println!("== θ and the corresponding threshold values (eq. 15, Table I) ==");
    for row in table1_rows() {
        let thresholds: Vec<String> = row.thresholds.iter().map(|t| format!("{t:.3}")).collect();
        println!(
            "  θ = {:<6} → I_th = {}",
            row.theta_label,
            thresholds.join(", ")
        );
    }
    println!(
        "  θ = 4π     → I_th = {:?}  (eq. 16)",
        thresholds_for_theta(4.0 * PI)
    );

    println!("\n== θ and the reachable number of segments (Table II, 20k samples) ==");
    for row in table2_rows(20_000, 7) {
        println!("  {:<28} {}", row.label, row.max_segments);
    }

    println!("\n== effect of θ on a real scene (Fig. 6) ==");
    let scene = PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: 1,
        width: 128,
        height: 96,
        seed: 606,
        ..PascalVocLikeConfig::default()
    })
    .sample(0);
    for (name, thetas) in [
        ("π/4", ThetaParams::uniform(PI / 4.0)),
        ("π/2", ThetaParams::uniform(PI / 2.0)),
        ("π", ThetaParams::uniform(PI)),
        ("2π", ThetaParams::uniform(2.0 * PI)),
        ("mixed", ThetaParams::mixed()),
    ] {
        let labels = IqftRgbSegmenter::new(thetas).segment_rgb(&scene.image);
        println!("  θ = {name:<6} → {} segment(s)", count_segments(&labels));
    }

    println!("\n== per-image θ adjustment (Fig. 10, unsupervised criterion) ==");
    let result = AutoThetaSearch::default().best_unsupervised(&scene.image);
    println!(
        "  best θ = {:.3}π (score {:.4}); candidates: {}",
        result.theta / PI,
        result.score,
        result
            .candidate_scores
            .iter()
            .map(|(t, s)| format!("{:.2}π→{s:.3}", t / PI))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
