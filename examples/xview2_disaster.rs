//! Building-footprint segmentation on the synthetic xVIEW2-like satellite
//! tiles — the paper's second evaluation dataset, where the IQFT-inspired
//! method shows its largest margin over the baselines.
//!
//! ```text
//! cargo run --release --example xview2_disaster [num_tiles]
//! ```

use datasets::{XViewLikeConfig, XViewLikeDataset};
use imaging::{io, labels, Segmenter};
use iqft_seg::{reduce_to_foreground, ForegroundPolicy, IqftRgbSegmenter};

fn main() {
    let num_tiles: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let dataset = XViewLikeDataset::new(XViewLikeConfig {
        len: num_tiles,
        width: 160,
        height: 160,
        seed: 1480,
        ..XViewLikeConfig::default()
    });

    let iqft = IqftRgbSegmenter::paper_default();
    let kmeans = baselines::KMeansSegmenter::binary(7);
    let otsu = baselines::OtsuSegmenter::new();

    let mut sums = [0.0f64; 3];
    let mut iqft_wins = 0usize;
    for sample in dataset.iter() {
        let mut mious = [0.0f64; 3];
        for (slot, segmenter) in [&iqft as &dyn Segmenter, &kmeans, &otsu].iter().enumerate() {
            let raw = segmenter.segment_rgb(&sample.image);
            let binary = reduce_to_foreground(
                &raw,
                ForegroundPolicy::LargestIsBackground,
                Some(&sample.image),
                None,
            );
            mious[slot] = metrics::mean_iou(&binary, &sample.ground_truth);
            sums[slot] += mious[slot];
        }
        if mious[0] > mious[1] && mious[0] > mious[2] {
            iqft_wins += 1;
        }
    }
    let n = num_tiles as f64;
    println!("xVIEW2-like synthetic tiles ({num_tiles} tiles, building-footprint foreground)");
    println!("Average mIOU  IQFT (RGB): {:.4}", sums[0] / n);
    println!("Average mIOU  K-means   : {:.4}", sums[1] / n);
    println!("Average mIOU  Otsu      : {:.4}", sums[2] / n);
    println!(
        "IQFT (RGB) is the best method on {iqft_wins}/{num_tiles} tiles ({:.1}%)",
        100.0 * iqft_wins as f64 / n
    );

    // Render one qualitative example.
    let sample = dataset.sample(0);
    let seg = iqft.segment_rgb(&sample.image);
    let out_dir = std::env::temp_dir().join("iqft-xview2");
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    io::save_ppm(&sample.image, out_dir.join("tile.ppm")).expect("write tile");
    io::save_ppm(&labels::render_labels(&seg), out_dir.join("segments.ppm"))
        .expect("write segmentation");
    println!("wrote tile.ppm / segments.ppm to {}", out_dir.display());
}
