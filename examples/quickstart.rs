//! Quickstart: segment one synthetic scene with the IQFT-inspired RGB
//! algorithm and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use datasets::{PascalVocLikeConfig, PascalVocLikeDataset};
use imaging::{io, labels, Segmenter};
use iqft_seg::{reduce_to_foreground, ForegroundPolicy, IqftRgbSegmenter};

fn main() {
    // 1. Get an image.  Here: one synthetic PASCAL-VOC-like scene (replace
    //    with `imaging::io::load_ppm` to segment your own image).
    let dataset = PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: 1,
        width: 160,
        height: 120,
        seed: 7,
        ..PascalVocLikeConfig::default()
    });
    let sample = dataset.sample(0);
    println!(
        "image: {} ({}x{})",
        sample.id,
        sample.image.width(),
        sample.image.height()
    );

    // 2. Segment it with the paper's default configuration (θ1=θ2=θ3=π).
    let segmenter = IqftRgbSegmenter::paper_default();
    let segmentation = segmenter.segment_rgb(&sample.image);

    // 3. Inspect the result: per-label pixel census.
    println!("label census (label, pixels):");
    for (label, count) in labels::label_census(&segmentation) {
        println!("  |{label:03b}⟩  {count}");
    }

    // 4. Reduce to a foreground/background mask and score against the
    //    synthetic ground truth.
    let binary = reduce_to_foreground(
        &segmentation,
        ForegroundPolicy::LargestIsBackground,
        Some(&sample.image),
        None,
    );
    let breakdown = metrics::miou_fg_bg(&binary, &sample.ground_truth);
    println!(
        "foreground/background mIOU = {:.4} (fg IOU {:.4}, bg IOU {:.4})",
        breakdown.miou, breakdown.foreground, breakdown.background
    );

    // 5. Write the input and the rendered segmentation next to the binary.
    let out_dir = std::env::temp_dir().join("iqft-quickstart");
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    io::save_ppm(&sample.image, out_dir.join("input.ppm")).expect("write input");
    io::save_ppm(
        &labels::render_labels(&segmentation),
        out_dir.join("segments.ppm"),
    )
    .expect("write segmentation");
    io::save_ppm(
        &labels::render_binary(&binary),
        out_dir.join("foreground.ppm"),
    )
    .expect("write mask");
    println!(
        "wrote input.ppm / segments.ppm / foreground.ppm to {}",
        out_dir.display()
    );
}
