//! Cross-check of the classical "IQFT-inspired" pipeline against a genuine
//! quantum simulation: for a handful of pixels, compare Algorithm 1's
//! probability vector to the measurement distribution of the 3-qubit IQFT
//! circuit applied to the phase-encoded register, and verify the QFT circuit
//! against the DFT unitary.
//!
//! ```text
//! cargo run --release --example quantum_crosscheck
//! ```

use imaging::Rgb;
use iqft_seg::IqftRgbSegmenter;
use quantum::{circuit::qft_circuit_deviation, phase_product_state, Circuit};

fn main() {
    println!("== QFT / IQFT circuit vs DFT matrix ==");
    for n in 1..=5 {
        println!(
            "  {n} qubit(s): max |circuit - matrix| = {:.2e}",
            qft_circuit_deviation(n)
        );
    }

    println!("\n== Algorithm 1 vs 3-qubit IQFT measurement distribution ==");
    let segmenter = IqftRgbSegmenter::paper_default();
    let pixels = [
        Rgb::new(0, 0, 0),
        Rgb::new(255, 255, 255),
        Rgb::new(170, 40, 220),
        Rgb::new(63, 191, 127),
    ];
    for pixel in pixels {
        let [gamma, beta, alpha] = segmenter.phases(pixel);
        // The paper's eq. 11 register order: α on the most significant qubit.
        let mut state = phase_product_state(&[alpha, beta, gamma]);
        Circuit::iqft(3).apply(&mut state);
        let classical = segmenter.probabilities(pixel);
        let quantum_probs = state.probabilities();
        let max_diff = classical
            .iter()
            .zip(quantum_probs.iter())
            .map(|(c, q)| (c - q).abs())
            .fold(0.0f64, f64::max);
        println!(
            "  pixel ({:>3},{:>3},{:>3}): label {} (quantum argmax {}), max probability difference {:.2e}",
            pixel.r(),
            pixel.g(),
            pixel.b(),
            segmenter.classify(pixel),
            state.most_probable(),
            max_diff
        );
    }
    println!(
        "\nThe classical pipeline is numerically identical to measuring the IQFT output register."
    );
}
