//! Run the segmentation service end to end in one process: boot an
//! `iqft-serve` daemon (with a result cache) on an ephemeral loopback port,
//! segment a synthetic scene over the wire, compare against a local pass,
//! hit the cache, pipeline a burst of requests, read the server's
//! statistics, and drain it.
//!
//! ```text
//! cargo run --release --example segmentation_service
//! ```
//!
//! For a real deployment shape (daemon in one process, traffic from
//! another), use the CLI instead:
//!
//! ```text
//! iqft-experiments serve   --addr 127.0.0.1:7870 --classifier table --tile 48x48 --cache-mb 64
//! iqft-experiments loadgen --addr 127.0.0.1:7870 --clients 4 --images 32 \
//!                          --pipeline 4 --repeat-ratio 0.8 --shutdown
//! ```

use datasets::{PascalVocLikeConfig, PascalVocLikeDataset};
use imaging::Segmenter;
use iqft_pipeline::CacheConfig;
use iqft_seg::IqftRgbSegmenter;
use iqft_serve::{Client, ClientConfig, SegmentOutcome, Server, ServerConfig};
use seg_engine::{SegmentPlan, Tiling};

fn main() {
    // 1. Boot the daemon: one warm pipeline (phase-table classifier, tiled
    //    fan-out) plus a 64 MiB content-addressed result cache behind a TCP
    //    listener on an ephemeral port.
    let plan = SegmentPlan::default().with_tiling(Tiling::Tiles {
        width: 48,
        height: 48,
    });
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig::new(plan)
            .with_max_inflight(2)
            .with_cache(CacheConfig::with_capacity_mb(64)),
    )
    .expect("bind loopback");
    println!(
        "serving on {} with [{}] ({} mode)",
        server.local_addr(),
        plan.describe(),
        server.mode().as_str()
    );

    // 2. Get an image (one synthetic PASCAL-VOC-like scene).
    let sample = PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: 1,
        width: 160,
        height: 120,
        seed: 7,
        ..PascalVocLikeConfig::default()
    })
    .sample(0);

    // 3. Segment it over the wire.  The client is built from a
    //    `ClientConfig` — endpoints, pipeline depth, deadlines, and the
    //    retry-on-Busy policy all live on the config.
    let config = ClientConfig::new(server.local_addr().to_string()).with_pipeline_depth(4);
    let mut client = Client::open(&config).expect("connect");
    client.ping().expect("ping");
    let (remote, _) = client
        .segment(&sample.image)
        .expect("segment over the wire")
        .unwrap_done();

    // 4. The reply is byte-identical to a local in-process pass.
    let local = IqftRgbSegmenter::paper_default().segment_rgb(&sample.image);
    assert_eq!(remote, local, "wire output must match the local pass");
    println!(
        "segmented {}x{} over the wire; byte-identical to the local pass",
        sample.image.width(),
        sample.image.height()
    );

    // 5. The same image through the cache: the first cached request misses
    //    and stores, the second is answered from the cache — byte-identical.
    let (miss, was_hit) = client
        .segment_cached(&sample.image, false)
        .expect("cached segment (miss)")
        .unwrap_done();
    assert!(!was_hit, "cold cache must miss");
    let (hit, was_hit) = client
        .segment_cached(&sample.image, false)
        .expect("cached segment (hit)")
        .unwrap_done();
    assert!(was_hit, "warm cache must hit");
    assert_eq!(miss, local);
    assert_eq!(hit, local, "cache hit must be byte-identical");
    println!("cache hit byte-identical to the fresh segmentation");

    // 6. Pipeline a burst: four requests in flight on one connection (the
    //    config's pipeline depth), replies matched back by id.
    let burst = vec![&sample.image; 4];
    let replies = client
        .segment_pipelined(&burst, true)
        .expect("pipelined burst");
    assert!(replies.iter().all(|reply| matches!(
        reply,
        SegmentOutcome::Done { labels, cached: true } if labels == &local
    )));
    println!("pipelined burst of {} served from the cache", replies.len());

    // 7. Ask the server how it is doing.
    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} requests ({} segment), {:.3} Mpx, arena {} reuses / {} allocations, \
         cache {} hits / {} misses",
        stats.requests_total,
        stats.segment_requests,
        stats.pixels_total as f64 / 1e6,
        stats.arena_reuses,
        stats.arena_allocations,
        stats.cache_hits,
        stats.cache_misses,
    );

    // 8. Drain and stop.
    client.shutdown().expect("shutdown");
    server.join();
    println!("server drained and stopped");
}
