//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind the `parking_lot` API shape:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s.  Poisoning is deliberately ignored (`parking_lot` has no
//! poisoning either): a panic while holding a lock leaves the data in
//! whatever state it was, exactly like the real crate.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual exclusion lock with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trips_values() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_allows_concurrent_reads_and_exclusive_writes() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn locks_survive_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() = 5;
        assert_eq!(*m.lock(), 5);
    }
}
