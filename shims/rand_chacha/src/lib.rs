//! Offline shim for `rand_chacha`: a deterministic, seedable generator with
//! the `ChaCha8Rng` name and the `rand` trait plumbing the workspace expects.
//!
//! The build container has no crates.io access, so instead of the real ChaCha8
//! stream cipher this shim runs **xoshiro256++** seeded through SplitMix64 —
//! the construction its authors recommend.  The workspace only relies on
//! determinism for a fixed seed and reasonable equidistribution (synthetic
//! dataset generation, k-means++ restarts), both of which xoshiro256++
//! provides; no output is ever compared against real ChaCha8 streams.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator standing in for `rand_chacha::ChaCha8Rng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        Self {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna 2019).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..50).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..50).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..50).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn roughly_uniform_unit_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn integer_ranges_cover_endpoints() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
