//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::channel::{unbounded, Sender, Receiver}` with clonable
//! multi-producer multi-consumer endpoints.
//!
//! Implemented as a `Mutex<VecDeque>` + `Condvar` queue.  `recv` blocks until
//! an item arrives or every `Sender` is dropped; `send` fails once every
//! `Receiver` is gone.  Throughput is far below real crossbeam, but the
//! workspace only pushes boxed jobs through it (see `xpar::ThreadPool`).

pub mod channel {
    //! MPMC channel with the `crossbeam-channel` API shape.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        available: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug without requiring T: Debug (the payload may
    // be an opaque closure).
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .available
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn values_flow_in_order_through_one_receiver() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn cloned_receivers_split_the_work() {
            let (tx, rx) = unbounded::<usize>();
            let seen = std::sync::Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                let seen = std::sync::Arc::clone(&seen);
                handles.push(std::thread::spawn(move || {
                    while rx.recv().is_ok() {
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(seen.load(Ordering::Relaxed), 100);
        }
    }
}
