//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal, API-compatible stand-in instead of the real crate.  Only
//! the surface actually consumed by the workspace is provided:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<f64>()`, `gen::<bool>()` and
//!   `gen_range` over integer and float ranges (half-open and inclusive);
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::choose`].
//!
//! The statistical requirements of the workspace are modest (synthetic dataset
//! generation, k-means++ seeding, noise injection); determinism for a fixed
//! seed is the property the tests rely on, and every generator here is fully
//! deterministic.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values that can be sampled uniformly from an [`RngCore`] ("Standard"
/// distribution in real `rand` terms).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn uniformly from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty range in gen_range");
        let unit = f64::sample(rng);
        start + unit * (end - start)
    }
}

/// The user-facing random number generator interface.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod seq {
    //! Sequence-related helpers (`SliceRandom`).

    use super::RngCore;

    /// Extension trait for random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if the slice is
        /// empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — full 2^64 period.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::SmallRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(-25i32..=35);
            assert!((-25..=35).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn bools_hit_both_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((300..700).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = SmallRng::seed_from_u64(4);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &v = items.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
