//! Offline shim for the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! The build container has no crates.io access, so the 13 bench targets link
//! against this minimal harness instead of real criterion.  It measures wall
//! clock only — no outlier rejection, no plots — but keeps the same source
//! API (`criterion_group!`, `criterion_main!`, groups, `bench_with_input`,
//! throughput annotations), so swapping the real crate back in is a one-line
//! manifest change.
//!
//! Results are printed one line per benchmark.  Set `CRITERION_JSON=<path>`
//! to also append machine-readable records (one JSON object per line) — the
//! workspace uses this to snapshot baselines such as
//! `BENCH_parallel_scaling.json`.

use std::io::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement, exported via `CRITERION_JSON`.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    bench: String,
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
    throughput_elems: Option<u64>,
}

fn records() -> &'static Mutex<Vec<Record>> {
    static RECORDS: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Writes every collected record to `$CRITERION_JSON` (JSON lines, append).
///
/// Called automatically by [`criterion_main!`]; harmless when the variable is
/// unset.
pub fn export_json_if_requested() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("criterion shim: cannot open {path} for JSON export");
        return;
    };
    for r in records().lock().unwrap().iter() {
        let throughput = match r.throughput_elems {
            Some(n) => format!(
                ",\"throughput_elems\":{n},\"elems_per_sec\":{:.1}",
                n as f64 / (r.mean_ns * 1e-9)
            ),
            None => String::new(),
        };
        let _ = writeln!(
            file,
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"iters\":{}{}}}",
            r.group, r.bench, r.mean_ns, r.min_ns, r.iters, throughput
        );
    }
}

/// Identifies a benchmark within a group (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Units-of-work annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    sample_count: u64,
}

impl Bencher<'_> {
    /// Times `routine`, running it enough times to fill the configured
    /// sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed call warms caches and gives a cost estimate.
        black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the shim has no separate warm-up
    /// phase beyond the one untimed call in [`Bencher::iter`].
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a units-of-work throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, bench_name: &str, mut f: F) {
        if let Some(filter) = &self.criterion.filter {
            let full = format!("{}/{}", self.name, bench_name);
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibration pass: one sample of one iteration.
        let mut calibration: Vec<Duration> = Vec::new();
        {
            let mut b = Bencher {
                samples: &mut calibration,
                iters_per_sample: 1,
                sample_count: 1,
            };
            f(&mut b);
        }
        let per_iter = calibration
            .first()
            .copied()
            .unwrap_or(Duration::from_nanos(1))
            .max(Duration::from_nanos(1));
        // Scale iterations so sample_size samples fit the measurement budget.
        let budget = self.measurement_time.as_secs_f64();
        let iters_total = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;
        let iters_per_sample = (iters_total / self.sample_size).max(1);

        let mut samples: Vec<Duration> = Vec::new();
        {
            let mut b = Bencher {
                samples: &mut samples,
                iters_per_sample,
                sample_count: self.sample_size,
            };
            f(&mut b);
        }
        let per_sample_ns: Vec<f64> = samples
            .iter()
            .map(|d| d.as_nanos() as f64 / iters_per_sample as f64)
            .collect();
        let iters = iters_per_sample * per_sample_ns.len().max(1) as u64;
        let mean_ns = per_sample_ns.iter().sum::<f64>() / per_sample_ns.len().max(1) as f64;
        let min_ns = per_sample_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let throughput_elems = match self.throughput {
            Some(Throughput::Elements(n)) => Some(n),
            _ => None,
        };
        let full = format!("{}/{}", self.name, bench_name);
        match throughput_elems {
            Some(n) => println!(
                "bench {full:<60} mean {:>12.1} ns/iter  min {:>12.1} ns/iter  {:>12.0} elem/s",
                mean_ns,
                min_ns,
                n as f64 / (mean_ns * 1e-9)
            ),
            None => println!(
                "bench {full:<60} mean {:>12.1} ns/iter  min {:>12.1} ns/iter",
                mean_ns, min_ns
            ),
        }
        records().lock().unwrap().push(Record {
            group: self.name.clone(),
            bench: bench_name.to_string(),
            mean_ns,
            min_ns,
            iters,
            throughput_elems,
        });
    }

    /// Ends the group (printing is incremental, so this is a no-op marker).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line configuration (`cargo bench` passes `--bench`
    /// plus an optional substring filter; everything unknown is ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--verbose" | "--quiet" | "--noplot" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size"
                | "--warm-up-time" => {
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any explicit group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("crate").bench_function(id, f);
        self
    }
}

/// Declares a group function that runs each listed benchmark with a fresh
/// [`Criterion`], mirroring real criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench target with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::export_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_measure_and_record() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("shim_selftest");
            g.sample_size(3)
                .measurement_time(Duration::from_millis(5))
                .throughput(Throughput::Elements(100));
            g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
            g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        let recs = records().lock().unwrap();
        let ours: Vec<_> = recs.iter().filter(|r| r.group == "shim_selftest").collect();
        assert_eq!(ours.len(), 2);
        assert!(ours.iter().all(|r| r.mean_ns > 0.0 && r.iters >= 3));
        assert_eq!(ours[0].throughput_elems, Some(100));
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("128x128", "serial").id, "128x128/serial");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
