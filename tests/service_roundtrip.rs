//! Loopback integration tests for the `iqft-serve` daemon.
//!
//! The acceptance bar for the serving layer: output through the wire is
//! **byte-identical** to a direct `SegmentEngine::segment_rgb` pass for
//! every classifier kind, under concurrent clients, and graceful shutdown
//! drains in-flight requests — a request whose bytes reached the server is
//! always answered.

use imaging::{LabelMap, Rgb, RgbImage};
use iqft_seg::IqftClassifier;
use iqft_serve::{protocol, Client, Message, Server, ServerConfig};
use seg_engine::{ClassifierKind, SegmentEngine, SegmentPlan, Tiling};
use std::io::Write as _;
use std::net::TcpStream;

fn test_images(count: usize) -> Vec<RgbImage> {
    (0..count)
        .map(|i| {
            RgbImage::from_fn(41 + i % 7, 29 + i % 5, move |x, y| {
                Rgb::new(
                    (x * 13 + i * 31) as u8,
                    (y * 17 + i * 7) as u8,
                    ((x + y) * 11) as u8,
                )
            })
        })
        .collect()
}

fn reference_labels(images: &[RgbImage]) -> Vec<LabelMap> {
    let exact = IqftClassifier::paper_default(ClassifierKind::Exact);
    images
        .iter()
        .map(|img| SegmentEngine::serial().segment_rgb(&exact, img))
        .collect()
}

/// Concurrent clients × {exact, lut, table}: every reply must match the
/// direct engine pass byte for byte, whole-image and tiled.
#[test]
fn concurrent_clients_get_byte_identical_labels_for_every_classifier() {
    let images = test_images(12);
    let reference = reference_labels(&images);
    for kind in ClassifierKind::ALL {
        for tiling in [
            Tiling::Whole,
            Tiling::Tiles {
                width: 16,
                height: 16,
            },
        ] {
            let plan = SegmentPlan::default()
                .with_classifier(kind)
                .with_tiling(tiling);
            let server = Server::bind(
                "127.0.0.1:0",
                ServerConfig {
                    plan,
                    max_inflight: 2,
                },
            )
            .expect("ephemeral bind");
            let addr = server.local_addr();

            let clients = 3usize;
            std::thread::scope(|scope| {
                for client_idx in 0..clients {
                    let images = &images;
                    let reference = &reference;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        client.ping().expect("ping");
                        for (idx, img) in images.iter().enumerate() {
                            if idx % clients != client_idx {
                                continue;
                            }
                            let labels = client.segment(img).expect("segment");
                            assert_eq!(
                                labels, reference[idx],
                                "image {idx} via {kind} tile={tiling}"
                            );
                        }
                    });
                }
            });

            let mut probe = Client::connect(addr).expect("probe connect");
            let stats = probe.stats().expect("stats");
            assert_eq!(stats.segment_requests, images.len(), "{kind} {tiling}");
            assert_eq!(
                stats.pixels_total,
                images.iter().map(|i| i.len() as u64).sum::<u64>()
            );
            assert_eq!(stats.plan, plan.to_spec());
            assert_eq!(SegmentPlan::from_spec(&stats.plan).unwrap(), plan);
            probe.shutdown().expect("shutdown ack");
            server.join();
        }
    }
}

/// Graceful shutdown must answer requests whose bytes were already on the
/// wire: N connections each write a Segment frame *without reading*, then a
/// separate connection sends Shutdown, and only afterwards do the clients
/// read — every reply must still arrive, byte-identical.
#[test]
fn shutdown_drains_in_flight_requests_without_losing_replies() {
    let images = test_images(4);
    let reference = reference_labels(&images);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            plan: SegmentPlan::default(),
            max_inflight: 1, // serialise execution to keep requests queued longer
        },
    )
    .expect("ephemeral bind");
    let addr = server.local_addr();

    // Write one frame per connection, do not read yet.
    let mut streams: Vec<TcpStream> = Vec::new();
    for (idx, img) in images.iter().enumerate() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let frame = protocol::encode_message(idx as u64, &Message::Segment { image: img.clone() })
            .expect("encode");
        stream.write_all(&frame).expect("write frame");
        stream.flush().expect("flush");
        streams.push(stream);
    }

    // Shut the server down while those requests are in flight.
    let mut ctl = Client::connect(addr).expect("ctl connect");
    ctl.shutdown().expect("shutdown ack");

    // Every already-sent request still gets its reply before the drain ends.
    for (idx, mut stream) in streams.into_iter().enumerate() {
        let (id, reply) = protocol::read_message(&mut stream).expect("reply arrives");
        assert_eq!(id, idx as u64);
        match reply {
            Message::SegmentReply { labels } => {
                assert_eq!(labels, reference[idx], "in-flight image {idx}")
            }
            other => panic!("expected SegmentReply for image {idx}, got {other:?}"),
        }
    }
    server.join();

    // The drained server is really gone: fresh traffic fails.
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut client) => client.ping().is_err(),
    };
    assert!(refused, "server accepted traffic after draining");
}

/// `segment` on an empty (0×0) image round-trips; malformed dimensions are
/// answered with a protocol error frame, not a dead connection.
#[test]
fn degenerate_and_malformed_requests_are_handled_cleanly() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let empty = RgbImage::from_fn(0, 0, |_, _| Rgb::new(0, 0, 0));
    let mut client = Client::connect(addr).expect("connect");
    let labels = client.segment(&empty).expect("empty segment");
    assert_eq!(labels.len(), 0);

    // A Segment frame whose payload length disagrees with its dimensions.
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    let mut frame = protocol::encode_message(
        9,
        &Message::Segment {
            image: RgbImage::from_fn(4, 4, |_, _| Rgb::new(1, 2, 3)),
        },
    )
    .expect("encode");
    // Corrupt the declared width (payload starts after the 20-byte header).
    frame[protocol::HEADER_LEN..protocol::HEADER_LEN + 4].copy_from_slice(&100u32.to_le_bytes());
    stream.write_all(&frame).expect("write");
    let (id, reply) = protocol::read_message(&mut stream).expect("error reply");
    assert_eq!(id, 9);
    assert!(
        matches!(reply, Message::Error { ref message } if message.contains("payload")),
        "{reply:?}"
    );

    // The server survived the malformed frame.
    client.ping().expect("still alive");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.protocol_errors, 1);
    client.shutdown().expect("shutdown");
    server.join();
}
