//! Loopback integration tests for the `iqft-serve` daemon.
//!
//! The acceptance bar for the serving layer: output through the wire is
//! **byte-identical** to a direct `SegmentEngine::segment_rgb` pass for
//! every classifier kind, under concurrent clients, and graceful shutdown
//! drains in-flight requests — a request whose bytes reached the server is
//! always answered.
//!
//! Every scenario runs against **both serving cores** ([`BOTH_MODES`]): the
//! thread-per-connection mode and the evented readiness loop must produce
//! byte-identical replies and the same statistics invariants for identical
//! traffic.

use imaging::{LabelMap, Rgb, RgbImage};
use iqft_pipeline::CacheConfig;
use iqft_seg::IqftClassifier;
use iqft_serve::{
    protocol, Client, ClientConfig, Message, SegmentOutcome, ServeMode, Server, ServerConfig,
};
use seg_engine::{ClassifierKind, SegmentEngine, SegmentPlan, Tiling};
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Every test runs its server under both serving cores.
const BOTH_MODES: [ServeMode; 2] = [ServeMode::Threads, ServeMode::Evented];

/// Unwraps a pipelined [`SegmentOutcome`] in tests that run below the
/// admission limit, where a Busy shed would be a bug.
fn done(outcome: &SegmentOutcome) -> (&LabelMap, bool) {
    match outcome {
        SegmentOutcome::Done { labels, cached } => (labels, *cached),
        other => panic!("expected Done below the admission limit, got {other:?}"),
    }
}

/// Opens a client on the new builder config; single-endpoint tests only
/// need the address.
fn open_client(addr: std::net::SocketAddr) -> std::io::Result<Client> {
    Client::open(&ClientConfig::new(addr.to_string()))
}

/// Same, with an explicit pipeline window for the burst tests.
fn open_client_depth(addr: std::net::SocketAddr, depth: usize) -> std::io::Result<Client> {
    Client::open(&ClientConfig::new(addr.to_string()).with_pipeline_depth(depth))
}

fn test_images(count: usize) -> Vec<RgbImage> {
    (0..count)
        .map(|i| {
            RgbImage::from_fn(41 + i % 7, 29 + i % 5, move |x, y| {
                Rgb::new(
                    (x * 13 + i * 31) as u8,
                    (y * 17 + i * 7) as u8,
                    ((x + y) * 11) as u8,
                )
            })
        })
        .collect()
}

fn reference_labels(images: &[RgbImage]) -> Vec<LabelMap> {
    let exact = IqftClassifier::paper_default(ClassifierKind::Exact);
    images
        .iter()
        .map(|img| SegmentEngine::serial().segment_rgb(&exact, img))
        .collect()
}

/// Concurrent clients × {exact, lut, table}: every reply must match the
/// direct engine pass byte for byte, whole-image and tiled.
#[test]
fn concurrent_clients_get_byte_identical_labels_for_every_classifier() {
    let images = test_images(12);
    let reference = reference_labels(&images);
    for mode in BOTH_MODES {
        for kind in ClassifierKind::ALL {
            for tiling in [
                Tiling::Whole,
                Tiling::Tiles {
                    width: 16,
                    height: 16,
                },
            ] {
                let plan = SegmentPlan::default()
                    .with_classifier(kind)
                    .with_tiling(tiling);
                let server = Server::bind(
                    "127.0.0.1:0",
                    ServerConfig::new(plan).with_max_inflight(2).with_mode(mode),
                )
                .expect("ephemeral bind");
                let addr = server.local_addr();

                let clients = 3usize;
                std::thread::scope(|scope| {
                    for client_idx in 0..clients {
                        let images = &images;
                        let reference = &reference;
                        scope.spawn(move || {
                            let mut client = open_client(addr).expect("connect");
                            client.ping().expect("ping");
                            for (idx, img) in images.iter().enumerate() {
                                if idx % clients != client_idx {
                                    continue;
                                }
                                let (labels, _) =
                                    client.segment(img).expect("segment").unwrap_done();
                                assert_eq!(
                                    labels, reference[idx],
                                    "image {idx} via {kind} tile={tiling} ({mode})"
                                );
                            }
                        });
                    }
                });

                let mut probe = open_client(addr).expect("probe connect");
                let stats = probe.stats().expect("stats");
                assert_eq!(
                    stats.segment_requests,
                    images.len(),
                    "{kind} {tiling} {mode}"
                );
                assert_eq!(
                    stats.pixels_total,
                    images.iter().map(|i| i.len() as u64).sum::<u64>()
                );
                assert_eq!(stats.plan, plan.to_spec());
                assert_eq!(SegmentPlan::from_spec(&stats.plan).unwrap(), plan);
                assert_eq!(stats.serve_mode, server.mode().as_str(), "{stats:?}");
                probe.shutdown().expect("shutdown ack");
                server.join();
            }
        }
    }
}

/// Graceful shutdown must answer requests whose bytes were already on the
/// wire: N connections each write a Segment frame *without reading*, then a
/// separate connection sends Shutdown, and only afterwards do the clients
/// read — every reply must still arrive, byte-identical.
#[test]
fn shutdown_drains_in_flight_requests_without_losing_replies() {
    let images = test_images(4);
    let reference = reference_labels(&images);
    for mode in BOTH_MODES {
        let server = Server::bind(
            "127.0.0.1:0",
            // One worker serialises execution to keep requests queued longer.
            ServerConfig::new(SegmentPlan::default())
                .with_max_inflight(1)
                .with_mode(mode),
        )
        .expect("ephemeral bind");
        let addr = server.local_addr();

        // Write one frame per connection, do not read yet.
        let mut streams: Vec<TcpStream> = Vec::new();
        for (idx, img) in images.iter().enumerate() {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let frame =
                protocol::encode_message(idx as u64, &Message::Segment { image: img.clone() })
                    .expect("encode");
            stream.write_all(&frame).expect("write frame");
            stream.flush().expect("flush");
            streams.push(stream);
        }

        // Shut the server down while those requests are in flight.
        let mut ctl = open_client(addr).expect("ctl connect");
        ctl.shutdown().expect("shutdown ack");

        // Every already-sent request still gets its reply before the drain
        // ends.
        for (idx, mut stream) in streams.into_iter().enumerate() {
            let (id, reply) = protocol::read_message(&mut stream).expect("reply arrives");
            assert_eq!(id, idx as u64);
            match reply {
                Message::SegmentReply { labels } => {
                    assert_eq!(labels, reference[idx], "in-flight image {idx} ({mode})")
                }
                other => panic!("expected SegmentReply for image {idx}, got {other:?}"),
            }
        }
        server.join();

        // The drained server is really gone: fresh traffic fails.
        let refused = match open_client(addr) {
            Err(_) => true,
            Ok(mut client) => client.ping().is_err(),
        };
        assert!(refused, "server accepted traffic after draining ({mode})");
    }
}

/// Protocol v2: a v1 client hitting a v2 server gets a *typed* version
/// error frame — no panic, no hang, and the diagnostic names both versions.
#[test]
fn v1_client_gets_a_typed_version_error_not_a_hang() {
    for mode in BOTH_MODES {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(SegmentPlan::default()).with_mode(mode),
        )
        .expect("bind");
        let addr = server.local_addr();

        // Hand-roll a v1 frame: a valid v2 Ping frame with the version field
        // patched back to 1 — exactly the bytes a v1 client would send.
        let mut frame = protocol::encode_message(77, &Message::Ping).expect("encode");
        frame[4..6].copy_from_slice(&1u16.to_le_bytes());
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&frame).expect("write v1 frame");

        let (id, reply) = protocol::read_message(&mut stream).expect("typed error reply");
        assert_eq!(id, 77, "the version error echoes the v1 request id");
        match reply {
            Message::Error { message } => {
                assert!(message.contains("version 1"), "{message}");
                assert!(message.contains("expected 2"), "{message}");
            }
            other => panic!("expected a typed Error reply, got {other:?}"),
        }
        // The connection is closed after the error (framing may be lost)...
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("clean close");
        assert!(rest.is_empty());
        // ...and the server keeps serving v2 clients.
        let mut client = open_client(addr).expect("connect v2");
        client.ping().expect("still alive");
        let stats = client.stats().expect("stats");
        assert_eq!(stats.protocol_errors, 1, "{mode}");
        client.shutdown().expect("shutdown");
        server.join();
    }
}

/// Protocol v2 pipelining against a real server: a client streams all its
/// requests with several in flight and still gets every reply matched back
/// byte-identically, mixed cached and uncached.
#[test]
fn pipelined_requests_round_trip_byte_identically() {
    let images = test_images(10);
    let reference = reference_labels(&images);
    for mode in BOTH_MODES {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(SegmentPlan::default())
                .with_max_inflight(2)
                .with_cache(CacheConfig::with_capacity_mb(16))
                .with_mode(mode),
        )
        .expect("bind");
        let mut client = open_client_depth(server.local_addr(), 4).expect("connect");

        // Repeated traffic: every image requested twice in one pipelined
        // burst.
        let refs: Vec<&RgbImage> = images.iter().chain(images.iter()).collect();
        let replies = client
            .segment_pipelined(&refs, true)
            .expect("pipelined segment");
        assert_eq!(replies.len(), 20);
        for (k, reply) in replies.iter().enumerate() {
            let (labels, _cached) = done(reply);
            assert_eq!(labels, &reference[k % images.len()], "request {k} ({mode})");
        }
        // The second half repeats the first: the cache must have answered
        // them.
        let hits = replies.iter().filter(|reply| done(reply).1).count();
        assert_eq!(hits, 10, "every repeated image is a cache hit ({mode})");

        // Plain (uncached) pipelining works over the same connection too.
        let replies = client
            .segment_pipelined(&refs[..6], false)
            .expect("uncached pipelined segment");
        for (k, reply) in replies.iter().enumerate() {
            let (labels, cached) = done(reply);
            assert_eq!(labels, &reference[k % images.len()]);
            assert!(!cached, "plain Segment never reports a cache hit");
        }
        client.shutdown().expect("shutdown");
        server.join();
    }
}

/// Deadlock safety: a deep pipelined burst of frames far larger than any
/// socket buffer (here ~2.1 MB requests / ~2.8 MB replies, 16 in flight)
/// must complete — the client has to drain replies while it is still
/// writing requests, because the server writes each reply before reading
/// the next frame.
#[test]
fn deep_pipelined_burst_of_large_frames_does_not_deadlock() {
    let image = RgbImage::from_fn(1000, 700, |x, y| {
        Rgb::new((x / 4) as u8, (y / 3) as u8, ((x + y) / 7) as u8)
    });
    let expected = SegmentEngine::serial().segment_rgb(
        &IqftClassifier::paper_default(ClassifierKind::Table),
        &image,
    );
    for mode in BOTH_MODES {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(SegmentPlan::default())
                .with_max_inflight(2)
                .with_cache(CacheConfig::with_capacity_mb(64))
                .with_mode(mode),
        )
        .expect("bind");
        let mut client =
            open_client_depth(server.local_addr(), protocol::MAX_PIPELINE_DEPTH).expect("connect");
        let refs: Vec<&RgbImage> = (0..16).map(|_| &image).collect();
        let replies = client
            .segment_pipelined(&refs, true)
            .expect("deep burst completes");
        assert_eq!(replies.len(), 16);
        for (k, reply) in replies.iter().enumerate() {
            assert_eq!(done(reply).0, &expected, "request {k} ({mode})");
        }
        let hits = replies.iter().filter(|reply| done(reply).1).count();
        assert_eq!(hits, 15, "all repeats served from the cache ({mode})");
        client.shutdown().expect("shutdown");
        server.join();
    }
}

/// The client's pipelined reader must not rely on reply order: a mock
/// server reads a whole burst and answers it back-to-front.  The client
/// still returns results in input order, byte-identically.
#[test]
fn pipelined_replies_arriving_out_of_order_are_reordered_by_id() {
    let images = test_images(6);
    let reference = reference_labels(&images);
    let listener = TcpListener::bind("127.0.0.1:0").expect("mock bind");
    let addr = listener.local_addr().expect("addr");

    let mock = {
        let reference = reference.clone();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            // Collect the whole burst first...
            let mut requests = Vec::new();
            for _ in 0..6 {
                let (id, message) = protocol::read_message(&mut stream).expect("request");
                match message {
                    Message::SegmentCached { image, .. } => requests.push((id, image)),
                    other => panic!("mock expected SegmentCached, got {other:?}"),
                }
            }
            // ...then reply in reverse arrival order (a legal completion
            // order under protocol v2), alternating reply ops.
            for (k, (id, image)) in requests.into_iter().rev().enumerate() {
                let idx = images_index(&image);
                let labels = reference[idx].clone();
                let reply = if k % 2 == 0 {
                    Message::SegmentCachedReply {
                        labels,
                        cached: true,
                    }
                } else {
                    Message::SegmentReply { labels }
                };
                protocol::write_message(&mut stream, id, &reply).expect("reply");
            }
        })
    };

    // Identify which test image a mock-received frame carries.
    fn images_index(image: &RgbImage) -> usize {
        test_images(6)
            .iter()
            .position(|candidate| candidate == image)
            .expect("mock received an unknown image")
    }

    let mut client = open_client_depth(addr, 6).expect("connect");
    let refs: Vec<&RgbImage> = images.iter().collect();
    let replies = client
        .segment_pipelined(&refs, true)
        .expect("pipelined against mock");
    mock.join().expect("mock thread");
    assert_eq!(replies.len(), 6);
    for (k, reply) in replies.iter().enumerate() {
        assert_eq!(
            done(reply).0,
            &reference[k],
            "reply {k} reordered incorrectly"
        );
    }
}

/// Cache correctness under concurrency: several clients hammer the same
/// image set through the cache while eviction churns (tiny budget); every
/// reply — hit or miss — must be byte-identical to a fresh serial pass.
#[test]
fn concurrent_cached_clients_get_hit_and_miss_replies_byte_identical_to_fresh() {
    let images = test_images(8);
    let reference = reference_labels(&images);
    // A budget that holds only a few entries forces constant eviction.
    let entry_bytes = images[0].len() * 4 + 96;
    for mode in BOTH_MODES {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(SegmentPlan::default())
                .with_max_inflight(3)
                .with_cache(CacheConfig {
                    capacity_bytes: entry_bytes * 6,
                    shards: 2,
                })
                .with_mode(mode),
        )
        .expect("bind");
        let addr = server.local_addr();

        std::thread::scope(|scope| {
            for client_idx in 0..3usize {
                let images = &images;
                let reference = &reference;
                scope.spawn(move || {
                    let mut client = open_client(addr).expect("connect");
                    for round in 0..4 {
                        for step in 0..images.len() {
                            // Stagger the orders so clients race on the same
                            // keys.
                            let idx = (step + client_idx * 3 + round) % images.len();
                            let (labels, _cached) = client
                                .segment_cached(&images[idx], false)
                                .expect("cached segment")
                                .unwrap_done();
                            assert_eq!(
                                labels, reference[idx],
                                "client {client_idx} image {idx} ({mode})"
                            );
                        }
                    }
                });
            }
        });

        let mut probe = open_client(addr).expect("probe");
        let stats = probe.stats().expect("stats");
        assert!(stats.cache_hits > 0, "repeated traffic must hit: {stats:?}");
        assert!(stats.cache_misses > 0, "cold keys must miss: {stats:?}");
        assert!(
            stats.cache_bytes <= entry_bytes * 6,
            "budget respected: {stats:?}"
        );
        probe.shutdown().expect("shutdown");
        server.join();
    }
}

/// `segment` on an empty (0×0) image round-trips; malformed dimensions are
/// answered with a protocol error frame, not a dead connection.
#[test]
fn degenerate_and_malformed_requests_are_handled_cleanly() {
    for mode in BOTH_MODES {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(SegmentPlan::default()).with_mode(mode),
        )
        .expect("bind");
        let addr = server.local_addr();

        let empty = RgbImage::from_fn(0, 0, |_, _| Rgb::new(0, 0, 0));
        let mut client = open_client(addr).expect("connect");
        let (labels, _) = client.segment(&empty).expect("empty segment").unwrap_done();
        assert_eq!(labels.len(), 0);

        // A Segment frame whose payload length disagrees with its
        // dimensions.
        let mut stream = TcpStream::connect(addr).expect("connect raw");
        let mut frame = protocol::encode_message(
            9,
            &Message::Segment {
                image: RgbImage::from_fn(4, 4, |_, _| Rgb::new(1, 2, 3)),
            },
        )
        .expect("encode");
        // Corrupt the declared width (payload starts after the 20-byte
        // header).
        frame[protocol::HEADER_LEN..protocol::HEADER_LEN + 4]
            .copy_from_slice(&100u32.to_le_bytes());
        stream.write_all(&frame).expect("write");
        let (id, reply) = protocol::read_message(&mut stream).expect("error reply");
        assert_eq!(id, 9);
        assert!(
            matches!(reply, Message::Error { ref message } if message.contains("payload")),
            "{reply:?}"
        );

        // The server survived the malformed frame.
        client.ping().expect("still alive");
        let stats = client.stats().expect("stats");
        assert_eq!(stats.protocol_errors, 1, "{mode}");
        client.shutdown().expect("shutdown");
        server.join();
    }
}

/// The streaming-video delta path through the wire: stitched
/// `SegmentDelta` replies must be byte-identical to a fresh serial pass for
/// every tile shape (including one that does not divide the frame), every
/// fast-path classifier, and change rates from a static scene to a full
/// rewrite — and the per-reply tile counters must account for every tile.
#[test]
fn video_delta_replies_are_byte_identical_across_tilings_classifiers_and_change_rates() {
    let exact = IqftClassifier::paper_default(ClassifierKind::Exact);
    let (width, height) = (80usize, 60usize);
    for mode in BOTH_MODES {
        for kind in [
            ClassifierKind::Table,
            ClassifierKind::Quant,
            ClassifierKind::Simd,
        ] {
            for tiling in [
                Tiling::Whole,
                Tiling::Tiles {
                    width: 16,
                    height: 16,
                },
                // Deliberately not dividing 80x60: ragged edge tiles.
                Tiling::Tiles {
                    width: 53,
                    height: 37,
                },
            ] {
                let plan = SegmentPlan::default()
                    .with_classifier(kind)
                    .with_tiling(tiling);
                let (tile_w, tile_h) = tiling.delta_shape();
                let tiles_per_frame = (width.div_ceil(tile_w) * height.div_ceil(tile_h)) as u64;
                let server = Server::bind(
                    "127.0.0.1:0",
                    ServerConfig::new(plan)
                        .with_max_inflight(2)
                        .with_cache(CacheConfig::with_capacity_mb(16))
                        .with_mode(mode),
                )
                .expect("bind");
                let mut client = open_client(server.local_addr()).expect("connect");

                for change_rate in [0.0, 0.5, 1.0] {
                    let frames = datasets::synthetic_video(&datasets::VideoConfig {
                        frames: 4,
                        width,
                        height,
                        change_rate,
                        block: 32,
                        seed: 42,
                    });
                    for (idx, frame) in frames.iter().enumerate() {
                        let (reply, hit, recomputed) =
                            client.segment_delta(frame).expect("segment delta");
                        let (labels, _) = reply.unwrap_done();
                        let fresh = SegmentEngine::serial().segment_rgb(&exact, frame);
                        assert_eq!(
                            labels, fresh,
                            "frame {idx} cr={change_rate} {kind} {tiling} ({mode})"
                        );
                        assert_eq!(
                            u64::from(hit) + u64::from(recomputed),
                            tiles_per_frame,
                            "tile accounting, frame {idx} cr={change_rate} {tiling} ({mode})"
                        );
                        // A static scene after the first frame is pure hits.
                        if change_rate == 0.0 && idx > 0 {
                            assert_eq!(
                                recomputed, 0,
                                "static frame {idx} recomputed tiles ({tiling}, {mode})"
                            );
                        }
                    }
                }

                let stats = client.stats().expect("stats");
                assert!(
                    stats.delta_tiles_hit > 0,
                    "{kind} {tiling} {mode}: {stats:?}"
                );
                assert!(
                    stats.delta_tiles_recomputed > 0,
                    "{kind} {tiling} {mode}: {stats:?}"
                );
                client.shutdown().expect("shutdown");
                server.join();
            }
        }
    }
}

/// Delta correctness under concurrency and eviction churn: several clients
/// stream *different* videos through one server whose tile cache holds only
/// a fraction of the working set, so tiles race in and out of the cache the
/// whole time.  Every stitched reply must still match a fresh serial pass.
#[test]
fn concurrent_video_clients_stay_byte_identical_under_forced_tile_eviction() {
    let (width, height) = (64usize, 48usize);
    // 16x16 tiles -> 12 tiles/frame at 1 KiB of labels each; a budget of
    // eight entries cannot hold even one frame, forcing constant eviction.
    let tile_entry_bytes = 16 * 16 * 4 + 96;
    for mode in BOTH_MODES {
        let plan = SegmentPlan::default().with_tiling(Tiling::Tiles {
            width: 16,
            height: 16,
        });
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(plan)
                .with_max_inflight(3)
                .with_cache(CacheConfig {
                    capacity_bytes: tile_entry_bytes * 8,
                    shards: 2,
                })
                .with_mode(mode),
        )
        .expect("bind");
        let addr = server.local_addr();

        std::thread::scope(|scope| {
            for client_idx in 0..3u64 {
                scope.spawn(move || {
                    let frames = datasets::synthetic_video(&datasets::VideoConfig {
                        frames: 6,
                        width,
                        height,
                        change_rate: 0.5,
                        block: 16,
                        seed: 1000 + client_idx,
                    });
                    let exact = IqftClassifier::paper_default(ClassifierKind::Exact);
                    let mut client = open_client(addr).expect("connect");
                    for (idx, frame) in frames.iter().enumerate() {
                        let (reply, hit, recomputed) =
                            client.segment_delta(frame).expect("segment delta");
                        let (labels, _) = reply.unwrap_done();
                        let fresh = SegmentEngine::serial().segment_rgb(&exact, frame);
                        assert_eq!(labels, fresh, "client {client_idx} frame {idx} ({mode})");
                        assert_eq!(hit + recomputed, 12, "client {client_idx} frame {idx}");
                    }
                });
            }
        });

        let mut probe = open_client(addr).expect("probe");
        let stats = probe.stats().expect("stats");
        assert!(
            stats.delta_tiles_recomputed > 0,
            "churn must recompute: {stats:?}"
        );
        assert!(
            stats.delta_tiles_hit + stats.delta_tiles_recomputed == 3 * 6 * 12,
            "tile accounting across clients: {stats:?}"
        );
        assert!(
            stats.cache_bytes <= tile_entry_bytes * 8,
            "budget respected: {stats:?}"
        );
        probe.shutdown().expect("shutdown");
        server.join();
    }
}

/// Slow-loris resilience, in both modes: a client that drips half a frame
/// and then stalls is closed once the per-frame deadline expires, while a
/// healthy client's traffic keeps flowing the whole time.
#[test]
fn slow_loris_connection_is_deadlined_while_healthy_clients_keep_flowing() {
    let images = test_images(3);
    let reference = reference_labels(&images);
    for mode in BOTH_MODES {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(SegmentPlan::default())
                .with_max_inflight(2)
                .with_frame_deadline(Duration::from_millis(300))
                .with_mode(mode),
        )
        .expect("bind");
        let addr = server.local_addr();

        // The loris: half a Ping frame, then silence.
        let frame = protocol::encode_message(1, &Message::Ping).expect("encode");
        let mut loris = TcpStream::connect(addr).expect("connect loris");
        loris.write_all(&frame[..frame.len() / 2]).expect("drip");
        loris.flush().expect("flush");

        // Healthy traffic is served while the loris stalls mid-frame.
        let mut client = open_client(addr).expect("connect healthy");
        for (idx, img) in images.iter().enumerate() {
            let (labels, _) = client.segment(img).expect("segment").unwrap_done();
            assert_eq!(labels, reference[idx], "image {idx} ({mode})");
        }

        // The loris is closed once its frame deadline expires; it never got
        // (and never earns) a reply for its unfinished frame.
        loris
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let mut rest = Vec::new();
        match loris.read_to_end(&mut rest) {
            Ok(_) => assert!(rest.is_empty(), "unfinished frame must not be answered"),
            Err(e) => assert!(
                matches!(e.kind(), std::io::ErrorKind::ConnectionReset),
                "expected EOF or reset, got {e:?} ({mode})"
            ),
        }

        // The server is unaffected and keeps serving.
        client.ping().expect("alive after the deadline");
        client.shutdown().expect("shutdown");
        server.join();
    }
}

/// Regression for the reactor's deadline bookkeeping: one connection stalled
/// mid-frame must not delay replies on another.  The healthy client's whole
/// burst has to complete well before the stalled connection's deadline even
/// expires — proof that nothing about the stall sits on the serving path.
#[test]
fn a_stalled_connection_does_not_delay_replies_on_healthy_connections() {
    let images = test_images(6);
    let reference = reference_labels(&images);
    for mode in BOTH_MODES {
        let deadline = Duration::from_secs(10);
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(SegmentPlan::default())
                .with_max_inflight(2)
                .with_frame_deadline(deadline)
                .with_mode(mode),
        )
        .expect("bind");
        let addr = server.local_addr();

        // Stall several connections mid-frame (header-only, and mid-payload)
        // to keep the poll set busy with unready fds.
        let seg = protocol::encode_message(
            3,
            &Message::Segment {
                image: images[0].clone(),
            },
        )
        .expect("encode");
        let mut stalled: Vec<TcpStream> = Vec::new();
        for cut in [7, protocol::HEADER_LEN + 5, seg.len() - 3] {
            let mut stream = TcpStream::connect(addr).expect("connect stalled");
            stream.write_all(&seg[..cut]).expect("partial write");
            stream.flush().expect("flush");
            stalled.push(stream);
        }

        let started = Instant::now();
        let mut client = open_client_depth(addr, 4).expect("connect healthy");
        let refs: Vec<&RgbImage> = images.iter().collect();
        let replies = client
            .segment_pipelined(&refs, false)
            .expect("pipelined burst");
        let elapsed = started.elapsed();
        for (idx, reply) in replies.iter().enumerate() {
            assert_eq!(done(reply).0, &reference[idx], "image {idx} ({mode})");
        }
        assert!(
            elapsed < deadline,
            "healthy burst waited on a stalled peer: {elapsed:?} ({mode})"
        );

        drop(stalled);
        client.shutdown().expect("shutdown");
        server.join();
    }
}

/// Admission control through the wire, in both modes: with one worker and a
/// one-deep queue, a simultaneous fan-in of heavy frames must shed at least
/// one with a typed Busy reply.  Every completed reply is still
/// byte-identical, the shed count shows up in stats, and so do the service
/// latency percentiles.
#[test]
fn saturated_admission_sheds_with_typed_busy_replies() {
    let image = RgbImage::from_fn(600, 420, |x, y| {
        Rgb::new((x / 3) as u8, (y / 2) as u8, ((x + y) / 5) as u8)
    });
    let expected = SegmentEngine::serial().segment_rgb(
        &IqftClassifier::paper_default(ClassifierKind::Table),
        &image,
    );
    for mode in BOTH_MODES {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(SegmentPlan::default())
                .with_max_inflight(1)
                .with_max_queue(1)
                .with_mode(mode),
        )
        .expect("bind");
        let addr = server.local_addr();

        // Saturation is a race by nature; retry a few fan-in rounds so the
        // test never depends on one round's scheduling.
        let mut busy_total = 0usize;
        for _round in 0..5 {
            let mut streams: Vec<TcpStream> = Vec::new();
            for id in 0..6u64 {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let frame = protocol::encode_message(
                    id,
                    &Message::Segment {
                        image: image.clone(),
                    },
                )
                .expect("encode");
                stream.write_all(&frame).expect("write frame");
                stream.flush().expect("flush");
                streams.push(stream);
            }
            for (id, mut stream) in streams.into_iter().enumerate() {
                let (got, reply) = protocol::read_message(&mut stream).expect("reply");
                assert_eq!(got, id as u64);
                match reply {
                    Message::SegmentReply { labels } => {
                        assert_eq!(labels, expected, "admitted request {id} ({mode})")
                    }
                    Message::Busy => busy_total += 1,
                    other => panic!("expected SegmentReply or Busy, got {other:?} ({mode})"),
                }
            }
            if busy_total > 0 {
                break;
            }
        }
        assert!(
            busy_total > 0,
            "a 6-way fan-in against 1 worker + 1 queue slot never shed ({mode})"
        );

        let mut probe = open_client(addr).expect("probe");
        let stats = probe.stats().expect("stats");
        assert_eq!(stats.busy_rejections, busy_total, "{mode}: {stats:?}");
        assert_eq!(stats.max_queue, 1, "{mode}: {stats:?}");
        assert!(stats.lat_count > 0, "{mode}: {stats:?}");
        assert!(
            stats.lat_p50_us > 0 && stats.lat_p50_us <= stats.lat_max_us,
            "heavy frames must show nonzero latency percentiles ({mode}): {stats:?}"
        );
        probe.shutdown().expect("shutdown");
        server.join();
    }
}
