//! Socket-free property and fuzz suite for the sans-io protocol core.
//!
//! The event-driven serving core rests on one claim: `FrameDecoder` fed
//! byte chunks of *any* size is observably identical to the blocking stream
//! path (`parse_header` + `read_exact` + `decode_body`) — same frames, same
//! typed errors at the same points, same `ServerStats` deltas.  This suite
//! checks that claim without opening a single socket:
//!
//! - encode → decode round-trip identity for every op, flag and
//!   classifier-spec combination;
//! - a valid frame stream split at *every* chunk boundary (and dripped one
//!   byte at a time through a > 1 MiB frame) yields identical frames and
//!   identical stats deltas;
//! - a deterministic fuzz corpus (xorshift64* byte streams, mutated valid
//!   frames, truncated streams) plus curated malformed frames: the decoder
//!   never panics, never buffers past `HEADER_LEN + MAX_PAYLOAD_BYTES`, and
//!   reports the same typed `ProtocolError`s as the stream path.
//!
//! The offline build environment has no `proptest` or `cargo-fuzz`, so the
//! properties run on the same deterministic mini-harness as
//! `tests/properties.rs`: `CASES` pseudo-random inputs from a seeded
//! generator, with the case index reported on failure for replay.

use imaging::{LabelMap, Rgb, RgbImage};
use iqft_serve::protocol::{
    self, FrameDecoder, FrameEncoder, Message, ProtocolError, HEADER_LEN, MAX_PAYLOAD_BYTES,
};
use iqft_serve::stats::{ServerStats, StatsSnapshot};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use seg_engine::{ClassifierKind, SegmentPlan, Tiling};

const CASES: usize = 64;

/// Runs `property` against `CASES` deterministic pseudo-random inputs.
fn check<F: FnMut(usize, &mut ChaCha8Rng)>(seed: u64, mut property: F) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for case in 0..CASES {
        property(case, &mut rng);
    }
}

/// The xorshift64* generator the fuzz corpus is drawn from — self-contained
/// so the corpus is reproducible from the case seed alone, independent of
/// the harness RNG's stream position.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// A stable, comparable key for a typed error.  `Io` keeps only the error
/// kind: the slice cursor and the decoder agree on *what* went wrong, not on
/// the incidental error message.
fn error_key(err: &ProtocolError) -> String {
    match err {
        ProtocolError::Io(e) => format!("Io({:?})", e.kind()),
        other => format!("{other:?}"),
    }
}

/// What one decode path observed over a byte stream: the decoded messages in
/// order, the terminal typed error (if the stream failed), whether the
/// stream ended mid-frame, and the `ServerStats` delta a serving core
/// would record while handling it.
#[derive(Debug)]
struct StreamOutcome {
    messages: Vec<(u64, Message)>,
    error: Option<String>,
    incomplete: bool,
    requests: usize,
    protocol_errors: usize,
}

const EOF_KEY: &str = "Io(UnexpectedEof)";

/// The blocking stream path, exactly as the threaded server runs it: read
/// the 20 header bytes (counting the request the moment they arrive), parse,
/// read the declared payload, decode the body.  Stops at the first error,
/// as the server does.
fn run_stream_path(bytes: &[u8]) -> StreamOutcome {
    use std::io::Read;
    let stats = ServerStats::new();
    let mut cursor = bytes;
    let mut messages = Vec::new();
    let mut error = None;
    while !cursor.is_empty() {
        let mut header_bytes = [0u8; HEADER_LEN];
        if let Err(e) = cursor.read_exact(&mut header_bytes) {
            error = Some(error_key(&ProtocolError::Io(e)));
            break;
        }
        stats.request();
        let header = match protocol::parse_header(&header_bytes) {
            Ok(header) => header,
            Err(e) => {
                stats.protocol_error();
                error = Some(error_key(&e));
                break;
            }
        };
        let mut payload = vec![0u8; header.payload_len];
        if let Err(e) = cursor.read_exact(&mut payload) {
            error = Some(error_key(&ProtocolError::Io(e)));
            break;
        }
        match protocol::decode_body(header.op, &payload) {
            Ok(message) => messages.push((header.request_id, message)),
            Err(e) => {
                stats.protocol_error();
                error = Some(error_key(&e));
                break;
            }
        }
    }
    let incomplete = error.as_deref() == Some(EOF_KEY);
    StreamOutcome {
        messages,
        error,
        incomplete,
        requests: stats.requests_total(),
        protocol_errors: stats.protocol_errors(),
    }
}

/// The sans-io path: feed `bytes` to a `FrameDecoder` in chunks chosen by
/// `next_chunk(offset, remaining)`, with the same stats accounting the
/// evented reactor performs (`request` per started frame, `protocol_error`
/// per header or body failure, stop at the first error).  Asserts the
/// buffering bound on every feed.
fn run_sansio_path(
    bytes: &[u8],
    mut next_chunk: impl FnMut(usize, usize) -> usize,
) -> StreamOutcome {
    let stats = ServerStats::new();
    let mut decoder = FrameDecoder::new();
    let mut counted = 0u64;
    let mut messages = Vec::new();
    let mut error = None;
    let mut offset = 0;
    'outer: while offset < bytes.len() {
        let len = next_chunk(offset, bytes.len() - offset).clamp(1, bytes.len() - offset);
        let mut chunk = &bytes[offset..offset + len];
        offset += len;
        while !chunk.is_empty() {
            let (consumed, event) = decoder.feed(chunk);
            chunk = &chunk[consumed..];
            while counted < decoder.frames_started() {
                stats.request();
                counted += 1;
            }
            assert!(
                decoder.buffered_bytes() <= HEADER_LEN + MAX_PAYLOAD_BYTES,
                "decoder buffered {} bytes past the {} + {} bound",
                decoder.buffered_bytes(),
                HEADER_LEN,
                MAX_PAYLOAD_BYTES
            );
            match event {
                None => {
                    if consumed == 0 {
                        assert!(decoder.is_failed(), "only a poisoned decoder refuses input");
                        break 'outer;
                    }
                }
                Some(Err(e)) => {
                    stats.protocol_error();
                    error = Some(error_key(&e));
                    break 'outer;
                }
                Some(Ok(frame)) => match frame.message() {
                    Ok(message) => messages.push((frame.header.request_id, message)),
                    Err(e) => {
                        stats.protocol_error();
                        error = Some(error_key(&e));
                        break 'outer;
                    }
                },
            }
        }
    }
    let incomplete = error.is_none() && decoder.mid_frame();
    StreamOutcome {
        messages,
        error,
        incomplete,
        requests: stats.requests_total(),
        protocol_errors: stats.protocol_errors(),
    }
}

/// Asserts a sans-io outcome is observably identical to the stream-path
/// outcome over the same bytes.  The one representational difference: the
/// decoder reports a truncated stream as "incomplete, no error" (EOF is the
/// transport's business), where the stream path reports
/// `Io(UnexpectedEof)` — everything else must match exactly.
fn assert_equivalent(sansio: &StreamOutcome, stream: &StreamOutcome, context: &str) {
    assert_eq!(
        sansio.messages, stream.messages,
        "decoded messages diverge ({context})"
    );
    assert_eq!(
        sansio.requests, stream.requests,
        "request accounting diverges ({context})"
    );
    assert_eq!(
        sansio.protocol_errors, stream.protocol_errors,
        "protocol-error accounting diverges ({context})"
    );
    if sansio.incomplete {
        assert_eq!(
            stream.error.as_deref(),
            Some(EOF_KEY),
            "decoder ended mid-frame but the stream path did not hit EOF ({context})"
        );
    } else {
        assert_eq!(
            sansio.error, stream.error,
            "typed errors diverge ({context})"
        );
    }
}

fn random_image(rng: &mut ChaCha8Rng, max_side: usize) -> RgbImage {
    let width = rng.gen_range(1..=max_side);
    let height = rng.gen_range(1..=max_side);
    let mut pixels = Vec::with_capacity(width * height);
    for _ in 0..width * height {
        pixels.push(Rgb::new(rng.gen::<u8>(), rng.gen::<u8>(), rng.gen::<u8>()));
    }
    RgbImage::from_vec(width, height, pixels).expect("valid dimensions")
}

fn random_labels(rng: &mut ChaCha8Rng, max_side: usize) -> LabelMap {
    let width = rng.gen_range(1..=max_side);
    let height = rng.gen_range(1..=max_side);
    let mut labels = Vec::with_capacity(width * height);
    for _ in 0..width * height {
        labels.push(rng.gen::<u8>() as u32);
    }
    LabelMap::from_vec(width, height, labels).expect("valid dimensions")
}

/// Every classifier-spec string the Stats reply can carry: the full
/// classifier vocabulary crossed with both tiling shapes.
fn all_plan_specs() -> Vec<String> {
    let mut specs = Vec::new();
    for kind in ClassifierKind::ALL {
        for tiling in [
            Tiling::Whole,
            Tiling::Tiles {
                width: 48,
                height: 48,
            },
        ] {
            specs.push(
                SegmentPlan::default()
                    .with_classifier(kind)
                    .with_tiling(tiling)
                    .to_spec(),
            );
        }
    }
    specs
}

/// Every message shape the protocol defines: all eleven ops, both values of
/// both flag words, and a Stats reply for every classifier-spec / serve-mode
/// combination.
fn full_message_corpus(rng: &mut ChaCha8Rng) -> Vec<Message> {
    let mut corpus = vec![
        Message::Ping,
        Message::Pong,
        Message::Stats,
        Message::Shutdown,
        Message::ShutdownReply,
        Message::Segment {
            image: random_image(rng, 9),
        },
        Message::SegmentReply {
            labels: random_labels(rng, 9),
        },
        Message::StatsReply {
            text: String::new(),
        },
        Message::Error {
            message: "BadLength { op: Segment, expected: Some(8), got: 3 }".to_string(),
        },
        Message::Error {
            message: String::new(),
        },
    ];
    for bypass in [false, true] {
        corpus.push(Message::SegmentCached {
            image: random_image(rng, 9),
            bypass,
        });
    }
    for cached in [false, true] {
        corpus.push(Message::SegmentCachedReply {
            labels: random_labels(rng, 9),
            cached,
        });
    }
    for spec in all_plan_specs() {
        for serve_mode in ["threads", "evented"] {
            let snapshot = StatsSnapshot {
                plan: spec.clone(),
                serve_mode: serve_mode.to_string(),
                requests_total: rng.gen::<u8>() as usize,
                pixels_total: rng.gen::<u8>() as u64,
                ..StatsSnapshot::default()
            };
            corpus.push(Message::StatsReply {
                text: snapshot.to_text(),
            });
        }
    }
    corpus
}

/// Concatenates `(id, message)` pairs into one wire stream.
fn encode_stream(pairs: &[(u64, Message)]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (id, message) in pairs {
        bytes.extend(protocol::encode_message(*id, message).expect("encodable corpus message"));
    }
    bytes
}

/// A raw frame with an arbitrary (possibly invalid) header, for building the
/// curated malformed corpus without going through the encoder's validation.
fn raw_frame(op: u8, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(b"IQFT");
    frame.extend_from_slice(&protocol::VERSION.to_le_bytes());
    frame.push(op);
    frame.push(0);
    frame.extend_from_slice(&request_id.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

fn patched(frame: &[u8], at: usize, value: u8) -> Vec<u8> {
    let mut out = frame.to_vec();
    out[at] = value;
    out
}

// ---------------------------------------------------------------------------
// Round-trip identity
// ---------------------------------------------------------------------------

/// Every op / flag / classifier-spec combination survives
/// encode → chunked decode unchanged, and `FrameEncoder` produces the exact
/// bytes `encode_message` does.
#[test]
fn round_trip_identity_for_every_op_flag_and_spec_combination() {
    check(701, |case, rng| {
        for message in full_message_corpus(rng) {
            let id = match rng.gen_range(0..4u8) {
                0 => 0,
                1 => u64::MAX,
                _ => rng.gen::<u64>(),
            };
            let bytes = protocol::encode_message(id, &message)
                .unwrap_or_else(|e| panic!("case {case}: encode {}: {e}", message.name()));

            // The one-shot slice decoder agrees.
            let (decoded_id, decoded) = protocol::decode_message(&bytes)
                .unwrap_or_else(|e| panic!("case {case}: decode {}: {e}", message.name()));
            assert_eq!(decoded_id, id, "case {case}: id round-trip");
            assert_eq!(
                decoded,
                message,
                "case {case}: {} round-trip",
                message.name()
            );

            // The sans-io decoder agrees, fed in one chunk and dripped.
            for chunk in [bytes.len(), 1] {
                let outcome = run_sansio_path(&bytes, |_, _| chunk);
                assert_eq!(outcome.error, None, "case {case}: {}", message.name());
                assert_eq!(
                    outcome.messages,
                    vec![(id, message.clone())],
                    "case {case}: {} via {chunk}-byte chunks",
                    message.name()
                );
            }

            // The sans-io encoder queues byte-identical frames.
            let mut encoder = FrameEncoder::new();
            encoder
                .enqueue(id, &message)
                .unwrap_or_else(|e| panic!("case {case}: enqueue {}: {e}", message.name()));
            assert_eq!(encoder.pending(), &bytes[..], "case {case}: encoder bytes");
            assert_eq!(encoder.pending_len(), bytes.len());
            encoder.advance(bytes.len());
            assert!(encoder.is_empty(), "case {case}: drained encoder");
        }
    });
}

// ---------------------------------------------------------------------------
// Chunk-boundary independence
// ---------------------------------------------------------------------------

/// A mixed valid stream (every op represented) split at *every* possible
/// boundary, and fed at every fixed chunk size, decodes to identical frames
/// with identical stats deltas.
#[test]
fn every_chunk_boundary_split_yields_identical_frames_and_stats() {
    let mut rng = ChaCha8Rng::seed_from_u64(702);
    let mut pairs = Vec::new();
    for (index, message) in full_message_corpus(&mut rng).into_iter().enumerate() {
        pairs.push((index as u64 + 1, message));
    }
    let bytes = encode_stream(&pairs);
    let frames = pairs.len();

    let baseline = run_stream_path(&bytes);
    assert_eq!(baseline.error, None, "corpus stream is valid");
    assert_eq!(baseline.messages, pairs);
    assert_eq!(baseline.requests, frames);
    assert_eq!(baseline.protocol_errors, 0);

    // Two-way split at every boundary (0 and len included: degenerate empty
    // first/second chunks are just the one-chunk feed).
    for split in 0..=bytes.len() {
        let outcome = run_sansio_path(&bytes, |offset, remaining| {
            if offset < split {
                split - offset
            } else {
                remaining
            }
        });
        assert_equivalent(&outcome, &baseline, &format!("split at byte {split}"));
    }

    // Every fixed chunk size from a 1-byte drip up to the whole stream.
    for chunk in 1..=bytes.len() {
        let outcome = run_sansio_path(&bytes, |_, _| chunk);
        assert_equivalent(&outcome, &baseline, &format!("chunk size {chunk}"));
    }
}

/// The 1-byte drip through a frame larger than 1 MiB: identical result,
/// bounded buffering (asserted on every feed inside `run_sansio_path`), and
/// boundary-adjacent plus random splits all agree with the stream path.
#[test]
fn one_byte_drip_through_a_megabyte_frame_matches_the_stream_path() {
    let mut gen = XorShift64::new(703);
    let (width, height) = (592, 592);
    let mut pixels = Vec::with_capacity(width * height);
    for _ in 0..width * height {
        pixels.push(Rgb::new(gen.next_byte(), gen.next_byte(), gen.next_byte()));
    }
    let image = RgbImage::from_vec(width, height, pixels).expect("valid dimensions");
    let mut bytes = protocol::encode_message(41, &Message::Ping).expect("ping");
    bytes.extend(protocol::encode_message(42, &Message::Segment { image }).expect("segment"));
    bytes.extend(protocol::encode_message(43, &Message::Stats).expect("stats"));
    assert!(
        bytes.len() > 1 << 20,
        "stream must exceed 1 MiB to exercise the large-frame path ({} bytes)",
        bytes.len()
    );

    let baseline = run_stream_path(&bytes);
    assert_eq!(baseline.error, None);
    assert_eq!(baseline.messages.len(), 3);
    assert_eq!(baseline.requests, 3);

    // The full 1-byte drip across the whole > 1 MiB stream.
    let drip = run_sansio_path(&bytes, |_, _| 1);
    assert_equivalent(&drip, &baseline, "1-byte drip");

    // Two-way splits at every boundary around the frame edges (where the
    // decoder changes state) plus random interior boundaries, and a sweep of
    // fixed chunk sizes.
    let ping_end = HEADER_LEN;
    let segment_payload_start = ping_end + HEADER_LEN;
    let mut splits: Vec<usize> = Vec::new();
    splits.extend(0..=segment_payload_start + 2);
    splits.extend(bytes.len().saturating_sub(HEADER_LEN + 2)..=bytes.len());
    for _ in 0..48 {
        splits.push(gen.below(bytes.len() + 1));
    }
    for split in splits {
        let outcome = run_sansio_path(&bytes, |offset, remaining| {
            if offset < split {
                split - offset
            } else {
                remaining
            }
        });
        assert_equivalent(&outcome, &baseline, &format!("split at byte {split}"));
    }
    for chunk in [2, 3, 7, 16, 64, 1024, 65 * 1024, bytes.len() - 1] {
        let outcome = run_sansio_path(&bytes, |_, _| chunk);
        assert_equivalent(&outcome, &baseline, &format!("chunk size {chunk}"));
    }
}

// ---------------------------------------------------------------------------
// Curated malformed corpus
// ---------------------------------------------------------------------------

/// Every named corruption the header or body can carry: the decoder reports
/// the same typed error as the stream path whether the bytes arrive whole or
/// one at a time, and never panics or over-buffers doing it.
#[test]
fn curated_malformed_frames_match_the_stream_path_errors() {
    let mut rng = ChaCha8Rng::seed_from_u64(704);
    let id = 0x1122_3344_5566_7788u64;
    let ping = protocol::encode_message(id, &Message::Ping).expect("ping");
    let cached = protocol::encode_message(
        id,
        &Message::SegmentCached {
            image: random_image(&mut rng, 5),
            bypass: true,
        },
    )
    .expect("cached request");
    let cached_reply = protocol::encode_message(
        id,
        &Message::SegmentCachedReply {
            labels: random_labels(&mut rng, 5),
            cached: true,
        },
    )
    .expect("cached reply");
    let oversized = {
        let mut frame = ping.clone();
        frame[16..20].copy_from_slice(&((MAX_PAYLOAD_BYTES as u32) + 1).to_le_bytes());
        frame
    };
    let huge_dims = {
        let mut payload = Vec::new();
        payload.extend_from_slice(&0x0080_0000u32.to_le_bytes());
        payload.extend_from_slice(&0x0080_0000u32.to_le_bytes());
        raw_frame(0x01, id, &payload)
    };

    // (name, bytes, expected error variant prefix, is_header_error)
    let corpus: Vec<(&str, Vec<u8>, &str, bool)> = vec![
        ("bad-magic", patched(&ping, 0, b'X'), "BadMagic", true),
        ("bad-version", patched(&ping, 4, 3), "BadVersion", true),
        ("unknown-op", patched(&ping, 6, 0x7E), "UnknownOp", true),
        ("bad-reserved", patched(&ping, 7, 9), "BadReserved", true),
        ("oversized-payload", oversized, "PayloadTooLarge", true),
        (
            "bad-flags-request",
            patched(&cached, HEADER_LEN, 0x07),
            "BadFlags",
            false,
        ),
        (
            "bad-flags-reply",
            patched(&cached_reply, HEADER_LEN + 3, 0x80),
            "BadFlags",
            false,
        ),
        ("bad-dimensions", huge_dims, "BadDimensions", false),
        (
            "bad-length-ping",
            raw_frame(0x02, id, &[0xAB]),
            "BadLength",
            false,
        ),
        (
            "bad-length-reply",
            raw_frame(0x81, id, &[1, 2, 3]),
            "BadLength",
            false,
        ),
        (
            "bad-text",
            raw_frame(0xFF, id, &[0xFF, 0xFE, 0xFD]),
            "BadText",
            false,
        ),
    ];

    for (name, bytes, variant, header_error) in corpus {
        let stream = run_stream_path(&bytes);
        let key = stream.error.clone().unwrap_or_else(|| {
            panic!("{name}: the stream path must reject this frame");
        });
        assert!(
            key.starts_with(variant),
            "{name}: stream path reported {key}, expected {variant}"
        );
        assert_eq!(stream.protocol_errors, 1, "{name}: one error counted");

        for chunk in [bytes.len(), 1, 3] {
            let outcome = run_sansio_path(&bytes, |_, _| chunk);
            assert_equivalent(
                &outcome,
                &stream,
                &format!("{name} via {chunk}-byte chunks"),
            );
        }

        // Header errors surface the instant the 20th byte arrives, echo the
        // request id exactly when the magic matched, and poison the decoder.
        if header_error {
            let mut decoder = FrameDecoder::new();
            let (consumed, event) = decoder.feed(&bytes[..HEADER_LEN - 1]);
            assert_eq!(consumed, HEADER_LEN - 1, "{name}: partial header accepted");
            assert!(event.is_none(), "{name}: no event before the 20th byte");
            assert!(decoder.mid_frame(), "{name}: mid-frame on a partial header");
            let (consumed, event) = decoder.feed(&bytes[HEADER_LEN - 1..]);
            assert_eq!(consumed, 1, "{name}: the 20th byte closes the header");
            assert!(
                matches!(event, Some(Err(_))),
                "{name}: the 20th byte surfaces the error"
            );
            assert!(decoder.is_failed(), "{name}: header error poisons");
            assert_eq!(decoder.frames_started(), 1, "{name}: the frame counted");
            let echoed = if name == "bad-magic" { 0 } else { id };
            assert_eq!(decoder.error_request_id(), echoed, "{name}: id echo");
            let (consumed, event) = decoder.feed(b"more");
            assert_eq!((consumed, event.is_none()), (0, true), "{name}: refused");
        }
    }
}

/// Truncated frames are not errors for the sans-io decoder (EOF belongs to
/// the transport): it parks mid-frame holding exactly the bytes that
/// arrived, while the stream path maps the same bytes to `UnexpectedEof`.
#[test]
fn truncated_frames_park_mid_frame_with_bounded_buffering() {
    let mut rng = ChaCha8Rng::seed_from_u64(705);
    let frame = protocol::encode_message(
        9,
        &Message::Segment {
            image: random_image(&mut rng, 7),
        },
    )
    .expect("segment");
    for cut in [
        1,
        7,
        HEADER_LEN - 1,
        HEADER_LEN,
        HEADER_LEN + 1,
        frame.len() - 1,
    ] {
        let bytes = &frame[..cut];
        let stream = run_stream_path(bytes);
        assert_eq!(stream.error.as_deref(), Some(EOF_KEY), "cut at {cut}");

        let mut decoder = FrameDecoder::new();
        let mut offset = 0;
        while offset < bytes.len() {
            let (consumed, event) = decoder.feed(&bytes[offset..]);
            assert!(event.is_none(), "cut at {cut}: no event for a prefix");
            offset += consumed;
        }
        assert!(decoder.mid_frame(), "cut at {cut}: parked mid-frame");
        assert!(
            !decoder.is_failed(),
            "cut at {cut}: truncation is not failure"
        );
        assert_eq!(
            decoder.buffered_bytes(),
            cut,
            "cut at {cut}: holds what arrived"
        );
        let expected_started = u64::from(cut >= HEADER_LEN);
        assert_eq!(
            decoder.frames_started(),
            expected_started,
            "cut at {cut}: request counted iff the header arrived"
        );
        assert_eq!(decoder.frames_decoded(), 0, "cut at {cut}");
    }
}

// ---------------------------------------------------------------------------
// Deterministic fuzz
// ---------------------------------------------------------------------------

/// Builds one fuzz input: pure xorshift noise, a valid stream with random
/// byte mutations, or a valid stream truncated at a random point.
fn fuzz_input(case: usize, rng: &mut ChaCha8Rng) -> Vec<u8> {
    let mut gen = XorShift64::new(((case as u64) << 32) | u64::from(rng.gen::<u32>()));
    match case % 3 {
        0 => {
            let len = 1 + gen.below(2048);
            (0..len).map(|_| gen.next_byte()).collect()
        }
        1 => {
            let mut pairs = Vec::new();
            for (index, message) in full_message_corpus(rng).into_iter().enumerate() {
                if gen.below(3) == 0 {
                    pairs.push((index as u64, message));
                }
            }
            let mut bytes = encode_stream(&pairs);
            if !bytes.is_empty() {
                for _ in 0..1 + gen.below(8) {
                    let at = gen.below(bytes.len());
                    bytes[at] ^= gen.next_byte() | 1;
                }
            }
            bytes
        }
        _ => {
            let pairs = vec![
                (1, Message::Ping),
                (
                    2,
                    Message::SegmentCached {
                        image: random_image(rng, 11),
                        bypass: gen.below(2) == 0,
                    },
                ),
                (3, Message::Stats),
            ];
            let bytes = encode_stream(&pairs);
            let cut = gen.below(bytes.len() + 1);
            bytes[..cut].to_vec()
        }
    }
}

/// Fuzzed byte streams, fed in randomized chunk sizes: the decoder never
/// panics, never buffers past the bound, refuses input only when poisoned,
/// and always matches the stream path's messages, typed errors and stats.
#[test]
fn xorshift_fuzz_streams_match_the_stream_path() {
    check(706, |case, rng| {
        let bytes = fuzz_input(case, rng);
        let stream = run_stream_path(&bytes);
        let mut gen = XorShift64::new(0xF00D ^ case as u64);
        for max_chunk in [1, 13, 97, 4096] {
            let outcome = run_sansio_path(&bytes, |_, _| 1 + gen.below(max_chunk));
            assert_equivalent(
                &outcome,
                &stream,
                &format!(
                    "case {case}, chunks up to {max_chunk} over {} bytes",
                    bytes.len()
                ),
            );
        }
    });
}

// ---------------------------------------------------------------------------
// Encoder partial writes
// ---------------------------------------------------------------------------

/// A `FrameEncoder` drained through arbitrary partial writes emits exactly
/// the concatenation of the queued frames — which the decoder then reads
/// back as the original messages.
#[test]
fn frame_encoder_partial_writes_reassemble_identical_streams() {
    check(707, |case, rng| {
        let mut pairs = Vec::new();
        for (index, message) in full_message_corpus(rng).into_iter().enumerate() {
            if rng.gen_range(0..3u8) == 0 {
                pairs.push((index as u64, message));
            }
        }
        let expected = encode_stream(&pairs);

        let mut encoder = FrameEncoder::new();
        let mut written = Vec::new();
        // Interleave enqueues with partial drains, as a reactor under
        // WouldBlock pressure would.
        for (id, message) in &pairs {
            encoder.enqueue(*id, message).expect("encodable message");
            if rng.gen_range(0..2u8) == 0 && !encoder.is_empty() {
                let n = rng.gen_range(1..=encoder.pending_len());
                written.extend_from_slice(&encoder.pending()[..n]);
                encoder.advance(n);
            }
        }
        while !encoder.is_empty() {
            let n = rng.gen_range(1..=encoder.pending_len());
            written.extend_from_slice(&encoder.pending()[..n]);
            encoder.advance(n);
        }
        assert_eq!(written, expected, "case {case}: drained bytes");
        assert_eq!(encoder.pending_len(), 0, "case {case}: nothing left queued");

        let outcome = run_sansio_path(&written, |_, _| 1 + (case % 37));
        assert_eq!(outcome.error, None, "case {case}");
        assert_eq!(outcome.messages, pairs, "case {case}: round-trip");
    });
}
