//! Determinism of the backend-aware `SegmentEngine` across every execution
//! backend and thread count — the contract behind the harness's
//! `--backend serial|threads|rayon --threads N` knob: switching backends must
//! never change a single label.
//!
//! Covers the ISSUE acceptance criterion (`--backend threads --threads N`
//! produces byte-identical label maps to `--backend serial`, at both the
//! per-pixel and the per-image batching layer) and the property test that
//! `LutRgbSegmenter` and `IqftRgbSegmenter` agree exactly on random images
//! under the engine, for every backend variant and thread count ∈ {1, 2, 8}.

use datasets::{PascalVocLikeConfig, PascalVocLikeDataset};
use imaging::{LabelMap, Rgb, RgbImage, Segmenter};
use iqft_pipeline::{PipelineConfig, SegmentPipeline};
use iqft_seg::{
    IqftClassifier, IqftGraySegmenter, IqftRgbSegmenter, LutRgbSegmenter, PhaseTable,
    SegmentEngine, ThetaParams,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use seg_engine::{ClassifierKind, SegmentPlan, Tiling};
use xpar::Backend;

/// Every backend variant crossed with the thread counts under test.
fn all_engines() -> Vec<(String, SegmentEngine)> {
    let mut engines = vec![
        ("serial".to_string(), SegmentEngine::serial()),
        ("rayon".to_string(), SegmentEngine::new(Backend::Rayon)),
        (
            "threads(default)".to_string(),
            SegmentEngine::with_threads(0),
        ),
    ];
    for threads in [1usize, 2, 8] {
        engines.push((
            format!("threads({threads})"),
            SegmentEngine::with_threads(threads),
        ));
    }
    engines
}

fn random_image(rng: &mut ChaCha8Rng, width: usize, height: usize) -> RgbImage {
    let pixels: Vec<Rgb<u8>> = (0..width * height)
        .map(|_| Rgb::new(rng.gen::<u8>(), rng.gen::<u8>(), rng.gen::<u8>()))
        .collect();
    RgbImage::from_vec(width, height, pixels).unwrap()
}

/// Satellite property: the LUT-accelerated and the direct RGB segmenter
/// produce identical `LabelMap`s on random images, under the engine, for
/// every backend variant and thread count ∈ {1, 2, 8}.
#[test]
fn lut_and_direct_rgb_agree_on_random_images_under_every_engine() {
    let mut rng = ChaCha8Rng::seed_from_u64(2023);
    for case in 0..8 {
        let width = rng.gen_range(1usize..64);
        let height = rng.gen_range(1usize..48);
        let img = random_image(&mut rng, width, height);
        let theta = ThetaParams::uniform(rng.gen_range(0.3..2.0 * std::f64::consts::PI));
        let reference = IqftRgbSegmenter::new(theta)
            .with_engine(SegmentEngine::serial())
            .segment_rgb(&img);
        for (name, engine) in all_engines() {
            let direct = IqftRgbSegmenter::new(theta)
                .with_engine(engine)
                .segment_rgb(&img);
            let lut = LutRgbSegmenter::new(IqftRgbSegmenter::new(theta))
                .with_engine(engine)
                .segment_rgb(&img);
            assert_eq!(direct, reference, "case {case}, engine {name}");
            assert_eq!(lut, reference, "case {case}, engine {name} (LUT)");
        }
    }
}

/// Acceptance criterion, per-pixel layer: the engine fills label buffers
/// byte-identically on every backend for all segmenter families.
#[test]
fn engine_backends_are_byte_identical_per_pixel() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let img = random_image(&mut rng, 53, 37);
    let gray = imaging::color::rgb_to_gray_u8(&img);

    let rgb_ref = IqftRgbSegmenter::paper_default()
        .with_engine(SegmentEngine::serial())
        .segment_rgb(&img);
    let gray_ref = IqftGraySegmenter::paper_default()
        .with_engine(SegmentEngine::serial())
        .segment_gray(&gray);
    let otsu_ref = baselines::OtsuSegmenter::new()
        .with_engine(SegmentEngine::serial())
        .segment_gray(&gray);
    let kmeans_ref = baselines::KMeansSegmenter::binary(9)
        .with_engine(SegmentEngine::serial())
        .segment_rgb(&img);

    for (name, engine) in all_engines() {
        assert_eq!(
            IqftRgbSegmenter::paper_default()
                .with_engine(engine)
                .segment_rgb(&img),
            rgb_ref,
            "IQFT RGB via {name}"
        );
        assert_eq!(
            IqftGraySegmenter::paper_default()
                .with_engine(engine)
                .segment_gray(&gray),
            gray_ref,
            "IQFT gray via {name}"
        );
        assert_eq!(
            baselines::OtsuSegmenter::new()
                .with_engine(engine)
                .segment_gray(&gray),
            otsu_ref,
            "Otsu via {name}"
        );
        assert_eq!(
            baselines::KMeansSegmenter::binary(9)
                .with_engine(engine)
                .segment_rgb(&img),
            kmeans_ref,
            "K-means via {name}"
        );
    }
}

/// Acceptance criterion, pipeline layer: the batched `iqft-pipeline` service
/// produces byte-identical label maps to per-image serial segmentation for
/// every engine backend, worker count and classifier fast path (exact, lazy
/// LUT, eager phase table), including with buffer recycling between batches.
#[test]
fn pipeline_batches_are_byte_identical_to_serial_per_image() {
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    let images: Vec<RgbImage> = (0..10)
        .map(|_| {
            let width = rng.gen_range(8usize..56);
            let height = rng.gen_range(8usize..40);
            random_image(&mut rng, width, height)
        })
        .collect();
    let reference: Vec<LabelMap> = images
        .iter()
        .map(|img| {
            IqftRgbSegmenter::paper_default()
                .with_engine(SegmentEngine::serial())
                .segment_rgb(img)
        })
        .collect();

    for (name, engine) in all_engines() {
        for workers in [1usize, 2, 8] {
            let config = PipelineConfig {
                workers,
                queue_capacity: 3,
                ..PipelineConfig::default()
            };
            let exact =
                SegmentPipeline::new(engine, IqftRgbSegmenter::paper_default()).with_config(config);
            let lut =
                SegmentPipeline::new(engine, LutRgbSegmenter::paper_default()).with_config(config);
            let table =
                SegmentPipeline::new(engine, PhaseTable::paper_default()).with_config(config);
            assert_eq!(
                exact.run_batch(&images).0,
                reference,
                "exact via {name}, workers={workers}"
            );
            assert_eq!(
                lut.run_batch(&images).0,
                reference,
                "lut via {name}, workers={workers}"
            );
            // Streamed in small batches with buffer recycling — the
            // steady-state production shape.
            let mut streamed: Vec<Option<LabelMap>> = (0..images.len()).map(|_| None).collect();
            let report = table.run_stream(&images, 3, |idx, labels| {
                streamed[idx] = Some(labels.clone());
                table.recycle(labels);
            });
            assert_eq!(report.images(), images.len());
            let streamed: Vec<LabelMap> = streamed.into_iter().map(Option::unwrap).collect();
            assert_eq!(streamed, reference, "table via {name}, workers={workers}");
        }
    }
}

/// Acceptance criterion, tiling layer: tiled segmentation is byte-identical
/// to whole-image segmentation for every tile size (including non-divisible
/// edge tiles) × every backend × all three classifier kinds, both through
/// the engine's `segment_tiled` and through a tiled `SegmentPipeline`.
#[test]
fn tiled_segmentation_is_byte_identical_to_whole_image() {
    let mut rng = ChaCha8Rng::seed_from_u64(1177);
    // 53×37 is deliberately indivisible by 7×3 and smaller than 64×64, so
    // the sweep exercises clamped edge tiles, a single oversized tile, and
    // the exact full-image tile.
    let img = random_image(&mut rng, 53, 37);
    let (w, h) = img.dimensions();
    let tile_sizes = [(1usize, 1usize), (7, 3), (64, 64), (w, h)];

    for kind in ClassifierKind::ALL {
        let classifier = IqftClassifier::paper_default(kind);
        let whole = SegmentEngine::serial().segment_rgb(&classifier, &img);
        for (name, engine) in all_engines() {
            for (tw, th) in tile_sizes {
                // Engine layer: direct tiled fan-out.
                assert_eq!(
                    engine.segment_tiled(&classifier, &img, tw, th),
                    whole,
                    "{kind} via {name}, tile {tw}x{th}"
                );
                // Plan layer: the single dispatch point callers go through.
                let plan = SegmentPlan::new(
                    kind,
                    Tiling::Tiles {
                        width: tw,
                        height: th,
                    },
                    engine.backend(),
                );
                assert_eq!(
                    plan.segment_rgb(&classifier, &img),
                    whole,
                    "{kind} plan via {name}, tile {tw}x{th}"
                );
            }
        }
    }
}

/// Acceptance criterion, pipeline tiling layer: a pipeline configured with
/// tile jobs produces byte-identical label maps to whole-image batches for
/// every backend, worker count and classifier kind.
#[test]
fn tiled_pipeline_batches_are_byte_identical_to_whole_image() {
    let mut rng = ChaCha8Rng::seed_from_u64(9090);
    let images: Vec<RgbImage> = (0..6)
        .map(|_| {
            let width = rng.gen_range(9usize..70);
            let height = rng.gen_range(9usize..50);
            random_image(&mut rng, width, height)
        })
        .collect();
    let reference: Vec<LabelMap> = images
        .iter()
        .map(|img| {
            IqftRgbSegmenter::paper_default()
                .with_engine(SegmentEngine::serial())
                .segment_rgb(img)
        })
        .collect();

    for (name, engine) in all_engines() {
        for workers in [1usize, 2, 8] {
            for kind in ClassifierKind::ALL {
                let config = PipelineConfig {
                    workers,
                    queue_capacity: 3,
                    tiling: Tiling::Tiles {
                        width: 16,
                        height: 13,
                    },
                };
                let pipeline = SegmentPipeline::new(engine, IqftClassifier::paper_default(kind))
                    .with_config(config);
                assert_eq!(
                    pipeline.run_batch(&images).0,
                    reference,
                    "{kind} via {name}, workers={workers}"
                );
            }
        }
    }
}

/// Acceptance criterion, quantized layer: the quantized scalar kernel, the
/// runtime SIMD dispatch, and every supported `std::arch` kernel produce
/// label maps byte-identical to the exact f64 classifier — whole-image and
/// tiled (7×3 and 64×64 against a 53×37 image, so edge tiles are clamped
/// and non-divisible), across every engine backend, through both the engine
/// and the `SegmentPlan` dispatch point.
#[test]
fn quantized_and_simd_classifiers_are_byte_identical_to_exact() {
    use iqft_seg::{QuantizedPhaseTable, SimdLevel};

    let mut rng = ChaCha8Rng::seed_from_u64(6001);
    let img = random_image(&mut rng, 53, 37);
    let (w, h) = img.dimensions();
    let exact = IqftClassifier::paper_default(ClassifierKind::Exact);
    let whole = SegmentEngine::serial().segment_rgb(&exact, &img);
    let tile_sizes = [(7usize, 3usize), (64, 64), (w, h)];

    for kind in [ClassifierKind::Quant, ClassifierKind::Simd] {
        let classifier = IqftClassifier::paper_default(kind);
        for (name, engine) in all_engines() {
            assert_eq!(
                engine.segment_rgb(&classifier, &img),
                whole,
                "{kind} via {name}, whole image"
            );
            for (tw, th) in tile_sizes {
                let plan = SegmentPlan::new(
                    kind,
                    Tiling::Tiles {
                        width: tw,
                        height: th,
                    },
                    engine.backend(),
                );
                assert_eq!(
                    plan.segment_rgb(&classifier, &img),
                    whole,
                    "{kind} plan via {name}, tile {tw}x{th}"
                );
            }
        }
    }

    // Every supported std::arch kernel agrees with the pinned scalar
    // quantized kernel byte-for-byte — labels and oracle-fallback counts.
    let scalar = QuantizedPhaseTable::paper_default().with_simd(SimdLevel::Scalar);
    let scalar_labels = SegmentEngine::serial().segment_rgb(&scalar, &img);
    assert_eq!(scalar_labels, whole, "scalar quantized vs exact");
    for level in SimdLevel::ALL {
        if !level.is_supported() {
            continue;
        }
        let kernel = QuantizedPhaseTable::paper_default().with_simd(level);
        assert_eq!(
            SegmentEngine::serial().segment_rgb(&kernel, &img),
            scalar_labels,
            "kernel {level} vs scalar quantized"
        );
        assert_eq!(
            kernel.fallback_pixels(),
            scalar.fallback_pixels(),
            "fallback count at {level}"
        );
    }
}

/// Acceptance criterion, harness layer: the full evaluation pipeline (the
/// code path behind `iqft-experiments table3 --backend ...`) produces
/// byte-identical label maps and scores when batched on `threads N` vs
/// `serial`.
#[test]
fn harness_evaluation_is_byte_identical_across_backends() {
    use experiments::{evaluate_method_with, Method};
    use iqft_seg::ForegroundPolicy;

    let dataset = PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: 4,
        width: 48,
        height: 36,
        seed: 55,
        ..PascalVocLikeConfig::default()
    });
    let samples: Vec<_> = dataset.iter().collect();
    let policy = ForegroundPolicy::LargestIsBackground;

    for method in Method::table3_methods(3) {
        let serial = evaluate_method_with(&SegmentEngine::serial(), &method, &samples, policy);
        for threads in [1usize, 2, 8] {
            let parallel = evaluate_method_with(
                &SegmentEngine::with_threads(threads),
                &method,
                &samples,
                policy,
            );
            assert_eq!(parallel.scores.len(), serial.scores.len());
            for (a, b) in parallel.scores.iter().zip(serial.scores.iter()) {
                assert_eq!(a.id, b.id, "{} threads={threads}", method.name());
                // Scores are a pure function of the label maps, so bitwise
                // equality here certifies byte-identical segmentations.
                assert_eq!(a.miou, b.miou, "{} threads={threads}", method.name());
                assert_eq!(
                    a.iou_foreground,
                    b.iou_foreground,
                    "{} threads={threads}",
                    method.name()
                );
            }
            assert_eq!(parallel.average_miou, serial.average_miou);
            assert_eq!(parallel.poor_fraction, serial.poor_fraction);
        }
    }

    // The binary label maps themselves, compared bit-for-bit across engines.
    for sample in &samples {
        let build = |engine: SegmentEngine| -> LabelMap {
            let segmenter = Method::IqftRgb {
                theta: std::f64::consts::PI,
            }
            .build_with(engine);
            segmenter.segment_rgb(&sample.image)
        };
        let reference = build(SegmentEngine::serial());
        for threads in [1usize, 2, 8] {
            assert_eq!(
                build(SegmentEngine::with_threads(threads)),
                reference,
                "{}",
                sample.id
            );
        }
    }
}
