//! Cross-crate integration tests: the full pipeline from dataset generation
//! through segmentation to evaluation, exercising every workspace crate
//! together the way the experiment harness does.

use datasets::{
    balls_scene, PascalVocLikeConfig, PascalVocLikeDataset, XViewLikeConfig, XViewLikeDataset,
};
use imaging::{color, hist::Histogram, Segmenter};
use iqft_seg::{
    reduce_to_foreground, ForegroundPolicy, IqftGraySegmenter, IqftRgbSegmenter, LutRgbSegmenter,
    ThetaParams,
};
use metrics::{mean_iou, miou_fg_bg};
use std::f64::consts::PI;

fn voc_samples(n: usize, seed: u64) -> Vec<datasets::LabeledImage> {
    PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: n,
        width: 80,
        height: 60,
        seed,
        ..PascalVocLikeConfig::default()
    })
    .iter()
    .collect()
}

#[test]
fn all_methods_produce_valid_scores_on_both_datasets() {
    let voc = voc_samples(4, 11);
    let xview: Vec<_> = XViewLikeDataset::new(XViewLikeConfig {
        len: 4,
        width: 80,
        height: 80,
        seed: 12,
        ..XViewLikeConfig::default()
    })
    .iter()
    .collect();
    let methods: Vec<Box<dyn Segmenter>> = vec![
        Box::new(baselines::KMeansSegmenter::binary(1)),
        Box::new(baselines::OtsuSegmenter::new()),
        Box::new(IqftRgbSegmenter::paper_default()),
        Box::new(IqftGraySegmenter::paper_default()),
    ];
    for samples in [&voc, &xview] {
        for method in &methods {
            for sample in samples.iter() {
                let raw = method.segment_rgb(&sample.image);
                assert_eq!(raw.dimensions(), sample.image.dimensions());
                let binary = reduce_to_foreground(
                    &raw,
                    ForegroundPolicy::LargestIsBackground,
                    Some(&sample.image),
                    None,
                );
                let breakdown = miou_fg_bg(&binary, &sample.ground_truth);
                assert!(
                    (0.0..=1.0).contains(&breakdown.miou),
                    "{} on {}: mIOU {}",
                    method.name(),
                    sample.id,
                    breakdown.miou
                );
            }
        }
    }
}

#[test]
fn iqft_rgb_segments_well_separated_scenes_accurately() {
    // On scenes whose objects are clearly brighter than the background the
    // IQFT RGB method with θ = π should reach a high mIOU — the regime the
    // paper's Fig. 8 examples come from.
    let samples = voc_samples(12, 99);
    let segmenter = IqftRgbSegmenter::paper_default();
    let mut best = 0.0f64;
    for sample in &samples {
        let raw = segmenter.segment_rgb(&sample.image);
        let binary = reduce_to_foreground(
            &raw,
            ForegroundPolicy::LargestIsBackground,
            Some(&sample.image),
            None,
        );
        best = best.max(mean_iou(&binary, &sample.ground_truth));
    }
    assert!(best > 0.7, "best mIOU over 12 scenes was only {best}");
}

#[test]
fn grayscale_iqft_with_otsu_equivalent_theta_matches_otsu_everywhere() {
    // Fig. 7's claim as an integration-level property over several scenes.
    for seed in [5u64, 6, 7] {
        let sample = &voc_samples(1, seed)[0];
        // Lift intensities so the threshold is in the single-threshold regime.
        let gray = color::rgb_to_gray_u8(&sample.image)
            .map(|p| imaging::Luma(100u8 + (p.value() as u16 * 155 / 255) as u8));
        let threshold = baselines::otsu_threshold(&Histogram::of_gray(&gray));
        let theta = iqft_seg::theta::theta_for_threshold(threshold + 0.5 / 255.0);
        let otsu_mask = baselines::OtsuSegmenter::new().segment_gray(&gray);
        let iqft_mask = IqftGraySegmenter::new(theta).segment_gray(&gray);
        assert_eq!(otsu_mask, iqft_mask, "seed {seed}");
    }
}

#[test]
fn multi_threshold_iqft_solves_the_balls_scene_exactly() {
    let scene = balls_scene(150, 100);
    let gray = color::rgb_to_gray_u8(&scene.image);
    let iqft = IqftGraySegmenter::new(4.0 * PI).segment_gray(&gray);
    let miou = mean_iou(&iqft, &scene.ground_truth);
    assert!(miou > 0.99, "mIOU {miou}");
    // A single Otsu threshold cannot reach that quality on this scene.
    let otsu = baselines::OtsuSegmenter::new().segment_gray(&gray);
    let otsu_binary = reduce_to_foreground(
        &otsu,
        ForegroundPolicy::LargestIsBackground,
        Some(&scene.image),
        None,
    );
    assert!(mean_iou(&otsu_binary, &scene.ground_truth) < miou);
}

#[test]
fn lut_segmenter_is_equivalent_to_direct_on_dataset_images() {
    let samples = voc_samples(2, 21);
    let direct = IqftRgbSegmenter::paper_default();
    let lut = LutRgbSegmenter::paper_default();
    for sample in &samples {
        assert_eq!(
            lut.segment_rgb(&sample.image),
            direct.segment_rgb(&sample.image),
            "{}",
            sample.id
        );
    }
    assert!(lut.cache_len() > 0);
}

#[test]
fn classical_pipeline_matches_quantum_simulation_on_dataset_pixels() {
    let sample = &voc_samples(1, 33)[0];
    let segmenter = IqftRgbSegmenter::paper_default();
    // Spot-check a grid of pixels against the state-vector simulator.
    for y in (0..sample.image.height()).step_by(17) {
        for x in (0..sample.image.width()).step_by(13) {
            let pixel = sample.image.get(x, y);
            let [gamma, beta, alpha] = segmenter.phases(pixel);
            let mut state = quantum::phase_product_state(&[alpha, beta, gamma]);
            quantum::Circuit::iqft(3).apply(&mut state);
            assert_eq!(
                segmenter.classify(pixel) as usize,
                state.most_probable(),
                "pixel at ({x},{y})"
            );
        }
    }
}

#[test]
fn theta_controls_granularity_on_real_scenes() {
    let sample = &voc_samples(1, 44)[0];
    let coarse = IqftRgbSegmenter::new(ThetaParams::uniform(PI / 4.0)).segment_rgb(&sample.image);
    let fine = IqftRgbSegmenter::new(ThetaParams::uniform(2.0 * PI)).segment_rgb(&sample.image);
    let coarse_n = imaging::labels::distinct_labels(&coarse);
    let fine_n = imaging::labels::distinct_labels(&fine);
    assert_eq!(coarse_n, 1);
    assert!(
        fine_n >= 3,
        "expected a rich segmentation, got {fine_n} labels"
    );
}

#[test]
fn oracle_reduction_never_scores_below_the_default_reduction() {
    let samples = voc_samples(3, 55);
    let segmenter = IqftRgbSegmenter::paper_default();
    for sample in &samples {
        let raw = segmenter.segment_rgb(&sample.image);
        let default_binary = reduce_to_foreground(
            &raw,
            ForegroundPolicy::LargestIsBackground,
            Some(&sample.image),
            Some(&sample.ground_truth),
        );
        let oracle_binary = reduce_to_foreground(
            &raw,
            ForegroundPolicy::Oracle,
            Some(&sample.image),
            Some(&sample.ground_truth),
        );
        let default_acc = miou_fg_bg(&default_binary, &sample.ground_truth).accuracy;
        let oracle_acc = miou_fg_bg(&oracle_binary, &sample.ground_truth).accuracy;
        assert!(
            oracle_acc >= default_acc - 1e-12,
            "{}: oracle {} < default {}",
            sample.id,
            oracle_acc,
            default_acc
        );
    }
}
