//! Property-based integration tests on the core invariants of the
//! reproduction: probability conservation, quantum/classical agreement,
//! θ ↔ threshold consistency, metric bounds and parallel determinism.
//!
//! The offline build environment has no `proptest`, so the properties run on
//! a small deterministic harness: each property is checked against `CASES`
//! pseudo-random inputs drawn from a seeded generator, and failures report
//! the case index so the exact input can be replayed.

use imaging::{LabelMap, Rgb, RgbImage, Segmenter, VOID_LABEL};
use iqft_seg::rgb::NUM_STATES;
use iqft_seg::{IqftGraySegmenter, IqftRgbSegmenter, ThetaParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;
use xpar::Backend;

const CASES: usize = 64;

/// Runs `property` against `CASES` deterministic pseudo-random inputs.
fn check<F: FnMut(usize, &mut ChaCha8Rng)>(seed: u64, mut property: F) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for case in 0..CASES {
        property(case, &mut rng);
    }
}

/// Algorithm 1's per-pixel output is always a probability distribution whose
/// arg-max is a valid label, for any angles in the paper's range.
#[test]
fn rgb_probabilities_are_a_distribution() {
    check(101, |case, rng| {
        let pixel = Rgb::new(rng.gen::<u8>(), rng.gen::<u8>(), rng.gen::<u8>());
        let seg = IqftRgbSegmenter::new(ThetaParams::new(
            rng.gen_range(0.0..2.0 * PI),
            rng.gen_range(0.0..2.0 * PI),
            rng.gen_range(0.0..2.0 * PI),
        ));
        let probs = seg.probabilities(pixel);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "case {case}: sum {sum}");
        assert!(
            probs.iter().all(|&p| (-1e-12..=1.0 + 1e-9).contains(&p)),
            "case {case}: {probs:?}"
        );
        assert!((seg.classify(pixel) as usize) < NUM_STATES, "case {case}");
    });
}

/// The fast factorised probability path always agrees with the explicit
/// matrix multiplication of Algorithm 1 line 4.
#[test]
fn fast_path_equals_matrix_path() {
    check(102, |case, rng| {
        let (gamma, beta, alpha) = (
            rng.gen_range(-10.0..10.0),
            rng.gen_range(-10.0..10.0),
            rng.gen_range(-10.0..10.0),
        );
        let seg = IqftRgbSegmenter::paper_default();
        let fast = seg.probabilities_from_phases(gamma, beta, alpha);
        let matrix = seg.probabilities_via_matrix(gamma, beta, alpha);
        for (a, b) in fast.iter().zip(matrix.iter()) {
            assert!((a - b).abs() < 1e-9, "case {case}: {a} vs {b}");
        }
    });
}

/// The classical pipeline agrees with the state-vector simulator for any
/// pixel and any uniform θ.
#[test]
fn classical_matches_quantum() {
    check(103, |case, rng| {
        let pixel = Rgb::new(rng.gen::<u8>(), rng.gen::<u8>(), rng.gen::<u8>());
        let theta = rng.gen_range(0.1..2.0 * PI);
        let seg = IqftRgbSegmenter::new(ThetaParams::uniform(theta));
        let [gamma, beta, alpha] = seg.phases(pixel);
        let mut state = quantum::phase_product_state(&[alpha, beta, gamma]);
        quantum::Circuit::iqft(3).apply(&mut state);
        let classical = seg.probabilities(pixel);
        for (c, q) in classical.iter().zip(state.probabilities()) {
            assert!((c - q).abs() < 1e-9, "case {case}: {c} vs {q}");
        }
    });
}

/// The grayscale class probabilities of eq. 14 always sum to one, and the
/// decision flips exactly at the eq. 15 thresholds.
#[test]
fn gray_probabilities_and_thresholds_are_consistent() {
    check(104, |case, rng| {
        let intensity = rng.gen_range(0.0..=1.0);
        let theta = rng.gen_range(0.2..4.0 * PI);
        let seg = IqftGraySegmenter::new(theta);
        let (p1, p2) = seg.probabilities(intensity);
        assert!((p1 + p2 - 1.0).abs() < 1e-12, "case {case}");
        let label = seg.classify_intensity(intensity);
        // The label equals the parity of the number of thresholds below the
        // intensity (bands alternate), except exactly at a boundary.
        let thresholds = seg.thresholds();
        let at_boundary = thresholds.iter().any(|t| (t - intensity).abs() < 1e-9);
        if !at_boundary {
            let bands_below = thresholds.iter().filter(|&&t| intensity > t).count() as u32;
            assert_eq!(label, bands_below % 2, "case {case}");
        }
    });
}

/// θ → threshold → θ round-trips through eq. 15 (primary branch).
#[test]
fn theta_threshold_roundtrip() {
    check(105, |case, rng| {
        let threshold = rng.gen_range(0.05..=1.0);
        let theta = iqft_seg::theta::theta_for_threshold(threshold);
        let back = iqft_seg::theta::primary_threshold(theta).unwrap();
        assert!((back - threshold).abs() < 1e-9, "case {case}: {back}");
    });
}

fn random_binary_map(rng: &mut ChaCha8Rng) -> LabelMap {
    let bits: Vec<u32> = (0..36).map(|_| rng.gen_range(0u32..2)).collect();
    LabelMap::from_vec(6, 6, bits).unwrap()
}

/// mIOU is bounded, symmetric for binary maps, and 1 exactly on equality.
#[test]
fn miou_bounds_and_symmetry() {
    check(106, |case, rng| {
        let a = random_binary_map(rng);
        let b = random_binary_map(rng);
        let ab = metrics::mean_iou(&a, &b);
        let ba = metrics::mean_iou(&b, &a);
        assert!((0.0..=1.0).contains(&ab), "case {case}: {ab}");
        assert!((ab - ba).abs() < 1e-12, "case {case}");
        assert_eq!(metrics::mean_iou(&a, &a), 1.0, "case {case}");
    });
}

/// Void pixels never change the score, wherever they are.
#[test]
fn void_pixels_are_ignored() {
    check(107, |case, rng| {
        let void_positions: Vec<usize> = (0..rng.gen_range(0usize..10))
            .map(|_| rng.gen_range(0usize..36))
            .collect();
        let gt_bits: Vec<u32> = (0..36).map(|i| u32::from(i % 3 == 0)).collect();
        let pred_bits: Vec<u32> = (0..36).map(|i| u32::from(i % 4 == 0)).collect();
        let gt = LabelMap::from_vec(6, 6, gt_bits.clone()).unwrap();
        let pred = LabelMap::from_vec(6, 6, pred_bits).unwrap();
        let baseline = metrics::mean_iou(&pred, &gt);
        // Flipping the prediction only under void pixels never changes the
        // score.
        let mut gt_void = gt.clone();
        for &pos in &void_positions {
            gt_void.as_mut_slice()[pos] = VOID_LABEL;
        }
        let mut pred_flipped = pred.clone();
        for &pos in &void_positions {
            pred_flipped.as_mut_slice()[pos] = 1 - pred_flipped.as_slice()[pos];
        }
        assert_eq!(
            metrics::mean_iou(&pred, &gt_void),
            metrics::mean_iou(&pred_flipped, &gt_void),
            "case {case}"
        );
        // And without void pixels the baseline is reproducible.
        assert_eq!(metrics::mean_iou(&pred, &gt), baseline, "case {case}");
    });
}

/// Whole-image segmentation is independent of the parallel backend.
#[test]
fn segmentation_is_deterministic_across_backends() {
    check(108, |case, rng| {
        let seed = rng.gen_range(0u64..1000);
        let img = RgbImage::from_fn(23, 11, |x, y| {
            let v = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((x * 31 + y * 17) as u64);
            Rgb::new(
                (v % 256) as u8,
                ((v >> 8) % 256) as u8,
                ((v >> 16) % 256) as u8,
            )
        });
        let serial = IqftRgbSegmenter::paper_default()
            .with_backend(Backend::Serial)
            .segment_rgb(&img);
        let threaded = IqftRgbSegmenter::paper_default()
            .with_backend(Backend::Threads(3))
            .segment_rgb(&img);
        let rayon = IqftRgbSegmenter::paper_default()
            .with_backend(Backend::Rayon)
            .segment_rgb(&img);
        assert_eq!(serial, threaded, "case {case}");
        assert_eq!(serial, rayon, "case {case}");
    });
}

/// A stats snapshot survives the wire round-trip (`to_text` → `from_text`)
/// exactly, for arbitrary counter values — including unknown forward-compat
/// keys, which must land in `extra` and re-encode without loss.
#[test]
fn stats_snapshot_round_trips_through_its_wire_text() {
    use iqft_serve::StatsSnapshot;
    check(109, |case, rng| {
        let mut snapshot = StatsSnapshot {
            plan: format!(
                "classifier=table;tile={}x{};backend=threads:{}",
                rng.gen_range(8usize..128),
                rng.gen_range(8usize..128),
                rng.gen_range(1usize..16),
            ),
            serve_mode: if rng.gen::<bool>() {
                "threads"
            } else {
                "evented"
            }
            .to_string(),
            // `to_text` renders floats with three decimals, so only
            // millis-grained values round-trip bit-exactly.
            uptime_secs: rng.gen_range(0u64..10_000_000) as f64 / 1000.0,
            connections_total: rng.gen_range(0usize..1 << 20),
            connections_open: rng.gen_range(0usize..1 << 10),
            requests_total: rng.gen_range(0usize..1 << 30),
            segment_requests: rng.gen_range(0usize..1 << 30),
            pixels_total: rng.gen::<u64>() >> 16,
            mpix_per_sec: rng.gen_range(0u64..100_000_000) as f64 / 1000.0,
            protocol_errors: rng.gen_range(0usize..1 << 10),
            arena_allocations: rng.gen_range(0usize..1 << 20),
            arena_reuses: rng.gen_range(0usize..1 << 20),
            arena_pooled: rng.gen_range(0usize..64),
            max_inflight: rng.gen_range(1usize..64),
            cache_hits: rng.gen_range(0usize..1 << 20),
            cache_misses: rng.gen_range(0usize..1 << 20),
            cache_evictions: rng.gen_range(0usize..1 << 20),
            cache_entries: rng.gen_range(0usize..1 << 16),
            cache_bytes: rng.gen_range(0usize..1 << 30),
            cache_capacity_bytes: rng.gen_range(0usize..1 << 30),
            delta_tiles_hit: rng.gen_range(0usize..1 << 20),
            delta_tiles_recomputed: rng.gen_range(0usize..1 << 20),
            quant_fallback_pixels: rng.gen::<u64>() >> 16,
            max_queue: rng.gen_range(0usize..256),
            busy_rejections: rng.gen_range(0usize..1 << 20),
            calibration: if rng.gen::<bool>() {
                // Calibration summaries themselves contain '=' — the parser
                // must split on the first one only.
                format!(
                    "cores={};probes={}",
                    rng.gen_range(1u32..64),
                    rng.gen_range(1u32..32)
                )
            } else {
                String::new()
            },
            lat_count: rng.gen::<u64>() >> 32,
            lat_p50_us: rng.gen::<u64>() >> 40,
            lat_p90_us: rng.gen::<u64>() >> 40,
            lat_p99_us: rng.gen::<u64>() >> 40,
            lat_p999_us: rng.gen::<u64>() >> 40,
            lat_max_us: rng.gen::<u64>() >> 40,
            conn_requests: rng.gen_range(0usize..1 << 20),
            conn_pixels: rng.gen::<u64>() >> 16,
            extra: std::collections::BTreeMap::new(),
        };
        // Unknown keys from a future server version.
        for k in 0..rng.gen_range(0usize..4) {
            snapshot.extra.insert(
                format!("future_key_{k}"),
                format!("value={}", rng.gen::<u32>()),
            );
        }
        let text = snapshot.to_text();
        let parsed = StatsSnapshot::from_text(&text)
            .unwrap_or_else(|err| panic!("case {case}: round-trip parse failed: {err}\n{text}"));
        assert_eq!(parsed, snapshot, "case {case}");
        // Re-encoding the parsed snapshot is stable (extra keys included).
        assert_eq!(parsed.to_text(), text, "case {case}");
    });
}
