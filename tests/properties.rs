//! Property-based integration tests (proptest) on the core invariants of the
//! reproduction: probability conservation, quantum/classical agreement,
//! θ ↔ threshold consistency, metric bounds and parallel determinism.

use imaging::{LabelMap, Rgb, RgbImage, Segmenter, VOID_LABEL};
use iqft_seg::rgb::NUM_STATES;
use iqft_seg::{IqftGraySegmenter, IqftRgbSegmenter, ThetaParams};
use proptest::prelude::*;
use std::f64::consts::PI;
use xpar::Backend;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1's per-pixel output is always a probability distribution
    /// whose arg-max is a valid label, for any angles in the paper's range.
    #[test]
    fn rgb_probabilities_are_a_distribution(
        r in 0u8..=255, g in 0u8..=255, b in 0u8..=255,
        t1 in 0.0f64..(2.0 * PI), t2 in 0.0f64..(2.0 * PI), t3 in 0.0f64..(2.0 * PI),
    ) {
        let seg = IqftRgbSegmenter::new(ThetaParams::new(t1, t2, t3));
        let probs = seg.probabilities(Rgb::new(r, g, b));
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(probs.iter().all(|&p| (-1e-12..=1.0 + 1e-9).contains(&p)));
        prop_assert!((seg.classify(Rgb::new(r, g, b)) as usize) < NUM_STATES);
    }

    /// The fast factorised probability path always agrees with the explicit
    /// matrix multiplication of Algorithm 1 line 4.
    #[test]
    fn fast_path_equals_matrix_path(
        gamma in -10.0f64..10.0, beta in -10.0f64..10.0, alpha in -10.0f64..10.0,
    ) {
        let seg = IqftRgbSegmenter::paper_default();
        let fast = seg.probabilities_from_phases(gamma, beta, alpha);
        let matrix = seg.probabilities_via_matrix(gamma, beta, alpha);
        for (a, b) in fast.iter().zip(matrix.iter()) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// The classical pipeline agrees with the state-vector simulator for any
    /// pixel and any uniform θ.
    #[test]
    fn classical_matches_quantum(
        r in 0u8..=255, g in 0u8..=255, b in 0u8..=255,
        theta in 0.1f64..(2.0 * PI),
    ) {
        let seg = IqftRgbSegmenter::new(ThetaParams::uniform(theta));
        let [gamma, beta, alpha] = seg.phases(Rgb::new(r, g, b));
        let mut state = quantum::phase_product_state(&[alpha, beta, gamma]);
        quantum::Circuit::iqft(3).apply(&mut state);
        let classical = seg.probabilities(Rgb::new(r, g, b));
        for (c, q) in classical.iter().zip(state.probabilities()) {
            prop_assert!((c - q).abs() < 1e-9);
        }
    }

    /// The grayscale class probabilities of eq. 14 always sum to one, and the
    /// decision flips exactly at the eq. 15 thresholds.
    #[test]
    fn gray_probabilities_and_thresholds_are_consistent(
        intensity in 0.0f64..=1.0,
        theta in 0.2f64..(4.0 * PI),
    ) {
        let seg = IqftGraySegmenter::new(theta);
        let (p1, p2) = seg.probabilities(intensity);
        prop_assert!((p1 + p2 - 1.0).abs() < 1e-12);
        let label = seg.classify_intensity(intensity);
        // The label equals the parity of the number of thresholds below the
        // intensity (bands alternate), except exactly at a boundary.
        let thresholds = seg.thresholds();
        let at_boundary = thresholds.iter().any(|t| (t - intensity).abs() < 1e-9);
        if !at_boundary {
            let bands_below = thresholds.iter().filter(|&&t| intensity > t).count() as u32;
            prop_assert_eq!(label, bands_below % 2);
        }
    }

    /// θ → threshold → θ round-trips through eq. 15 (primary branch).
    #[test]
    fn theta_threshold_roundtrip(threshold in 0.05f64..=1.0) {
        let theta = iqft_seg::theta::theta_for_threshold(threshold);
        let back = iqft_seg::theta::primary_threshold(theta).unwrap();
        prop_assert!((back - threshold).abs() < 1e-9);
    }

    /// mIOU is bounded, symmetric for binary maps, and 1 exactly on equality.
    #[test]
    fn miou_bounds_and_symmetry(bits_a in prop::collection::vec(0u32..2, 36),
                                bits_b in prop::collection::vec(0u32..2, 36)) {
        let a = LabelMap::from_vec(6, 6, bits_a).unwrap();
        let b = LabelMap::from_vec(6, 6, bits_b).unwrap();
        let ab = metrics::mean_iou(&a, &b);
        let ba = metrics::mean_iou(&b, &a);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert_eq!(metrics::mean_iou(&a, &a), 1.0);
    }

    /// Void pixels never change the score, wherever they are.
    #[test]
    fn void_pixels_are_ignored(void_positions in prop::collection::vec(0usize..36, 0..10)) {
        let gt_bits: Vec<u32> = (0..36).map(|i| u32::from(i % 3 == 0)).collect();
        let pred_bits: Vec<u32> = (0..36).map(|i| u32::from(i % 4 == 0)).collect();
        let gt = LabelMap::from_vec(6, 6, gt_bits.clone()).unwrap();
        let pred = LabelMap::from_vec(6, 6, pred_bits).unwrap();
        let baseline = metrics::mean_iou(&pred, &gt);
        // Marking some ground-truth pixels void where prediction == truth
        // cannot *lower* the foreground/background IOUs below ... instead we
        // check a simpler invariant: flipping the prediction only under void
        // pixels never changes the score.
        let mut gt_void = gt.clone();
        for &pos in &void_positions {
            gt_void.as_mut_slice()[pos] = VOID_LABEL;
        }
        let mut pred_flipped = pred.clone();
        for &pos in &void_positions {
            pred_flipped.as_mut_slice()[pos] = 1 - pred_flipped.as_slice()[pos];
        }
        prop_assert_eq!(
            metrics::mean_iou(&pred, &gt_void),
            metrics::mean_iou(&pred_flipped, &gt_void)
        );
        // And without void pixels the baseline is reproducible.
        prop_assert_eq!(metrics::mean_iou(&pred, &gt), baseline);
    }

    /// Whole-image segmentation is independent of the parallel backend.
    #[test]
    fn segmentation_is_deterministic_across_backends(seed in 0u64..1000) {
        let img = RgbImage::from_fn(23, 11, |x, y| {
            let v = seed.wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((x * 31 + y * 17) as u64);
            Rgb::new((v % 256) as u8, ((v >> 8) % 256) as u8, ((v >> 16) % 256) as u8)
        });
        let serial = IqftRgbSegmenter::paper_default()
            .with_backend(Backend::Serial)
            .segment_rgb(&img);
        let threaded = IqftRgbSegmenter::paper_default()
            .with_backend(Backend::Threads(3))
            .segment_rgb(&img);
        let rayon = IqftRgbSegmenter::paper_default()
            .with_backend(Backend::Rayon)
            .segment_rgb(&img);
        prop_assert_eq!(&serial, &threaded);
        prop_assert_eq!(&serial, &rayon);
    }
}
