//! `baselines` — the unsupervised segmentation baselines the paper compares
//! against: K-means clustering (scikit-learn in the paper) and Otsu
//! thresholding (scikit-image in the paper), both implemented from scratch.
//!
//! Both implement [`imaging::Segmenter`], so they slot into the same
//! evaluation harness as the IQFT-inspired methods.
//!
//! # Example
//!
//! ```
//! use baselines::OtsuSegmenter;
//! use imaging::{GrayImage, Luma, Segmenter};
//!
//! // Two intensity populations; Otsu finds the separating threshold.
//! let img = GrayImage::from_fn(8, 4, |x, _| Luma(if x < 4 { 40 } else { 210 }));
//! let labels = OtsuSegmenter::new().segment_gray(&img);
//! assert_ne!(labels.get(0, 0), labels.get(7, 0));
//! ```

pub mod kmeans;
pub mod otsu;

pub use kmeans::{KMeansConfig, KMeansResult, KMeansSegmenter};
pub use otsu::{multi_otsu_thresholds, otsu_threshold, OtsuSegmenter};
