//! `baselines` — the unsupervised segmentation baselines the paper compares
//! against: K-means clustering (scikit-learn in the paper) and Otsu
//! thresholding (scikit-image in the paper), both implemented from scratch.
//!
//! Both implement [`imaging::Segmenter`], so they slot into the same
//! evaluation harness as the IQFT-inspired methods.

pub mod kmeans;
pub mod otsu;

pub use kmeans::{KMeansConfig, KMeansResult, KMeansSegmenter};
pub use otsu::{multi_otsu_thresholds, otsu_threshold, OtsuSegmenter};
