//! K-means clustering in RGB space (Lloyd's algorithm with k-means++
//! initialisation and restarts), mirroring the scikit-learn defaults the
//! paper used as its K-means baseline.

use imaging::{LabelMap, Rgb, RgbImage, Segmenter};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use seg_engine::SegmentEngine;
use xpar::Backend;

/// Configuration for the K-means segmenter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters (the paper's foreground/background comparison uses
    /// `k = 2`, scikit-learn's default is 8; this crate defaults to 2).
    pub k: usize,
    /// Maximum Lloyd iterations per restart (scikit-learn default: 300).
    pub max_iters: usize,
    /// Number of k-means++ restarts; the best inertia wins (scikit-learn
    /// default: 10).
    pub n_init: usize,
    /// Relative centroid-movement tolerance that ends iteration early
    /// (scikit-learn default: 1e-4).
    pub tolerance: f64,
    /// RNG seed for initialisation.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iters: 300,
            n_init: 10,
            tolerance: 1e-4,
            seed: 0,
        }
    }
}

/// Result of one K-means fit.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final cluster centroids in normalised RGB space.
    pub centroids: Vec<Rgb<f64>>,
    /// Per-sample cluster assignments.
    pub assignments: Vec<u32>,
    /// Sum of squared distances of samples to their assigned centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations the winning restart used.
    pub iterations: usize,
}

/// K-means clustering of RGB pixels.
#[derive(Debug, Clone, Default)]
pub struct KMeansSegmenter {
    config: KMeansConfig,
    backend: Backend,
}

impl KMeansSegmenter {
    /// Creates a segmenter with the given configuration.
    pub fn new(config: KMeansConfig) -> Self {
        Self {
            config,
            backend: Backend::default(),
        }
    }

    /// Foreground/background configuration (`k = 2`) with the given seed.
    pub fn binary(seed: u64) -> Self {
        Self::new(KMeansConfig {
            k: 2,
            seed,
            ..KMeansConfig::default()
        })
    }

    /// Selects the execution backend for the assignment step.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Routes the assignment step through `engine`.
    pub fn with_engine(self, engine: SegmentEngine) -> Self {
        self.with_backend(engine.backend())
    }

    /// The engine the assignment step executes on.
    pub fn engine(&self) -> SegmentEngine {
        SegmentEngine::new(self.backend)
    }

    /// The configuration in use.
    pub fn config(&self) -> &KMeansConfig {
        &self.config
    }

    /// Runs K-means on an arbitrary set of samples in normalised RGB space.
    pub fn fit(&self, samples: &[Rgb<f64>]) -> KMeansResult {
        assert!(self.config.k >= 1, "k must be at least 1");
        assert!(
            !samples.is_empty(),
            "cannot run k-means on an empty sample set"
        );
        let mut best: Option<KMeansResult> = None;
        for restart in 0..self.config.n_init.max(1) {
            let mut rng = ChaCha8Rng::seed_from_u64(
                self.config.seed.wrapping_add(restart as u64 * 0x9E37_79B9),
            );
            let result = self.fit_once(samples, &mut rng);
            let better = match &best {
                None => true,
                Some(b) => result.inertia < b.inertia,
            };
            if better {
                best = Some(result);
            }
        }
        best.expect("at least one restart ran")
    }

    fn fit_once<R: Rng>(&self, samples: &[Rgb<f64>], rng: &mut R) -> KMeansResult {
        let k = self.config.k.min(samples.len());
        let engine = self.engine();
        let mut centroids = kmeans_plus_plus_init(samples, k, rng);
        let mut assignments = vec![0u32; samples.len()];
        let mut iterations = 0usize;
        for iter in 0..self.config.max_iters.max(1) {
            iterations = iter + 1;
            // Assignment step (parallel over samples, via the engine).
            let new_assignments: Vec<u32> = engine.map_indexed(samples.len(), |i| {
                nearest_centroid(samples[i], &centroids) as u32
            });
            assignments = new_assignments;
            // Update step.
            let mut sums = vec![Rgb::new(0.0, 0.0, 0.0); k];
            let mut counts = vec![0usize; k];
            for (sample, &assignment) in samples.iter().zip(assignments.iter()) {
                sums[assignment as usize] = sums[assignment as usize].add(*sample);
                counts[assignment as usize] += 1;
            }
            let mut movement: f64 = 0.0;
            for c in 0..k {
                let new_centroid = if counts[c] == 0 {
                    // Re-seed an empty cluster at a random sample.
                    samples[rng.gen_range(0..samples.len())]
                } else {
                    sums[c].scale(1.0 / counts[c] as f64)
                };
                movement += centroids[c].dist2(new_centroid);
                centroids[c] = new_centroid;
            }
            if movement.sqrt() < self.config.tolerance {
                break;
            }
        }
        let inertia: f64 = samples
            .iter()
            .zip(assignments.iter())
            .map(|(s, &a)| s.dist2(centroids[a as usize]))
            .sum();
        KMeansResult {
            centroids,
            assignments,
            inertia,
            iterations,
        }
    }
}

fn nearest_centroid(sample: Rgb<f64>, centroids: &[Rgb<f64>]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = sample.dist2(*c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// k-means++ initialisation: the first centroid is uniform, each subsequent
/// centroid is drawn with probability proportional to the squared distance to
/// the nearest already-chosen centroid.
fn kmeans_plus_plus_init<R: Rng>(samples: &[Rgb<f64>], k: usize, rng: &mut R) -> Vec<Rgb<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(*samples.choose(rng).expect("non-empty samples"));
    let mut dist2: Vec<f64> = samples.iter().map(|s| s.dist2(centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All samples coincide with existing centroids; pick uniformly.
            *samples.choose(rng).expect("non-empty samples")
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = samples.len() - 1;
            for (i, &d) in dist2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            samples[chosen]
        };
        centroids.push(next);
        for (d, s) in dist2.iter_mut().zip(samples.iter()) {
            *d = d.min(s.dist2(next));
        }
    }
    centroids
}

impl Segmenter for KMeansSegmenter {
    fn name(&self) -> &str {
        "K-means"
    }

    fn segment_rgb(&self, img: &RgbImage) -> LabelMap {
        let samples: Vec<Rgb<f64>> = img.pixels().map(|p| p.to_f64()).collect();
        let result = self.fit(&samples);
        LabelMap::from_vec(img.width(), img.height(), result.assignments)
            .expect("assignment count matches image size")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_samples() -> Vec<Rgb<f64>> {
        let mut samples = Vec::new();
        for i in 0..50 {
            let jitter = (i % 5) as f64 * 0.002;
            samples.push(Rgb::new(0.1 + jitter, 0.1, 0.1));
            samples.push(Rgb::new(0.9 - jitter, 0.9, 0.9));
        }
        samples
    }

    #[test]
    fn separates_two_well_separated_blobs() {
        let result = KMeansSegmenter::binary(7).fit(&two_blob_samples());
        assert_eq!(result.centroids.len(), 2);
        // One centroid near 0.1, one near 0.9.
        let mut means: Vec<f64> = result.centroids.iter().map(|c| c.r()).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((means[0] - 0.1).abs() < 0.05);
        assert!((means[1] - 0.9).abs() < 0.05);
        // Samples from the same blob share a label.
        assert_eq!(result.assignments[0], result.assignments[2]);
        assert_ne!(result.assignments[0], result.assignments[1]);
        assert!(result.inertia < 0.1);
        assert!(result.iterations >= 1);
    }

    #[test]
    fn k1_assigns_everything_to_one_cluster() {
        let config = KMeansConfig {
            k: 1,
            ..KMeansConfig::default()
        };
        let result = KMeansSegmenter::new(config).fit(&two_blob_samples());
        assert!(result.assignments.iter().all(|&a| a == 0));
        // Centroid is the global mean (≈ 0.5 per channel here).
        assert!((result.centroids[0].r() - 0.5).abs() < 0.01);
    }

    #[test]
    fn k_larger_than_sample_count_is_clamped() {
        let samples = vec![Rgb::new(0.2, 0.2, 0.2), Rgb::new(0.8, 0.8, 0.8)];
        let config = KMeansConfig {
            k: 10,
            n_init: 2,
            ..KMeansConfig::default()
        };
        let result = KMeansSegmenter::new(config).fit(&samples);
        assert!(result.centroids.len() <= 2);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn identical_samples_are_handled() {
        let samples = vec![Rgb::new(0.5, 0.5, 0.5); 20];
        let result = KMeansSegmenter::binary(3).fit(&samples);
        assert!(result.inertia < 1e-12);
        assert!(result.assignments.iter().all(|&a| a < 2));
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let samples = two_blob_samples();
        let a = KMeansSegmenter::binary(42).fit(&samples);
        let b = KMeansSegmenter::binary(42).fit(&samples);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let samples: Vec<Rgb<f64>> = (0..60)
            .map(|i| {
                let t = i as f64 / 59.0;
                Rgb::new(t, (t * 3.0).fract(), (t * 7.0).fract())
            })
            .collect();
        let mut prev = f64::INFINITY;
        for k in 1..=4 {
            let config = KMeansConfig {
                k,
                n_init: 5,
                seed: 9,
                ..KMeansConfig::default()
            };
            let inertia = KMeansSegmenter::new(config).fit(&samples).inertia;
            assert!(
                inertia <= prev + 1e-9,
                "k={k}: inertia {inertia} > previous {prev}"
            );
            prev = inertia;
        }
    }

    #[test]
    fn segment_rgb_produces_a_full_label_map() {
        let img = RgbImage::from_fn(20, 10, |x, _| {
            if x < 10 {
                Rgb::new(20, 20, 20)
            } else {
                Rgb::new(230, 230, 230)
            }
        });
        let labels = KMeansSegmenter::binary(1).segment_rgb(&img);
        assert_eq!(labels.dimensions(), (20, 10));
        assert_eq!(imaging::labels::distinct_labels(&labels), 2);
        assert_ne!(labels.get(0, 0), labels.get(19, 9));
        // Left half homogeneous.
        assert_eq!(labels.get(0, 0), labels.get(9, 9));
    }

    #[test]
    fn backend_choice_does_not_change_assignments() {
        let img = RgbImage::from_fn(16, 16, |x, y| Rgb::new((x * 16) as u8, (y * 16) as u8, 128));
        let serial = KMeansSegmenter::binary(5)
            .with_backend(Backend::Serial)
            .segment_rgb(&img);
        let parallel = KMeansSegmenter::binary(5)
            .with_backend(Backend::Threads(4))
            .segment_rgb(&img);
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_samples_panic() {
        let _ = KMeansSegmenter::binary(0).fit(&[]);
    }

    #[test]
    fn name_and_config_access() {
        let seg = KMeansSegmenter::binary(3);
        assert_eq!(seg.name(), "K-means");
        assert_eq!(seg.config().k, 2);
        assert_eq!(KMeansConfig::default().n_init, 10);
    }
}
