//! Otsu's thresholding method.
//!
//! Otsu's method picks the intensity threshold that maximises the
//! between-class variance of the grayscale histogram.  The paper uses
//! scikit-image's `threshold_otsu` as its second baseline and notes (its
//! Fig. 7) that the IQFT grayscale segmenter with θ = π/(2·I_th) produces an
//! identical mask.

use imaging::hist::Histogram;
use imaging::{color, GrayImage, LabelMap, PixelClassifier, RgbImage, Segmenter};
use seg_engine::SegmentEngine;
use xpar::Backend;

/// Computes Otsu's threshold from a 256-bin histogram, returned as a
/// normalised intensity in `[0, 1]`.
///
/// The returned value is the bin centre `t/255` of the winning bin `t`;
/// pixels with intensity strictly greater than the threshold belong to the
/// bright class, matching scikit-image's `image > threshold_otsu(image)`
/// convention.
pub fn otsu_threshold(hist: &Histogram) -> f64 {
    let total = hist.total();
    if total == 0 {
        return 0.5;
    }
    let probabilities = hist.probabilities();
    let global_mean: f64 = probabilities
        .iter()
        .enumerate()
        .map(|(i, &p)| i as f64 * p)
        .sum();
    let mut best_t = 0usize;
    let mut best_variance = f64::MIN;
    let mut w0 = 0.0; // cumulative class-0 probability
    let mut mu0_acc = 0.0; // cumulative class-0 mean numerator
    for (t, &p_t) in probabilities.iter().enumerate() {
        w0 += p_t;
        mu0_acc += t as f64 * p_t;
        let w1 = 1.0 - w0;
        if w0 <= 0.0 || w1 <= 0.0 {
            continue;
        }
        let mu0 = mu0_acc / w0;
        let mu1 = (global_mean - mu0_acc) / w1;
        let variance = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
        if variance > best_variance {
            best_variance = variance;
            best_t = t;
        }
    }
    best_t as f64 / 255.0
}

/// Multi-level Otsu: exhaustively searches for `levels` thresholds that
/// maximise the between-class variance.  Supported for `levels` ∈ {1, 2, 3};
/// used to give the Otsu baseline a fair shot at the multi-band scene of the
/// paper's Fig. 4 (which needs two thresholds).
pub fn multi_otsu_thresholds(hist: &Histogram, levels: usize) -> Vec<f64> {
    assert!(
        (1..=3).contains(&levels),
        "multi_otsu_thresholds supports 1 to 3 thresholds, got {levels}"
    );
    if levels == 1 {
        return vec![otsu_threshold(hist)];
    }
    let p = hist.probabilities();
    // Prefix sums of probability and of i*p for O(1) class statistics.
    let mut cum_p = [0.0f64; 257];
    let mut cum_ip = [0.0f64; 257];
    for i in 0..256 {
        cum_p[i + 1] = cum_p[i] + p[i];
        cum_ip[i + 1] = cum_ip[i] + i as f64 * p[i];
    }
    let class_score = |lo: usize, hi: usize| -> f64 {
        // Between-class contribution w·μ² of the class covering bins [lo, hi).
        let w = cum_p[hi] - cum_p[lo];
        if w <= 0.0 {
            return 0.0;
        }
        let mu = (cum_ip[hi] - cum_ip[lo]) / w;
        w * mu * mu
    };
    let mut best = Vec::new();
    let mut best_score = f64::MIN;
    if levels == 2 {
        for t1 in 1..255 {
            for t2 in (t1 + 1)..256 {
                let score = class_score(0, t1) + class_score(t1, t2) + class_score(t2, 256);
                if score > best_score {
                    best_score = score;
                    best = vec![t1, t2];
                }
            }
        }
    } else {
        // levels == 3: coarse-to-fine would be faster, but 256³/6 candidate
        // evaluations with O(1) scoring is still fine for offline use.
        for t1 in 1..254 {
            for t2 in (t1 + 1)..255 {
                let partial = class_score(0, t1) + class_score(t1, t2);
                for t3 in (t2 + 1)..256 {
                    let score = partial + class_score(t2, t3) + class_score(t3, 256);
                    if score > best_score {
                        best_score = score;
                        best = vec![t1, t2, t3];
                    }
                }
            }
        }
    }
    best.into_iter().map(|t| (t - 1) as f64 / 255.0).collect()
}

/// Otsu-thresholding segmenter (labels: 0 = dark class, 1 = bright class, or
/// band index for the multi-level variant).
#[derive(Debug, Clone)]
pub struct OtsuSegmenter {
    levels: usize,
    backend: Backend,
}

impl Default for OtsuSegmenter {
    fn default() -> Self {
        Self {
            levels: 1,
            backend: Backend::default(),
        }
    }
}

impl OtsuSegmenter {
    /// Single-threshold Otsu (the paper's baseline configuration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Multi-level Otsu with `levels` thresholds (1–3).
    pub fn multi(levels: usize) -> Self {
        assert!((1..=3).contains(&levels));
        Self {
            levels,
            ..Self::default()
        }
    }

    /// Selects the execution backend for the per-pixel thresholding pass
    /// (the histogram fit itself is a cheap serial scan).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Routes the per-pixel thresholding pass through `engine`.
    pub fn with_engine(self, engine: SegmentEngine) -> Self {
        self.with_backend(engine.backend())
    }

    /// Number of thresholds this segmenter fits.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The fitted threshold(s) for a grayscale image.
    pub fn thresholds_for(&self, img: &GrayImage) -> Vec<f64> {
        let hist = Histogram::of_gray(img);
        multi_otsu_thresholds(&hist, self.levels)
    }
}

/// The per-pixel rule of a *fitted* Otsu model: a pixel's label is the number
/// of fitted thresholds below its normalised intensity.  This is what the
/// `SegmentEngine` parallelises after the global histogram fit.
#[derive(Debug, Clone)]
pub struct FittedThresholds {
    thresholds: Vec<f64>,
}

impl FittedThresholds {
    /// Wraps an explicit set of normalised thresholds.
    pub fn new(thresholds: Vec<f64>) -> Self {
        Self { thresholds }
    }

    /// The wrapped thresholds.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

impl PixelClassifier for FittedThresholds {
    fn classify_rgb_pixel(&self, pixel: imaging::Rgb<u8>) -> u32 {
        self.classify_gray_pixel(imaging::Luma(color::luma_u8_of(pixel)))
    }

    fn classify_gray_pixel(&self, pixel: imaging::Luma<u8>) -> u32 {
        let intensity = pixel.value() as f64 / 255.0;
        self.thresholds.iter().filter(|&&t| intensity > t).count() as u32
    }
}

impl Segmenter for OtsuSegmenter {
    fn name(&self) -> &str {
        "Otsu"
    }

    fn segment_rgb(&self, img: &RgbImage) -> LabelMap {
        self.segment_gray(&color::rgb_to_gray_u8(img))
    }

    fn segment_gray(&self, img: &GrayImage) -> LabelMap {
        let fitted = FittedThresholds::new(self.thresholds_for(img));
        SegmentEngine::new(self.backend).segment_gray(&fitted, img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::Luma;

    fn bimodal_image(dark: u8, bright: u8) -> GrayImage {
        GrayImage::from_fn(32, 32, |x, y| {
            let inside = (8..24).contains(&x) && (8..24).contains(&y);
            Luma(if inside { bright } else { dark })
        })
    }

    #[test]
    fn otsu_threshold_sits_between_the_modes() {
        let img = bimodal_image(40, 210);
        let t = otsu_threshold(&Histogram::of_gray(&img));
        // For an ideal two-delta histogram the between-class variance is flat
        // between the modes; any threshold in [40, 210) is optimal and the
        // implementation (like scikit-image) reports the first optimum.
        assert!((40.0 / 255.0..210.0 / 255.0).contains(&t), "t={t}");
    }

    #[test]
    fn otsu_separates_the_object() {
        let img = bimodal_image(30, 220);
        let labels = OtsuSegmenter::new().segment_gray(&img);
        assert_eq!(labels.get(0, 0), 0);
        assert_eq!(labels.get(16, 16), 1);
        assert_eq!(imaging::labels::distinct_labels(&labels), 2);
    }

    #[test]
    fn empty_histogram_defaults_to_midpoint() {
        assert_eq!(otsu_threshold(&Histogram::new()), 0.5);
    }

    #[test]
    fn constant_image_yields_single_class() {
        let img = GrayImage::new(16, 16, Luma(100));
        let labels = OtsuSegmenter::new().segment_gray(&img);
        assert_eq!(imaging::labels::distinct_labels(&labels), 1);
    }

    #[test]
    fn threshold_is_invariant_to_image_scale() {
        let small = bimodal_image(50, 200);
        let large = GrayImage::from_fn(96, 96, |x, y| small.get(x / 3, y / 3));
        let t_small = otsu_threshold(&Histogram::of_gray(&small));
        let t_large = otsu_threshold(&Histogram::of_gray(&large));
        assert!((t_small - t_large).abs() < 1e-12);
    }

    #[test]
    fn multi_otsu_recovers_three_modes() {
        let img = GrayImage::from_fn(90, 10, |x, _| {
            Luma(match x / 30 {
                0 => 20,
                1 => 128,
                _ => 240,
            })
        });
        let t = multi_otsu_thresholds(&Histogram::of_gray(&img), 2);
        assert_eq!(t.len(), 2);
        assert!((20.0 / 255.0..128.0 / 255.0).contains(&t[0]), "t0={}", t[0]);
        assert!(
            (128.0 / 255.0..240.0 / 255.0).contains(&t[1]),
            "t1={}",
            t[1]
        );
        let labels = OtsuSegmenter::multi(2).segment_gray(&img);
        assert_eq!(imaging::labels::distinct_labels(&labels), 3);
        assert_eq!(labels.get(0, 0), 0);
        assert_eq!(labels.get(45, 5), 1);
        assert_eq!(labels.get(80, 5), 2);
    }

    #[test]
    fn multi_otsu_single_level_matches_otsu() {
        let img = bimodal_image(60, 190);
        let hist = Histogram::of_gray(&img);
        let multi = multi_otsu_thresholds(&hist, 1);
        assert_eq!(multi, vec![otsu_threshold(&hist)]);
    }

    #[test]
    #[should_panic(expected = "1 to 3")]
    fn unsupported_level_count_is_rejected() {
        let _ = multi_otsu_thresholds(&Histogram::new(), 4);
    }

    #[test]
    fn rgb_path_uses_luma_conversion() {
        let img = RgbImage::from_fn(16, 16, |x, _| {
            if x < 8 {
                imaging::Rgb::new(10, 10, 10)
            } else {
                imaging::Rgb::new(240, 240, 240)
            }
        });
        let labels = OtsuSegmenter::new().segment_rgb(&img);
        assert_ne!(labels.get(0, 0), labels.get(15, 15));
    }

    #[test]
    fn name_and_levels() {
        assert_eq!(OtsuSegmenter::new().name(), "Otsu");
        assert_eq!(OtsuSegmenter::multi(3).levels(), 3);
    }
}
