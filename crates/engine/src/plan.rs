//! [`SegmentPlan`] — the single dispatch point for segmentation strategy.
//!
//! Before this module existed the workspace chose its execution strategy in
//! three stringly-typed places: the experiments CLI parsed
//! `--classifier exact|lut|table` ad hoc, the bench targets hard-coded the
//! same three names, and tiling did not exist.  A [`SegmentPlan`] makes the
//! whole choice — *which classifier* ([`ClassifierKind`]) × *which work
//! decomposition* ([`Tiling`]) × *which backend* ([`xpar::Backend`]) — a
//! first-class value that every caller builds once and passes down, so
//! strategy parsing and dispatch live in exactly one place.
//!
//! The plan is deliberately algorithm-agnostic: it names classifier
//! *families*, and algorithm crates (e.g. `iqft-seg`'s `IqftClassifier`)
//! materialise the concrete [`imaging::PixelClassifier`] for a kind.  The
//! plan then executes any classifier through [`SegmentPlan::segment_rgb`],
//! which routes to the whole-image or tiled engine path; both are
//! byte-identical by construction.

use crate::SegmentEngine;
use imaging::{LabelMap, PixelClassifier, RgbImage};
use xpar::Backend;

/// The classifier families the workspace implements for the paper's RGB
/// algorithm, as selected by the `--classifier` flag.
///
/// This enum is the single source of truth for the
/// `exact|lut|table|quant|simd` flag vocabulary previously duplicated across
/// the experiments CLI and the bench targets; help text and error messages
/// render it via [`ClassifierKind::FLAG_HELP`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClassifierKind {
    /// Direct statevector-equivalent math per pixel (`IqftRgbSegmenter`).
    Exact,
    /// Lazy per-colour memoisation (`LutRgbSegmenter`).
    Lut,
    /// Eager precomputed phase table, three lookups per pixel (`PhaseTable`,
    /// the steady-state fast path and the default).
    #[default]
    Table,
    /// Fixed-point log-space quantization of the phase table, scalar integer
    /// inner loop (`QuantizedPhaseTable` pinned to its scalar kernel) —
    /// labels bit-identical to `exact` via the built-in f64 oracle fallback.
    Quant,
    /// The quantized table with runtime-dispatched `std::arch` SIMD kernels
    /// (AVX2 → SSE4.1 → SSE2, scalar elsewhere; `IQFT_SIMD` env overrides) —
    /// same bit-identical labels, the raw-speed hot path.
    Simd,
}

impl ClassifierKind {
    /// Every classifier kind, in flag order — handy for sweeps.
    pub const ALL: [ClassifierKind; 5] = [
        ClassifierKind::Exact,
        ClassifierKind::Lut,
        ClassifierKind::Table,
        ClassifierKind::Quant,
        ClassifierKind::Simd,
    ];

    /// The full `--classifier` flag vocabulary, rendered once for help text
    /// and error messages so every subcommand and bench enumerates the same
    /// set.
    pub const FLAG_HELP: &'static str = "exact|lut|table|quant|simd";

    /// Parses the `--classifier` flag (one of
    /// [`ClassifierKind::FLAG_HELP`]).
    pub fn from_flag(flag: &str) -> Result<Self, String> {
        match flag {
            "exact" => Ok(ClassifierKind::Exact),
            "lut" => Ok(ClassifierKind::Lut),
            "table" => Ok(ClassifierKind::Table),
            "quant" => Ok(ClassifierKind::Quant),
            "simd" => Ok(ClassifierKind::Simd),
            other => Err(format!(
                "unknown classifier '{other}' (expected one of {})",
                Self::FLAG_HELP
            )),
        }
    }

    /// The flag spelling of this kind (the inverse of
    /// [`ClassifierKind::from_flag`]).
    pub fn flag(self) -> &'static str {
        match self {
            ClassifierKind::Exact => "exact",
            ClassifierKind::Lut => "lut",
            ClassifierKind::Table => "table",
            ClassifierKind::Quant => "quant",
            ClassifierKind::Simd => "simd",
        }
    }

    /// Whether this kind classifies through the quantized fixed-point table
    /// (and therefore reports oracle-fallback pixel counts).
    pub fn is_quantized(self) -> bool {
        matches!(self, ClassifierKind::Quant | ClassifierKind::Simd)
    }
}

impl std::fmt::Display for ClassifierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.flag())
    }
}

/// How an image's pixels are decomposed into units of parallel work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tiling {
    /// One chunk-parallel pass over the whole label buffer (the default).
    #[default]
    Whole,
    /// Split the image into `width × height` tiles (edge tiles clamped) and
    /// fan the tiles out as independent jobs.
    Tiles {
        /// Tile width in pixels (clamped to at least 1).
        width: usize,
        /// Tile height in pixels (clamped to at least 1).
        height: usize,
    },
}

impl Tiling {
    /// Parses the `--tile` flag: `off` (or the empty string) selects
    /// [`Tiling::Whole`], `WxH` (e.g. `64x64`) selects [`Tiling::Tiles`].
    pub fn from_flag(flag: &str) -> Result<Self, String> {
        if flag.is_empty() || flag == "off" || flag == "whole" {
            return Ok(Tiling::Whole);
        }
        let parse = |part: &str| part.parse::<usize>().ok().filter(|&v| v > 0);
        if let Some((w, h)) = flag.split_once('x') {
            if let (Some(width), Some(height)) = (parse(w), parse(h)) {
                return Ok(Tiling::Tiles { width, height });
            }
        }
        Err(format!(
            "invalid tile shape '{flag}' (expected WxH with positive integers, e.g. 64x64, or off)"
        ))
    }

    /// The flag spelling of this tiling (the inverse of
    /// [`Tiling::from_flag`]).
    pub fn flag(self) -> String {
        match self {
            Tiling::Whole => "off".to_string(),
            Tiling::Tiles { width, height } => format!("{width}x{height}"),
        }
    }

    /// The tile shape, or `None` for a whole-image pass.
    pub fn shape(self) -> Option<(usize, usize)> {
        match self {
            Tiling::Whole => None,
            Tiling::Tiles { width, height } => Some((width, height)),
        }
    }

    /// Default tile edge for the per-tile delta cache when the plan does not
    /// pick one (i.e. [`Tiling::Whole`]): 64 pixels balances hash overhead
    /// against change-granularity for video-sized frames.
    pub const DEFAULT_DELTA_TILE: usize = 64;

    /// The tile shape the per-tile delta-cache path uses.  A tiled plan
    /// deltas at its own tile shape; a whole-image plan still needs *some*
    /// tile granularity to delta at, so it falls back to
    /// [`Tiling::DEFAULT_DELTA_TILE`]-square tiles.
    pub fn delta_shape(self) -> (usize, usize) {
        match self {
            Tiling::Whole => (Self::DEFAULT_DELTA_TILE, Self::DEFAULT_DELTA_TILE),
            Tiling::Tiles { width, height } => (width, height),
        }
    }
}

impl std::fmt::Display for Tiling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.flag())
    }
}

/// The parse/display form of a [`SegmentPlan`]: the same three strategy
/// axes as public fields, round-tripping through the canonical
/// `classifier=…;tile=…;backend=…` spec string.
///
/// This is the single owner of plan serialization.  [`SegmentPlan`]'s
/// `FromStr`/`Display` impls (and the older `to_spec`/`from_spec` methods)
/// all delegate here, so every CLI flag, Stats reply, and baseline record
/// speaks exactly one vocabulary.
///
/// # Example
///
/// ```
/// use seg_engine::{PlanSpec, SegmentPlan};
///
/// let spec: PlanSpec = "classifier=simd;tile=48x48;backend=threads:4".parse().unwrap();
/// let plan = SegmentPlan::from(spec);
/// assert_eq!(plan.to_string().parse::<SegmentPlan>().unwrap(), plan);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanSpec {
    /// Classifier family (`classifier=` key).
    pub classifier: ClassifierKind,
    /// Work decomposition (`tile=` key).
    pub tiling: Tiling,
    /// Execution backend (`backend=` key).
    pub backend: Backend,
}

impl std::str::FromStr for PlanSpec {
    type Err = String;

    /// Parses a spec such as `classifier=table;tile=48x48;backend=threads:4`.
    /// Keys may appear in any order; missing keys keep their defaults;
    /// unknown keys error.
    fn from_str(spec: &str) -> Result<Self, String> {
        let mut parsed = PlanSpec::default();
        for part in spec.split(';').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("plan spec part '{part}' has no '='"))?;
            match key {
                "classifier" => parsed.classifier = ClassifierKind::from_flag(value)?,
                "tile" => parsed.tiling = Tiling::from_flag(value)?,
                "backend" => parsed.backend = SegmentPlan::backend_from_spec(value)?,
                other => return Err(format!("unknown plan spec key '{other}'")),
            }
        }
        Ok(parsed)
    }
}

impl std::fmt::Display for PlanSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "classifier={};tile={};backend={}",
            self.classifier.flag(),
            self.tiling.flag(),
            SegmentPlan::backend_spec(self.backend)
        )
    }
}

impl From<SegmentPlan> for PlanSpec {
    fn from(plan: SegmentPlan) -> Self {
        PlanSpec {
            classifier: plan.classifier,
            tiling: plan.tiling,
            backend: plan.backend,
        }
    }
}

impl From<PlanSpec> for SegmentPlan {
    fn from(spec: PlanSpec) -> Self {
        SegmentPlan::new(spec.classifier, spec.tiling, spec.backend)
    }
}

/// A complete segmentation strategy: classifier family × work decomposition
/// × execution backend.
///
/// Every consumer — the experiments CLI, the throughput pipeline, the bench
/// targets — builds one of these (usually by parsing a [`PlanSpec`] string)
/// and executes through it, so strategy choice has a single owner.  Whatever
/// the plan, the resulting labels are byte-identical: classifier kinds agree
/// exactly by construction, and tiling/backends only reschedule independent
/// per-pixel work.
///
/// # Example
///
/// ```
/// use imaging::{Rgb, RgbImage};
/// use seg_engine::{SegmentPlan, Tiling};
///
/// let plan: SegmentPlan = "classifier=table;tile=32x32;backend=threads:2"
///     .parse()
///     .unwrap();
/// assert_eq!(plan.tiling(), Tiling::Tiles { width: 32, height: 32 });
///
/// // The plan executes any per-pixel rule; tiled and whole-image plans
/// // produce byte-identical labels.
/// let img = RgbImage::from_fn(70, 50, |x, y| Rgb::new(x as u8, y as u8, 0));
/// let rule = |p: Rgb<u8>| u32::from(p.r() > p.g());
/// let whole = SegmentPlan::default().segment_rgb(&rule, &img);
/// assert_eq!(plan.segment_rgb(&rule, &img), whole);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentPlan {
    classifier: ClassifierKind,
    tiling: Tiling,
    backend: Backend,
}

impl SegmentPlan {
    /// Creates a plan from its three strategy axes.
    pub fn new(classifier: ClassifierKind, tiling: Tiling, backend: Backend) -> Self {
        Self {
            classifier,
            tiling,
            backend,
        }
    }

    /// Parses the harness flags `--classifier exact|lut|table`,
    /// `--tile off|WxH`, and `--backend serial|threads|rayon --threads N`
    /// into a plan.
    #[deprecated(
        note = "parse a PlanSpec string instead (`\"classifier=…;tile=…;backend=…\".parse()`)"
    )]
    pub fn from_flags(
        classifier: &str,
        tile: &str,
        backend: &str,
        threads: usize,
    ) -> Result<Self, String> {
        Ok(Self::new(
            ClassifierKind::from_flag(classifier)?,
            Tiling::from_flag(tile)?,
            SegmentEngine::from_flags(backend, threads)?.backend(),
        ))
    }

    /// Replaces the classifier kind.
    pub fn with_classifier(mut self, classifier: ClassifierKind) -> Self {
        self.classifier = classifier;
        self
    }

    /// Replaces the work decomposition.
    pub fn with_tiling(mut self, tiling: Tiling) -> Self {
        self.tiling = tiling;
        self
    }

    /// Replaces the execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The classifier family this plan selects.
    pub fn classifier(&self) -> ClassifierKind {
        self.classifier
    }

    /// The work decomposition this plan selects.
    pub fn tiling(&self) -> Tiling {
        self.tiling
    }

    /// The execution backend this plan selects.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// An engine executing on the plan's backend.
    pub fn engine(&self) -> SegmentEngine {
        SegmentEngine::new(self.backend)
    }

    /// A one-line human-readable summary (`classifier=… tile=… backend=…`),
    /// used by reports.
    pub fn describe(&self) -> String {
        format!(
            "classifier={} tile={} backend={:?}",
            self.classifier, self.tiling, self.backend
        )
    }

    /// The flag spelling of a backend: `serial`, `threads:N` (N = 0 means
    /// one per core) or `rayon`.  The inverse of
    /// [`SegmentPlan::backend_from_spec`].
    pub fn backend_spec(backend: Backend) -> String {
        match backend {
            Backend::Serial => "serial".to_string(),
            Backend::Threads(n) => format!("threads:{n}"),
            Backend::Rayon => "rayon".to_string(),
        }
    }

    /// Parses a backend spec produced by [`SegmentPlan::backend_spec`]
    /// (`threads` without a count is accepted and means `threads:0`).
    pub fn backend_from_spec(spec: &str) -> Result<Backend, String> {
        match spec {
            "serial" => Ok(Backend::Serial),
            "rayon" => Ok(Backend::Rayon),
            "threads" => Ok(Backend::Threads(0)),
            other => match other.strip_prefix("threads:") {
                Some(count) => count
                    .parse::<usize>()
                    .map(Backend::Threads)
                    .map_err(|_| format!("invalid thread count in backend spec '{other}'")),
                None => Err(format!(
                    "unknown backend spec '{other}' (expected serial, threads[:N] or rayon)"
                )),
            },
        }
    }

    /// Serializes the whole plan into a compact machine-readable spec,
    /// e.g. `classifier=table;tile=48x48;backend=threads:4`.
    ///
    /// This is the form the `iqft-serve` Stats reply carries, so a remote
    /// client can reconstruct the exact strategy a server runs with
    /// [`SegmentPlan::from_spec`].  Round-trips losslessly.  Equivalent to
    /// the plan's `Display` impl (which delegates to [`PlanSpec`]).
    pub fn to_spec(&self) -> String {
        self.to_string()
    }

    /// Parses a spec produced by [`SegmentPlan::to_spec`].  Keys may appear
    /// in any order; missing keys keep their defaults; unknown keys error.
    /// Equivalent to the plan's `FromStr` impl (which delegates to
    /// [`PlanSpec`]).
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        spec.parse()
    }

    /// Segments `img` with `classifier` according to the plan's tiling on
    /// the plan's backend.  Byte-identical across every plan configuration.
    pub fn segment_rgb<C>(&self, classifier: &C, img: &RgbImage) -> LabelMap
    where
        C: PixelClassifier + Sync + ?Sized,
    {
        match self.tiling {
            Tiling::Whole => self.engine().segment_rgb(classifier, img),
            Tiling::Tiles { width, height } => {
                self.engine().segment_tiled(classifier, img, width, height)
            }
        }
    }

    /// Allocation-reusing variant of [`SegmentPlan::segment_rgb`]: fills
    /// `labels` in place.
    pub fn segment_rgb_into<C>(&self, classifier: &C, img: &RgbImage, labels: &mut Vec<u32>)
    where
        C: PixelClassifier + Sync + ?Sized,
    {
        match self.tiling {
            Tiling::Whole => self.engine().segment_rgb_into(classifier, img, labels),
            Tiling::Tiles { width, height } => self
                .engine()
                .segment_tiled_into(classifier, img, width, height, labels),
        }
    }
}

impl std::str::FromStr for SegmentPlan {
    type Err = String;

    fn from_str(spec: &str) -> Result<Self, String> {
        spec.parse::<PlanSpec>().map(Self::from)
    }
}

impl std::fmt::Display for SegmentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        PlanSpec::from(*self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::Rgb;

    #[test]
    fn classifier_flags_round_trip() {
        for kind in ClassifierKind::ALL {
            assert_eq!(ClassifierKind::from_flag(kind.flag()).unwrap(), kind);
            assert_eq!(format!("{kind}"), kind.flag());
        }
        assert!(ClassifierKind::from_flag("gpu").is_err());
        assert_eq!(ClassifierKind::default(), ClassifierKind::Table);
    }

    #[test]
    fn tiling_flags_round_trip() {
        for flag in ["off", "", "whole"] {
            assert_eq!(Tiling::from_flag(flag).unwrap(), Tiling::Whole);
        }
        assert_eq!(
            Tiling::from_flag("64x48").unwrap(),
            Tiling::Tiles {
                width: 64,
                height: 48
            }
        );
        let tiled = Tiling::Tiles {
            width: 7,
            height: 3,
        };
        assert_eq!(Tiling::from_flag(&tiled.flag()).unwrap(), tiled);
        assert_eq!(tiled.shape(), Some((7, 3)));
        assert_eq!(Tiling::Whole.shape(), None);
        assert_eq!(tiled.delta_shape(), (7, 3));
        assert_eq!(
            Tiling::Whole.delta_shape(),
            (Tiling::DEFAULT_DELTA_TILE, Tiling::DEFAULT_DELTA_TILE),
            "whole-image plans delta at the default square tile"
        );
        assert_eq!(Tiling::Whole.flag(), "off");
        for bad in ["64", "0x4", "4x0", "axb", "4x4x4"] {
            assert!(Tiling::from_flag(bad).is_err(), "{bad}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn plan_flags_compose_the_three_axes() {
        let plan = SegmentPlan::from_flags("lut", "16x8", "threads", 3).unwrap();
        assert_eq!(plan.classifier(), ClassifierKind::Lut);
        assert_eq!(
            plan.tiling(),
            Tiling::Tiles {
                width: 16,
                height: 8
            }
        );
        assert_eq!(plan.backend(), Backend::Threads(3));
        assert_eq!(plan.engine(), SegmentEngine::with_threads(3));
        assert!(plan.describe().contains("classifier=lut"));
        assert!(plan.describe().contains("tile=16x8"));
        assert!(SegmentPlan::from_flags("gpu", "off", "serial", 0).is_err());
        assert!(SegmentPlan::from_flags("table", "?", "serial", 0).is_err());
        assert!(SegmentPlan::from_flags("table", "off", "gpu", 0).is_err());
    }

    #[test]
    fn plan_specs_round_trip_losslessly() {
        let backends = [
            Backend::Serial,
            Backend::Threads(0),
            Backend::Threads(7),
            Backend::Rayon,
        ];
        for kind in ClassifierKind::ALL {
            for tiling in [
                Tiling::Whole,
                Tiling::Tiles {
                    width: 48,
                    height: 32,
                },
            ] {
                for backend in backends {
                    let plan = SegmentPlan::new(kind, tiling, backend);
                    let spec = plan.to_spec();
                    assert_eq!(SegmentPlan::from_spec(&spec).unwrap(), plan, "{spec}");
                }
            }
        }
        let spec = SegmentPlan::new(
            ClassifierKind::Table,
            Tiling::Tiles {
                width: 48,
                height: 48,
            },
            Backend::Threads(4),
        )
        .to_spec();
        assert_eq!(spec, "classifier=table;tile=48x48;backend=threads:4");
    }

    #[test]
    fn plan_spec_type_round_trips_and_converts_both_ways() {
        let spec = PlanSpec {
            classifier: ClassifierKind::Simd,
            tiling: Tiling::Tiles {
                width: 48,
                height: 32,
            },
            backend: Backend::Threads(4),
        };
        let rendered = spec.to_string();
        assert_eq!(rendered, "classifier=simd;tile=48x32;backend=threads:4");
        assert_eq!(rendered.parse::<PlanSpec>().unwrap(), spec);
        // SegmentPlan's FromStr/Display delegate through PlanSpec.
        let plan = SegmentPlan::from(spec);
        assert_eq!(plan.to_string(), rendered);
        assert_eq!(rendered.parse::<SegmentPlan>().unwrap(), plan);
        assert_eq!(PlanSpec::from(plan), spec);
        assert_eq!(
            "".parse::<PlanSpec>().unwrap(),
            PlanSpec::default(),
            "missing keys keep their defaults"
        );
        assert!("flavour=mint".parse::<SegmentPlan>().is_err());
    }

    #[test]
    fn plan_spec_parsing_is_order_insensitive_and_rejects_junk() {
        let plan = SegmentPlan::from_spec("backend=threads;classifier=lut;tile=8x8").unwrap();
        assert_eq!(plan.classifier(), ClassifierKind::Lut);
        assert_eq!(plan.backend(), Backend::Threads(0));
        assert_eq!(
            SegmentPlan::from_spec("").unwrap(),
            SegmentPlan::default(),
            "missing keys keep their defaults"
        );
        for bad in [
            "classifier=gpu",
            "tile=64",
            "backend=gpu",
            "backend=threads:lots",
            "flavour=mint",
            "classifier",
        ] {
            assert!(SegmentPlan::from_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn builder_methods_replace_single_axes() {
        let plan = SegmentPlan::default()
            .with_classifier(ClassifierKind::Exact)
            .with_tiling(Tiling::Tiles {
                width: 4,
                height: 4,
            })
            .with_backend(Backend::Serial);
        assert_eq!(plan.classifier(), ClassifierKind::Exact);
        assert_eq!(plan.backend(), Backend::Serial);
        assert_eq!(
            SegmentPlan::default().tiling(),
            Tiling::Whole,
            "default plan is a whole-image pass"
        );
    }

    #[test]
    fn tiled_and_whole_plans_agree_for_closures() {
        let img = RgbImage::from_fn(37, 23, |x, y| {
            Rgb::new((x * 7) as u8, (y * 11) as u8, ((x * y) % 251) as u8)
        });
        let rule = |p: Rgb<u8>| u32::from(p.r() as u16 + p.g() as u16 + p.b() as u16) % 5;
        let whole = SegmentPlan::default().segment_rgb(&rule, &img);
        for (tw, th) in [(1, 1), (7, 3), (64, 64), (37, 23)] {
            let plan = SegmentPlan::default().with_tiling(Tiling::Tiles {
                width: tw,
                height: th,
            });
            assert_eq!(plan.segment_rgb(&rule, &img), whole, "{tw}x{th}");
            let mut buf = Vec::new();
            plan.segment_rgb_into(&rule, &img, &mut buf);
            assert_eq!(buf, whole.as_slice(), "{tw}x{th} (_into)");
        }
    }
}
