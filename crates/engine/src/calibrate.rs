//! Startup plan calibration: probe the host, pick a [`SegmentPlan`].
//!
//! Every recorded baseline in this workspace was produced on one specific
//! container; a hard-coded default plan mis-tunes on any other machine (a
//! 1-core host wants `backend=serial;tile=off`, a 16-core host wants threads
//! and tiles).  This module runs a short, budget-bounded sweep over a
//! candidate grid of classifier × tiling × backend combinations against a
//! deterministic synthetic frame and returns the fastest plan it measured,
//! together with every per-probe timing so the choice is auditable through
//! Stats.
//!
//! The sweep is deterministic given a seed in everything but the timings
//! themselves: the synthetic frame, the candidate order, and the tie-break
//! (first probe wins on equal throughput) are all fixed, so two runs on the
//! same idle host converge to the same plan.
//!
//! The module is algorithm-agnostic like the rest of the engine crate: the
//! caller supplies a factory closure turning a [`ClassifierKind`] into a
//! concrete [`imaging::PixelClassifier`] (e.g. `IqftClassifier::paper_default`),
//! and calibration only measures how fast the plan executes it.

use std::time::{Duration, Instant};

use crate::{ClassifierKind, SegmentPlan, Tiling};
use imaging::{PixelClassifier, Rgb, RgbImage};
use xpar::Backend;

/// Tuning knobs for a calibration sweep.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Synthetic probe-frame width in pixels.
    pub width: usize,
    /// Synthetic probe-frame height in pixels.
    pub height: usize,
    /// Seed for the synthetic frame's pixel pattern.
    pub seed: u64,
    /// Timed repetitions per candidate plan; the fastest repeat is kept, so
    /// a scheduler hiccup cannot condemn a good plan.
    pub repeats: usize,
    /// Wall-clock budget for the whole sweep.  At least one candidate (the
    /// first, which is the workspace default plan) is always probed; once
    /// the budget is exhausted the remaining candidates are skipped and
    /// [`CalibrationReport::budget_exhausted`] is set.
    pub budget: Duration,
    /// Overrides the detected core count (mainly for deterministic tests).
    /// `None` asks the OS via `std::thread::available_parallelism`.
    pub max_threads: Option<usize>,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            width: 256,
            height: 256,
            seed: 0x5EED_CA11,
            repeats: 2,
            budget: Duration::from_millis(750),
            max_threads: None,
        }
    }
}

/// One timed candidate from the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeResult {
    /// The candidate plan that was measured.
    pub plan: SegmentPlan,
    /// Best (minimum) wall-clock time for one probe-frame segmentation.
    pub elapsed: Duration,
    /// Throughput of the best repeat, in megapixels per second.
    pub mpix_per_sec: f64,
}

/// The outcome of a calibration sweep: the chosen plan plus the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// The fastest plan measured (ties go to the earlier candidate).
    pub plan: SegmentPlan,
    /// Cores the sweep assumed (detected or overridden).
    pub cores: usize,
    /// Every probe that ran, in candidate order.
    pub probes: Vec<ProbeResult>,
    /// Total wall-clock time the sweep spent.
    pub elapsed: Duration,
    /// Whether the budget ran out before every candidate was probed.
    pub budget_exhausted: bool,
}

impl CalibrationReport {
    /// A compact single-line summary for Stats / logs, e.g.
    /// `cores=4;probes=8;elapsed_ms=41;best_mpix_s=512.3;exhausted=0`.
    /// Newline-free so it fits a `key=value` stats line.
    pub fn summary(&self) -> String {
        let best = self
            .probes
            .iter()
            .map(|p| p.mpix_per_sec)
            .fold(0.0_f64, f64::max);
        format!(
            "cores={};probes={};elapsed_ms={};best_mpix_s={:.1};exhausted={}",
            self.cores,
            self.probes.len(),
            self.elapsed.as_millis(),
            best,
            u8::from(self.budget_exhausted)
        )
    }

    /// Per-probe timings as a compact newline-free list, e.g.
    /// `classifier=table;tile=off;backend=serial@412.0mpx,…` — the audit
    /// trail behind [`CalibrationReport::plan`].
    pub fn probe_log(&self) -> String {
        self.probes
            .iter()
            .map(|p| format!("{}@{:.1}mpx", p.plan, p.mpix_per_sec))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A deterministic synthetic probe frame: a xorshift-scrambled pixel pattern
/// that is a pure function of `(x, y, seed)`, so every host calibrates
/// against identical input.
pub fn synthetic_frame(width: usize, height: usize, seed: u64) -> RgbImage {
    RgbImage::from_fn(width, height, |x, y| {
        let mut s = seed ^ ((x as u64) << 32) ^ (y as u64) ^ 0x9E37_79B9_7F4A_7C15;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let v = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
        Rgb::new((v >> 16) as u8, (v >> 32) as u8, (v >> 48) as u8)
    })
}

/// The candidate grid for a host with `cores` cores, in probe order.  The
/// first candidate is always the workspace default plan, so the budget floor
/// ("at least one probe") still yields a sensible choice.
fn candidates(cores: usize) -> Vec<SegmentPlan> {
    let mut backends = vec![Backend::Serial];
    if cores > 1 {
        backends.push(Backend::Threads(cores));
        if cores > 3 {
            backends.push(Backend::Threads(cores / 2));
        }
    }
    let tilings = [
        Tiling::Whole,
        Tiling::Tiles {
            width: 64,
            height: 64,
        },
        Tiling::Tiles {
            width: 32,
            height: 32,
        },
    ];
    // The steady-state classifier families only: `exact`/`lut` exist as
    // oracles and are never the right serving choice, so probing them would
    // spend budget to learn nothing.
    let kinds = [ClassifierKind::Table, ClassifierKind::Simd];
    let mut plans = vec![SegmentPlan::default()];
    for kind in kinds {
        for tiling in tilings {
            for backend in &backends {
                let plan = SegmentPlan::new(kind, tiling, *backend);
                if !plans.contains(&plan) {
                    plans.push(plan);
                }
            }
        }
    }
    plans
}

/// Runs the calibration sweep and returns the fastest measured plan.
///
/// `factory` materialises a concrete classifier for each candidate family;
/// it is invoked once per distinct [`ClassifierKind`] in the grid (built
/// classifiers are reused across tilings/backends).  Labels are
/// byte-identical across every candidate by the engine's construction, so
/// calibration is purely a performance decision.
pub fn calibrate<C, F>(config: &CalibrationConfig, factory: F) -> CalibrationReport
where
    C: PixelClassifier + Sync,
    F: Fn(ClassifierKind) -> C,
{
    let cores = config.max_threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let frame = synthetic_frame(config.width, config.height, config.seed);
    let pixels = (config.width * config.height) as f64;
    let repeats = config.repeats.max(1);

    let started = Instant::now();
    let mut probes = Vec::new();
    let mut budget_exhausted = false;
    let mut built: Vec<(ClassifierKind, C)> = Vec::new();

    for plan in candidates(cores) {
        if !probes.is_empty() && started.elapsed() >= config.budget {
            budget_exhausted = true;
            break;
        }
        let kind = plan.classifier();
        if !built.iter().any(|(k, _)| *k == kind) {
            built.push((kind, factory(kind)));
        }
        let classifier = &built.iter().find(|(k, _)| *k == kind).unwrap().1;
        // One untimed warm-up pass pays thread-spawn and cache-fill costs.
        let mut labels = Vec::new();
        plan.segment_rgb_into(classifier, &frame, &mut labels);
        let mut best = Duration::MAX;
        for _ in 0..repeats {
            let t0 = Instant::now();
            plan.segment_rgb_into(classifier, &frame, &mut labels);
            best = best.min(t0.elapsed());
        }
        let secs = best.as_secs_f64();
        let mpix_per_sec = if secs > 0.0 { pixels / secs / 1e6 } else { 0.0 };
        probes.push(ProbeResult {
            plan,
            elapsed: best,
            mpix_per_sec,
        });
    }

    let plan = probes
        .iter()
        .max_by(|a, b| {
            a.mpix_per_sec
                .partial_cmp(&b.mpix_per_sec)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|p| p.plan)
        .unwrap_or_default();

    CalibrationReport {
        plan,
        cores,
        probes,
        elapsed: started.elapsed(),
        budget_exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> impl Fn(Rgb<u8>) -> u32 + Sync {
        |p: Rgb<u8>| u32::from(p.r() as u16 + p.g() as u16 + p.b() as u16) % 4
    }

    #[test]
    fn synthetic_frames_are_deterministic_and_seed_sensitive() {
        let a = synthetic_frame(32, 16, 7);
        let b = synthetic_frame(32, 16, 7);
        let c = synthetic_frame(32, 16, 8);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        assert_eq!(a.width(), 32);
        assert_eq!(a.height(), 16);
    }

    #[test]
    fn candidate_grid_starts_with_the_default_plan_and_scales_with_cores() {
        let single = candidates(1);
        assert_eq!(single[0], SegmentPlan::default());
        assert!(single
            .iter()
            .all(|p| p.backend() == Backend::Serial || p == &SegmentPlan::default()));
        let multi = candidates(8);
        assert!(multi.len() > single.len());
        assert!(multi.iter().any(|p| p.backend() == Backend::Threads(8)));
        assert!(multi.iter().any(|p| p.backend() == Backend::Threads(4)));
        // No duplicate candidates: budget is too precious to probe twice.
        for (i, p) in multi.iter().enumerate() {
            assert!(!multi[i + 1..].contains(p), "{p}");
        }
    }

    #[test]
    fn calibration_probes_every_candidate_within_budget() {
        let config = CalibrationConfig {
            width: 48,
            height: 48,
            repeats: 1,
            budget: Duration::from_secs(60),
            max_threads: Some(2),
            ..CalibrationConfig::default()
        };
        let report = calibrate(&config, |_kind| rule());
        assert_eq!(report.cores, 2);
        assert_eq!(report.probes.len(), candidates(2).len());
        assert!(!report.budget_exhausted);
        assert!(report.probes.iter().any(|p| p.plan == report.plan));
        let best = report
            .probes
            .iter()
            .map(|p| p.mpix_per_sec)
            .fold(0.0_f64, f64::max);
        let chosen = report
            .probes
            .iter()
            .find(|p| p.plan == report.plan)
            .unwrap();
        assert_eq!(chosen.mpix_per_sec, best, "the fastest probe wins");
        assert!(report.summary().contains("cores=2"));
        assert!(!report.summary().contains('\n'));
        assert!(report.probe_log().contains("classifier="));
        assert!(!report.probe_log().contains('\n'));
    }

    #[test]
    fn a_zero_budget_still_probes_the_default_plan() {
        let config = CalibrationConfig {
            width: 16,
            height: 16,
            repeats: 1,
            budget: Duration::ZERO,
            max_threads: Some(4),
            ..CalibrationConfig::default()
        };
        let report = calibrate(&config, |_kind| rule());
        assert_eq!(report.probes.len(), 1);
        assert!(report.budget_exhausted);
        assert_eq!(report.plan, SegmentPlan::default());
        assert!(report.summary().contains("exhausted=1"));
    }

    #[test]
    fn calibrated_plans_stay_byte_identical_to_the_serial_reference() {
        let config = CalibrationConfig {
            width: 40,
            height: 24,
            repeats: 1,
            max_threads: Some(2),
            ..CalibrationConfig::default()
        };
        let report = calibrate(&config, |_kind| rule());
        let frame = synthetic_frame(40, 24, config.seed);
        let reference = SegmentPlan::default()
            .with_backend(Backend::Serial)
            .segment_rgb(&rule(), &frame);
        assert_eq!(report.plan.segment_rgb(&rule(), &frame), reference);
    }
}
