#![warn(missing_docs)]
//! `seg-engine` — the backend-aware parallel segmentation engine.
//!
//! Every segmentation algorithm in this workspace classifies pixels
//! independently once its (optional) global fitting step has run — the shape
//! [`imaging::PixelClassifier`] captures.  This crate owns the *execution* of
//! that shape: a [`SegmentEngine`] holds an [`xpar::Backend`] (serial, scoped
//! threads with a thread count, or Rayon) and provides
//!
//! * [`SegmentEngine::segment_rgb`] / [`SegmentEngine::segment_gray`] —
//!   chunk-parallel per-pixel classification over the label buffer
//!   (`xpar::par_for_each_chunk_mut` underneath), byte-identical to a serial
//!   pass for any backend and thread count;
//! * [`SegmentEngine::segment_tiled`] / [`SegmentEngine::segment_tiled_into`]
//!   — tile-level work distribution for large images: the image is split
//!   into zero-copy [`imaging::ImageView`] tiles which are classified as
//!   independent jobs and stitched back in deterministic order,
//!   byte-identical to the whole-image pass by construction;
//! * [`SegmentEngine::map_images`] — batched multi-image evaluation
//!   (`Backend::map_indexed` over a dataset slice), used by the experiment
//!   harness to score whole datasets in parallel;
//! * [`SegmentEngine::map_indexed`] — the raw indexed map for irregular
//!   workloads (e.g. the K-means assignment step).
//!
//! The [`plan`] module lifts the *choice* of strategy into a first-class
//! value: a [`SegmentPlan`] owns classifier family ([`ClassifierKind`]) ×
//! work decomposition ([`Tiling`]) × backend, and is the single dispatch
//! point every harness-level caller routes through.
//!
//! The algorithm crates (`iqft-seg`, `baselines`) route their `Segmenter`
//! implementations through an engine, and the `iqft-experiments` binary
//! exposes the engine's knob as `--backend serial|threads|rayon --threads N`,
//! so one flag controls parallelism across every layer of the workspace.
//! The `_into` variants ([`SegmentEngine::segment_rgb_into`]) fill a
//! caller-provided buffer, which is what the `iqft-pipeline` crate's arena
//! recycling builds on.
//!
//! # Example
//!
//! ```
//! use imaging::{Rgb, RgbImage};
//! use seg_engine::SegmentEngine;
//!
//! let img = RgbImage::from_fn(16, 16, |x, y| Rgb::new((x * 16) as u8, (y * 16) as u8, 0));
//! // Closures implement `PixelClassifier`, so a fitted model can hand the
//! // engine a lightweight rule.
//! let rule = |p: Rgb<u8>| u32::from(p.r() as u16 + p.g() as u16 > 255);
//! let serial = SegmentEngine::serial().segment_rgb(&rule, &img);
//! let parallel = SegmentEngine::with_threads(4).segment_rgb(&rule, &img);
//! assert_eq!(serial, parallel); // byte-identical on every backend
//! ```

pub mod calibrate;
pub mod plan;

pub use calibrate::{CalibrationConfig, CalibrationReport, ProbeResult};
pub use plan::{ClassifierKind, PlanSpec, SegmentPlan, Tiling};

use imaging::view::{LabelViewMut, TileRect};
use imaging::{GrayImage, LabelMap, PixelClassifier, RgbImage};
use xpar::Backend;

/// Executes pixel classifiers and dataset sweeps on a configured
/// [`xpar::Backend`].
///
/// The engine is `Copy` and trivially cheap to construct; segmenters hold one
/// by value and the harness passes one down the call tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentEngine {
    backend: Backend,
}

impl SegmentEngine {
    /// Creates an engine executing on `backend`.
    pub fn new(backend: Backend) -> Self {
        Self { backend }
    }

    /// An engine that runs everything on the calling thread.
    pub fn serial() -> Self {
        Self::new(Backend::Serial)
    }

    /// An engine using the scoped-thread substrate with `threads` workers
    /// (0 = one per available core).
    pub fn with_threads(threads: usize) -> Self {
        Self::new(Backend::Threads(threads))
    }

    /// Parses the harness flags `--backend serial|threads|rayon` and
    /// `--threads N` into an engine.
    ///
    /// `threads` is only meaningful for the `threads` backend (0 = one per
    /// core); `serial` ignores it and `rayon` uses the global Rayon pool (or
    /// the scoped-thread fallback when the `rayon-backend` feature of `xpar`
    /// is disabled).
    pub fn from_flags(backend: &str, threads: usize) -> Result<Self, String> {
        match backend {
            "serial" => Ok(Self::serial()),
            "threads" => Ok(Self::with_threads(threads)),
            "rayon" => Ok(Self::new(Backend::Rayon)),
            other => Err(format!(
                "unknown backend '{other}' (expected serial, threads or rayon)"
            )),
        }
    }

    /// The configured execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Effective worker-thread count of the configured backend.
    pub fn threads(&self) -> usize {
        self.backend.effective_threads()
    }

    /// Classifies every pixel of `img` with `classifier`, filling the label
    /// buffer in disjoint parallel chunks.
    ///
    /// The output is byte-identical across backends and thread counts because
    /// each label depends only on its own pixel.
    pub fn segment_rgb<C>(&self, classifier: &C, img: &RgbImage) -> LabelMap
    where
        C: PixelClassifier + Sync + ?Sized,
    {
        let (w, h) = img.dimensions();
        let mut labels = Vec::new();
        self.segment_rgb_into(classifier, img, &mut labels);
        LabelMap::from_vec(w, h, labels).expect("label buffer matches image size")
    }

    /// Allocation-reusing variant of [`SegmentEngine::segment_rgb`]: fills
    /// `labels` in place (clearing any previous contents and resizing to the
    /// pixel count).
    ///
    /// When `labels` already has sufficient capacity — e.g. a buffer recycled
    /// by the `iqft-pipeline` arena — the hot path performs **zero**
    /// allocations.  The written labels are byte-identical to
    /// [`SegmentEngine::segment_rgb`] on any backend.
    pub fn segment_rgb_into<C>(&self, classifier: &C, img: &RgbImage, labels: &mut Vec<u32>)
    where
        C: PixelClassifier + Sync + ?Sized,
    {
        let pixels = img.as_slice();
        labels.clear();
        labels.resize(pixels.len(), 0);
        // Each disjoint chunk goes through the classifier's batched slice
        // hook, so row/SIMD kernels (e.g. iqft-seg's quantized table)
        // accelerate the whole-image path too; the default hook is a
        // per-pixel loop, byte-identical to classify_rgb_pixel calls.
        self.backend.for_each_chunk_mut(labels, |start, chunk| {
            classifier.classify_rgb_slice_into(&pixels[start..start + chunk.len()], chunk);
        });
    }

    /// Grayscale counterpart of [`SegmentEngine::segment_rgb`].
    pub fn segment_gray<C>(&self, classifier: &C, img: &GrayImage) -> LabelMap
    where
        C: PixelClassifier + Sync + ?Sized,
    {
        let (w, h) = img.dimensions();
        let mut labels = Vec::new();
        self.segment_gray_into(classifier, img, &mut labels);
        LabelMap::from_vec(w, h, labels).expect("label buffer matches image size")
    }

    /// Grayscale counterpart of [`SegmentEngine::segment_rgb_into`].
    pub fn segment_gray_into<C>(&self, classifier: &C, img: &GrayImage, labels: &mut Vec<u32>)
    where
        C: PixelClassifier + Sync + ?Sized,
    {
        let pixels = img.as_slice();
        labels.clear();
        labels.resize(pixels.len(), 0);
        self.backend.for_each_chunk_mut(labels, |start, chunk| {
            classifier.classify_gray_slice_into(&pixels[start..start + chunk.len()], chunk);
        });
    }

    /// Tiled segmentation: splits `img` into `tile_w × tile_h` tiles (edge
    /// tiles clamped) and fans the tiles out as independent jobs on the
    /// engine's backend.
    ///
    /// Each tile is classified through a zero-copy [`imaging::ImageView`]
    /// and stitched back in deterministic tile order, so the result is
    /// **byte-identical** to [`SegmentEngine::segment_rgb`] by construction
    /// — tiling only changes the work granularity.  Use tiles when one
    /// large image would otherwise serialise onto a single worker.
    pub fn segment_tiled<C>(
        &self,
        classifier: &C,
        img: &RgbImage,
        tile_w: usize,
        tile_h: usize,
    ) -> LabelMap
    where
        C: PixelClassifier + Sync + ?Sized,
    {
        let (w, h) = img.dimensions();
        let mut labels = Vec::new();
        self.segment_tiled_into(classifier, img, tile_w, tile_h, &mut labels);
        LabelMap::from_vec(w, h, labels).expect("label buffer matches image size")
    }

    /// Allocation-reusing variant of [`SegmentEngine::segment_tiled`]: fills
    /// `labels` in place (clearing any previous contents and resizing to the
    /// pixel count).
    pub fn segment_tiled_into<C>(
        &self,
        classifier: &C,
        img: &RgbImage,
        tile_w: usize,
        tile_h: usize,
        labels: &mut Vec<u32>,
    ) where
        C: PixelClassifier + Sync + ?Sized,
    {
        let view = img.as_view();
        self.tiled_into(
            img.width(),
            img.height(),
            tile_w,
            tile_h,
            labels,
            |rect, out| {
                let tile = view.subview(rect).expect("tile rects lie inside the image");
                classifier.classify_rgb_view_into(&tile, out);
            },
        );
    }

    /// Grayscale counterpart of [`SegmentEngine::segment_tiled`].
    pub fn segment_tiled_gray<C>(
        &self,
        classifier: &C,
        img: &GrayImage,
        tile_w: usize,
        tile_h: usize,
    ) -> LabelMap
    where
        C: PixelClassifier + Sync + ?Sized,
    {
        let (w, h) = img.dimensions();
        let mut labels = Vec::new();
        self.segment_tiled_gray_into(classifier, img, tile_w, tile_h, &mut labels);
        LabelMap::from_vec(w, h, labels).expect("label buffer matches image size")
    }

    /// Grayscale counterpart of [`SegmentEngine::segment_tiled_into`].
    pub fn segment_tiled_gray_into<C>(
        &self,
        classifier: &C,
        img: &GrayImage,
        tile_w: usize,
        tile_h: usize,
        labels: &mut Vec<u32>,
    ) where
        C: PixelClassifier + Sync + ?Sized,
    {
        let view = img.as_view();
        self.tiled_into(
            img.width(),
            img.height(),
            tile_w,
            tile_h,
            labels,
            |rect, out| {
                let tile = view.subview(rect).expect("tile rects lie inside the image");
                classifier.classify_gray_view_into(&tile, out);
            },
        );
    }

    /// Shared tiled driver: fans tile jobs out with `Backend::map_indexed`
    /// (each job classifies one tile into a tile-local buffer), then
    /// stitches the tiles into `labels` in deterministic tile order.
    fn tiled_into<F>(
        &self,
        width: usize,
        height: usize,
        tile_w: usize,
        tile_h: usize,
        labels: &mut Vec<u32>,
        classify_tile: F,
    ) where
        F: Fn(TileRect, &mut LabelViewMut<'_>) + Sync + Send,
    {
        let rects: Vec<TileRect> =
            imaging::view::TileRects::over(width, height, tile_w, tile_h).collect();
        labels.clear();
        labels.resize(width * height, 0);
        let tiles: Vec<Vec<u32>> = self.backend.map_indexed(rects.len(), |i| {
            let rect = rects[i];
            let mut buf = vec![0u32; rect.area()];
            let mut out = LabelViewMut::contiguous(&mut buf, rect.width, rect.height)
                .expect("tile buffer matches tile area");
            classify_tile(rect, &mut out);
            buf
        });
        for (rect, tile) in rects.into_iter().zip(tiles) {
            LabelViewMut::new(labels, width, rect)
                .expect("tile rects lie inside the label buffer")
                .copy_from_tile(&tile);
        }
    }

    /// Maps `f` over a dataset slice in parallel, collecting results in
    /// dataset order (batched multi-image evaluation).
    pub fn map_images<S, T, F>(&self, samples: &[S], f: F) -> Vec<T>
    where
        S: Sync,
        T: Send,
        F: Fn(&S) -> T + Sync + Send,
    {
        self.backend.map_indexed(samples.len(), |i| f(&samples[i]))
    }

    /// Maps `f` over `0..len` in index order on the configured backend.
    pub fn map_indexed<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync + Send,
    {
        self.backend.map_indexed(len, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::{Luma, Rgb};

    fn all_engines() -> Vec<SegmentEngine> {
        vec![
            SegmentEngine::serial(),
            SegmentEngine::with_threads(1),
            SegmentEngine::with_threads(2),
            SegmentEngine::with_threads(8),
            SegmentEngine::with_threads(0),
            SegmentEngine::new(Backend::Rayon),
        ]
    }

    fn test_image() -> RgbImage {
        RgbImage::from_fn(37, 23, |x, y| {
            Rgb::new((x * 7) as u8, (y * 11) as u8, ((x * y) % 251) as u8)
        })
    }

    #[test]
    fn closure_classifier_is_backend_independent() {
        let img = test_image();
        let rule = |p: Rgb<u8>| u32::from(p.r() as u16 + p.g() as u16 + p.b() as u16 > 300);
        let serial = SegmentEngine::serial().segment_rgb(&rule, &img);
        for engine in all_engines() {
            assert_eq!(engine.segment_rgb(&rule, &img), serial, "{engine:?}");
        }
    }

    #[test]
    fn gray_path_uses_the_gray_rule() {
        struct Parity;
        impl PixelClassifier for Parity {
            fn classify_rgb_pixel(&self, p: Rgb<u8>) -> u32 {
                u32::from(p.r()) % 2
            }
            fn classify_gray_pixel(&self, p: Luma<u8>) -> u32 {
                u32::from(p.value()) % 2
            }
        }
        let img = GrayImage::from_fn(19, 5, |x, y| Luma((x * 3 + y) as u8));
        let serial = SegmentEngine::serial().segment_gray(&Parity, &img);
        for engine in all_engines() {
            assert_eq!(engine.segment_gray(&Parity, &img), serial, "{engine:?}");
        }
        assert_eq!(serial.get(1, 0), 1);
    }

    #[test]
    fn map_images_preserves_dataset_order() {
        let samples: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = samples.iter().map(|s| s * s).collect();
        for engine in all_engines() {
            assert_eq!(engine.map_images(&samples, |&s| s * s), expected);
        }
    }

    #[test]
    fn flag_parsing_round_trips() {
        assert_eq!(
            SegmentEngine::from_flags("serial", 4).unwrap().backend(),
            Backend::Serial
        );
        assert_eq!(
            SegmentEngine::from_flags("threads", 4).unwrap().backend(),
            Backend::Threads(4)
        );
        assert_eq!(
            SegmentEngine::from_flags("rayon", 4).unwrap().backend(),
            Backend::Rayon
        );
        assert!(SegmentEngine::from_flags("gpu", 1).is_err());
        assert_eq!(SegmentEngine::with_threads(3).threads(), 3);
        assert!(SegmentEngine::serial().threads() == 1);
    }

    #[test]
    fn into_variants_reuse_the_buffer_and_match_allocating_path() {
        let img = test_image();
        let gray = GrayImage::from_fn(37, 23, |x, y| Luma((x * y % 256) as u8));
        let rgb_rule = |p: Rgb<u8>| u32::from(p.r()) + u32::from(p.g());
        struct GrayRule;
        impl PixelClassifier for GrayRule {
            fn classify_rgb_pixel(&self, p: Rgb<u8>) -> u32 {
                u32::from(p.r())
            }
            fn classify_gray_pixel(&self, p: Luma<u8>) -> u32 {
                u32::from(p.value()) / 3
            }
        }
        for engine in all_engines() {
            let mut buf = Vec::new();
            engine.segment_rgb_into(&rgb_rule, &img, &mut buf);
            assert_eq!(buf, engine.segment_rgb(&rgb_rule, &img).into_vec());
            let capacity = buf.capacity();
            let ptr = buf.as_ptr();
            // A second fill of a same-sized image reuses the buffer in place.
            engine.segment_rgb_into(&rgb_rule, &img, &mut buf);
            assert_eq!(buf.capacity(), capacity);
            assert_eq!(buf.as_ptr(), ptr);
            engine.segment_gray_into(&GrayRule, &gray, &mut buf);
            assert_eq!(buf, engine.segment_gray(&GrayRule, &gray).into_vec());
        }
    }

    #[test]
    fn tiled_segmentation_is_byte_identical_to_whole_image() {
        let img = test_image(); // 37x23: not divisible by most tile shapes
        let rule = |p: Rgb<u8>| u32::from(p.r() as u16 + p.g() as u16 + p.b() as u16) % 7;
        let whole = SegmentEngine::serial().segment_rgb(&rule, &img);
        for engine in all_engines() {
            for (tw, th) in [(1, 1), (7, 3), (64, 64), (37, 23), (37, 1), (1, 23)] {
                assert_eq!(
                    engine.segment_tiled(&rule, &img, tw, th),
                    whole,
                    "{engine:?} tile {tw}x{th}"
                );
                let mut buf = Vec::new();
                engine.segment_tiled_into(&rule, &img, tw, th, &mut buf);
                assert_eq!(buf, whole.as_slice(), "{engine:?} tile {tw}x{th} (_into)");
            }
        }
    }

    #[test]
    fn tiled_gray_matches_whole_gray() {
        struct GrayRule;
        impl PixelClassifier for GrayRule {
            fn classify_rgb_pixel(&self, p: Rgb<u8>) -> u32 {
                u32::from(p.r())
            }
            fn classify_gray_pixel(&self, p: Luma<u8>) -> u32 {
                u32::from(p.value()) % 3
            }
        }
        let img = GrayImage::from_fn(29, 17, |x, y| Luma(((x * 13 + y * 5) % 256) as u8));
        let whole = SegmentEngine::serial().segment_gray(&GrayRule, &img);
        for engine in all_engines() {
            for (tw, th) in [(1, 1), (5, 4), (64, 64)] {
                assert_eq!(
                    engine.segment_tiled_gray(&GrayRule, &img, tw, th),
                    whole,
                    "{engine:?} tile {tw}x{th}"
                );
                let mut buf = Vec::new();
                engine.segment_tiled_gray_into(&GrayRule, &img, tw, th, &mut buf);
                assert_eq!(buf, whole.as_slice(), "{engine:?} tile {tw}x{th} (_into)");
            }
        }
    }

    #[test]
    fn tiled_empty_image_yields_empty_labels() {
        let img = RgbImage::from_fn(0, 0, |_, _| Rgb::new(0, 0, 0));
        let rule = |_: Rgb<u8>| 1u32;
        for engine in all_engines() {
            assert_eq!(engine.segment_tiled(&rule, &img, 8, 8).len(), 0);
        }
    }

    #[test]
    fn empty_image_yields_empty_labels() {
        let img = RgbImage::from_fn(0, 0, |_, _| Rgb::new(0, 0, 0));
        let rule = |_: Rgb<u8>| 1u32;
        for engine in all_engines() {
            assert_eq!(engine.segment_rgb(&rule, &img).len(), 0);
        }
    }
}
