//! Blurs and noise injection.
//!
//! The synthetic dataset generators use Gaussian blur to soften object
//! boundaries (so scenes are not trivially separable) and Gaussian /
//! salt-and-pepper noise to reproduce the sensor noise that makes Otsu
//! thresholding struggle in the paper's discussion.

use crate::pixel::{Luma, Rgb};
use crate::{GrayImage, RgbImage};
use rand::Rng;

/// Builds a normalised 1-D Gaussian kernel with standard deviation `sigma`.
///
/// The radius is `ceil(3 sigma)`, which captures >99% of the mass.
pub fn gaussian_kernel(sigma: f64) -> Vec<f64> {
    let sigma = sigma.max(1e-6);
    let radius = (3.0 * sigma).ceil() as i64;
    let mut kernel = Vec::with_capacity((2 * radius + 1) as usize);
    let denom = 2.0 * sigma * sigma;
    for i in -radius..=radius {
        kernel.push((-((i * i) as f64) / denom).exp());
    }
    let sum: f64 = kernel.iter().sum();
    for k in &mut kernel {
        *k /= sum;
    }
    kernel
}

fn convolve_separable_channel(
    data: &[f64],
    width: usize,
    height: usize,
    kernel: &[f64],
) -> Vec<f64> {
    let radius = (kernel.len() / 2) as i64;
    let clamp_x = |x: i64| x.clamp(0, width as i64 - 1) as usize;
    let clamp_y = |y: i64| y.clamp(0, height as i64 - 1) as usize;
    // Horizontal pass.
    let mut tmp = vec![0.0; data.len()];
    for y in 0..height {
        for x in 0..width {
            let mut acc = 0.0;
            for (ki, &k) in kernel.iter().enumerate() {
                let sx = clamp_x(x as i64 + ki as i64 - radius);
                acc += k * data[y * width + sx];
            }
            tmp[y * width + x] = acc;
        }
    }
    // Vertical pass.
    let mut out = vec![0.0; data.len()];
    for y in 0..height {
        for x in 0..width {
            let mut acc = 0.0;
            for (ki, &k) in kernel.iter().enumerate() {
                let sy = clamp_y(y as i64 + ki as i64 - radius);
                acc += k * tmp[sy * width + x];
            }
            out[y * width + x] = acc;
        }
    }
    out
}

/// Gaussian-blurs an RGB image with standard deviation `sigma` (edge pixels
/// are clamped).  `sigma <= 0` returns a copy of the input.
pub fn gaussian_blur_rgb(img: &RgbImage, sigma: f64) -> RgbImage {
    if sigma <= 0.0 || img.is_empty() {
        return img.clone();
    }
    let kernel = gaussian_kernel(sigma);
    let (w, h) = img.dimensions();
    let mut channels = [
        vec![0.0; img.len()],
        vec![0.0; img.len()],
        vec![0.0; img.len()],
    ];
    for (i, p) in img.pixels().enumerate() {
        channels[0][i] = p.r() as f64;
        channels[1][i] = p.g() as f64;
        channels[2][i] = p.b() as f64;
    }
    let blurred: Vec<Vec<f64>> = channels
        .iter()
        .map(|c| convolve_separable_channel(c, w, h, &kernel))
        .collect();
    RgbImage::from_fn(w, h, |x, y| {
        let i = y * w + x;
        Rgb::new(
            blurred[0][i].round().clamp(0.0, 255.0) as u8,
            blurred[1][i].round().clamp(0.0, 255.0) as u8,
            blurred[2][i].round().clamp(0.0, 255.0) as u8,
        )
    })
}

/// Gaussian-blurs a grayscale image with standard deviation `sigma`.
pub fn gaussian_blur_gray(img: &GrayImage, sigma: f64) -> GrayImage {
    if sigma <= 0.0 || img.is_empty() {
        return img.clone();
    }
    let kernel = gaussian_kernel(sigma);
    let (w, h) = img.dimensions();
    let data: Vec<f64> = img.pixels().map(|p| p.value() as f64).collect();
    let blurred = convolve_separable_channel(&data, w, h, &kernel);
    GrayImage::from_fn(w, h, |x, y| {
        Luma(blurred[y * w + x].round().clamp(0.0, 255.0) as u8)
    })
}

/// Adds zero-mean Gaussian noise with standard deviation `sigma` (in 0–255
/// units) to every channel of an RGB image.
pub fn add_gaussian_noise_rgb<R: Rng>(img: &mut RgbImage, sigma: f64, rng: &mut R) {
    if sigma <= 0.0 {
        return;
    }
    for p in img.pixels_mut() {
        let mut channels = p.0;
        for c in &mut channels {
            let n: f64 = sample_standard_normal(rng) * sigma;
            *c = (*c as f64 + n).round().clamp(0.0, 255.0) as u8;
        }
        *p = Rgb(channels);
    }
}

/// Adds zero-mean Gaussian noise to a grayscale image.
pub fn add_gaussian_noise_gray<R: Rng>(img: &mut GrayImage, sigma: f64, rng: &mut R) {
    if sigma <= 0.0 {
        return;
    }
    for p in img.pixels_mut() {
        let n: f64 = sample_standard_normal(rng) * sigma;
        *p = Luma((p.value() as f64 + n).round().clamp(0.0, 255.0) as u8);
    }
}

/// Replaces a fraction `amount` of pixels with pure black or white
/// (salt-and-pepper noise).
pub fn add_salt_pepper_rgb<R: Rng>(img: &mut RgbImage, amount: f64, rng: &mut R) {
    let amount = amount.clamp(0.0, 1.0);
    for p in img.pixels_mut() {
        if rng.gen::<f64>() < amount {
            *p = if rng.gen::<bool>() {
                Rgb::WHITE
            } else {
                Rgb::BLACK
            };
        }
    }
}

/// Samples a standard normal via the Box–Muller transform (avoids a dependency
/// on `rand_distr`).
fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn kernel_is_normalized_and_symmetric() {
        for sigma in [0.5, 1.0, 2.5] {
            let k = gaussian_kernel(sigma);
            let sum: f64 = k.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sigma={sigma}");
            assert_eq!(k.len() % 2, 1);
            for i in 0..k.len() / 2 {
                assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-12);
            }
            let mid = k.len() / 2;
            assert!(k[mid] >= k[0]);
        }
    }

    #[test]
    fn blur_of_constant_image_is_identity() {
        let img = RgbImage::new(16, 16, Rgb::new(100, 150, 200));
        let blurred = gaussian_blur_rgb(&img, 2.0);
        assert_eq!(blurred, img);
        let gray = GrayImage::new(8, 8, Luma(42));
        assert_eq!(gaussian_blur_gray(&gray, 1.5), gray);
    }

    #[test]
    fn blur_smooths_an_edge() {
        let img = GrayImage::from_fn(32, 8, |x, _| Luma(if x < 16 { 0 } else { 255 }));
        let blurred = gaussian_blur_gray(&img, 2.0);
        let edge_value = blurred.get(16, 4).value();
        assert!(edge_value > 0 && edge_value < 255);
        // far from the edge the original values survive
        assert_eq!(blurred.get(0, 4).value(), 0);
        assert_eq!(blurred.get(31, 4).value(), 255);
    }

    #[test]
    fn zero_sigma_blur_is_noop() {
        let img = RgbImage::from_fn(5, 5, |x, y| Rgb::new(x as u8, y as u8, 7));
        assert_eq!(gaussian_blur_rgb(&img, 0.0), img);
        assert_eq!(gaussian_blur_rgb(&img, -1.0), img);
    }

    #[test]
    fn gaussian_noise_changes_pixels_but_not_mean_much() {
        let mut img = RgbImage::new(64, 64, Rgb::new(128, 128, 128));
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        add_gaussian_noise_rgb(&mut img, 10.0, &mut rng);
        let changed = img
            .pixels()
            .filter(|p| **p != Rgb::new(128, 128, 128))
            .count();
        assert!(changed > img.len() / 2);
        let mean: f64 = img.pixels().map(|p| p.r() as f64).sum::<f64>() / img.len() as f64;
        assert!((mean - 128.0).abs() < 3.0, "mean drifted to {mean}");
    }

    #[test]
    fn gray_noise_is_seed_deterministic() {
        let make = || {
            let mut img = GrayImage::new(16, 16, Luma(100));
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            add_gaussian_noise_gray(&mut img, 5.0, &mut rng);
            img
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn salt_pepper_fraction_is_respected() {
        let mut img = RgbImage::new(100, 100, Rgb::new(128, 128, 128));
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        add_salt_pepper_rgb(&mut img, 0.1, &mut rng);
        let corrupted = img
            .pixels()
            .filter(|&&p| p == Rgb::WHITE || p == Rgb::BLACK)
            .count();
        let fraction = corrupted as f64 / img.len() as f64;
        assert!((fraction - 0.1).abs() < 0.02, "fraction={fraction}");
    }

    #[test]
    fn zero_noise_is_noop() {
        let mut img = GrayImage::new(4, 4, Luma(9));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        add_gaussian_noise_gray(&mut img, 0.0, &mut rng);
        assert!(img.pixels().all(|p| p.value() == 9));
    }
}
