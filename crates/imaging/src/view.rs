//! Zero-copy sub-image views and tile decomposition.
//!
//! Large frames (the `datasets::xview` satellite imagery being the motivating
//! case) should not have to be copied just to hand rectangular pieces of them
//! to parallel workers.  This module provides borrowed views over an
//! [`ImageBuffer`]'s row-major storage:
//!
//! * [`ImageView`] — an immutable `offset + stride` window over a parent
//!   buffer.  Rows of a view are contiguous slices of the parent, so a view
//!   can be traversed (or further sub-divided) without copying a pixel.
//! * [`LabelViewMut`] — the mutable counterpart for `u32` label storage:
//!   a window into a label buffer that a classifier fills row by row.
//! * [`TileRect`] / [`ImageView::tiles`] — a deterministic row-major tile
//!   decomposition (`tile_w × tile_h` interior tiles, clamped edge tiles on
//!   the right/bottom borders), the unit of work the `seg-engine` crate's
//!   `segment_tiled` fans out across its backend.
//!
//! Because every pixel's label depends only on that pixel, classifying the
//! tiles of a view in any order — or on any number of threads — produces
//! byte-identical output to a whole-image pass; the tile decomposition only
//! changes the work granularity.
//!
//! # Example
//!
//! ```
//! use imaging::{ImageBuffer, TileRect};
//!
//! let img = ImageBuffer::from_fn(10, 7, |x, y| (10 * y + x) as u8);
//! let view = img.view(TileRect::new(2, 1, 5, 4)).unwrap();
//! assert_eq!(view.dimensions(), (5, 4));
//! assert_eq!(view.get(0, 0), 12); // parent pixel (2, 1)
//! // 3x3 tiling of the 5x4 view: 2x2 tiles with clamped right/bottom edges.
//! let tiles: Vec<TileRect> = view.tile_rects(3, 3).collect();
//! assert_eq!(tiles.len(), 4);
//! assert_eq!(tiles[3], TileRect::new(3, 3, 2, 1));
//! ```

use crate::error::{ImagingError, Result};
use crate::image::ImageBuffer;

/// A rectangle inside an image or view, in pixel coordinates.
///
/// Coordinates are relative to whatever container produced the rectangle:
/// [`ImageView::tile_rects`] yields rectangles in *view* coordinates, which
/// coincide with parent coordinates when the view covers the whole image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRect {
    /// Left edge (inclusive).
    pub x: usize,
    /// Top edge (inclusive).
    pub y: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl TileRect {
    /// Creates a rectangle from its corner and size.
    pub fn new(x: usize, y: usize, width: usize, height: usize) -> Self {
        Self {
            x,
            y,
            width,
            height,
        }
    }

    /// A rectangle covering a whole `width × height` image.
    pub fn full(width: usize, height: usize) -> Self {
        Self::new(0, 0, width, height)
    }

    /// Number of pixels inside the rectangle.
    pub fn area(&self) -> usize {
        self.width * self.height
    }

    /// True if the rectangle contains no pixels.
    pub fn is_empty(&self) -> bool {
        self.area() == 0
    }

    /// True if `self` lies entirely inside a `width × height` container.
    ///
    /// Uses checked arithmetic so degenerate rectangles near `usize::MAX`
    /// cannot wrap around into "valid" ones.
    pub fn fits_in(&self, width: usize, height: usize) -> bool {
        let right = self.x.checked_add(self.width);
        let bottom = self.y.checked_add(self.height);
        matches!((right, bottom), (Some(r), Some(b)) if r <= width && b <= height)
    }

    fn out_of(&self, parent: (usize, usize)) -> ImagingError {
        ImagingError::InvalidView {
            rect: (self.x, self.y, self.width, self.height),
            parent,
        }
    }
}

/// Row-major iterator over the tile decomposition of a `width × height`
/// area: interior tiles are `tile_w × tile_h`, edge tiles on the right and
/// bottom borders are clamped to the remaining pixels.
///
/// Created by [`ImageView::tile_rects`] / [`ImageBuffer::tile_rects`].  The
/// iteration order (left-to-right, then top-to-bottom) is deterministic, so
/// tile indices are stable across runs and backends.
#[derive(Debug, Clone)]
pub struct TileRects {
    width: usize,
    height: usize,
    tile_w: usize,
    tile_h: usize,
    x: usize,
    y: usize,
}

impl TileRects {
    /// The tile decomposition of a free-standing `width × height` area (not
    /// tied to any buffer) — what the tiled engine paths iterate over.
    pub fn over(width: usize, height: usize, tile_w: usize, tile_h: usize) -> Self {
        Self::new(width, height, tile_w, tile_h)
    }

    fn new(width: usize, height: usize, tile_w: usize, tile_h: usize) -> Self {
        Self {
            width,
            height,
            // A zero-sized tile would never cover anything; clamp to 1 so the
            // decomposition always terminates.
            tile_w: tile_w.max(1),
            tile_h: tile_h.max(1),
            x: 0,
            y: 0,
        }
    }
}

impl Iterator for TileRects {
    type Item = TileRect;

    fn next(&mut self) -> Option<TileRect> {
        if self.y >= self.height || self.width == 0 {
            return None;
        }
        let rect = TileRect::new(
            self.x,
            self.y,
            self.tile_w.min(self.width - self.x),
            self.tile_h.min(self.height - self.y),
        );
        self.x += self.tile_w;
        if self.x >= self.width {
            self.x = 0;
            self.y += self.tile_h;
        }
        Some(rect)
    }
}

/// An immutable, zero-copy rectangular window over an [`ImageBuffer`].
///
/// The view borrows the parent's row-major storage and addresses it through
/// an `offset + stride` scheme: row `y` of the view is the contiguous parent
/// slice starting at `(y0 + y) * stride + x0`.  Sub-views and tiles borrow
/// the *same* storage, so decomposing an image for parallel work never
/// copies pixels.
#[derive(Debug, Clone, Copy)]
pub struct ImageView<'a, P> {
    data: &'a [P],
    stride: usize,
    x0: usize,
    y0: usize,
    width: usize,
    height: usize,
}

impl<'a, P: Copy> ImageView<'a, P> {
    /// Wraps `rect` of a row-major buffer whose rows are `stride` elements
    /// long.  Fails with [`ImagingError::InvalidView`] if the rectangle does
    /// not lie inside the buffer.
    pub fn new(data: &'a [P], stride: usize, rect: TileRect) -> Result<Self> {
        let rows = data.len().checked_div(stride).unwrap_or(0);
        if !rect.fits_in(stride, rows) && !rect.is_empty() {
            return Err(rect.out_of((stride, rows)));
        }
        Ok(Self {
            data,
            stride,
            x0: rect.x,
            y0: rect.y,
            width: rect.width,
            height: rect.height,
        })
    }

    /// View width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// View height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of pixels in the view.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// True if the view contains no pixels.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The view's origin `(x0, y0)` in parent coordinates.
    pub fn offset(&self) -> (usize, usize) {
        (self.x0, self.y0)
    }

    /// Length of a parent row in elements (the distance between the starts
    /// of two consecutive view rows in the underlying storage).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The pixel at view coordinates `(x, y)`, panicking if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> P {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds for {}x{} view",
            self.width,
            self.height
        );
        self.data[(self.y0 + y) * self.stride + self.x0 + x]
    }

    /// Row `y` of the view as a contiguous slice of the parent buffer.
    pub fn row(&self, y: usize) -> &'a [P] {
        assert!(y < self.height, "row {y} out of bounds");
        if self.width == 0 {
            return &self.data[..0];
        }
        let start = (self.y0 + y) * self.stride + self.x0;
        &self.data[start..start + self.width]
    }

    /// Iterator over the view's rows (contiguous parent slices).
    pub fn rows(&self) -> impl Iterator<Item = &'a [P]> + '_ {
        (0..self.height).map(|y| self.row(y))
    }

    /// Iterator over the view's pixels in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = P> + '_ {
        self.rows().flat_map(|row| row.iter().copied())
    }

    /// A sub-view of `rect` (in *view* coordinates), borrowing the same
    /// parent storage.  Fails with [`ImagingError::InvalidView`] if the
    /// rectangle pokes outside this view.
    pub fn subview(&self, rect: TileRect) -> Result<ImageView<'a, P>> {
        if !rect.fits_in(self.width, self.height) && !rect.is_empty() {
            return Err(rect.out_of(self.dimensions()));
        }
        Ok(ImageView {
            data: self.data,
            stride: self.stride,
            x0: self.x0 + rect.x,
            y0: self.y0 + rect.y,
            width: rect.width,
            height: rect.height,
        })
    }

    /// The tile decomposition of this view as rectangles in view
    /// coordinates (see [`TileRects`] for order and edge clamping).
    pub fn tile_rects(&self, tile_w: usize, tile_h: usize) -> TileRects {
        TileRects::new(self.width, self.height, tile_w, tile_h)
    }

    /// The tile decomposition of this view as zero-copy sub-views.
    pub fn tiles(
        &self,
        tile_w: usize,
        tile_h: usize,
    ) -> impl Iterator<Item = ImageView<'a, P>> + '_ {
        self.tile_rects(tile_w, tile_h)
            .map(|rect| self.subview(rect).expect("tile rects lie inside the view"))
    }

    /// Copies the viewed pixels into a fresh owned image.
    pub fn to_image(&self) -> ImageBuffer<P> {
        ImageBuffer::from_fn(self.width, self.height, |x, y| self.get(x, y))
    }
}

impl<P: Copy> ImageBuffer<P> {
    /// A zero-copy view covering the whole image.
    pub fn as_view(&self) -> ImageView<'_, P> {
        ImageView::new(
            self.as_slice(),
            self.width(),
            TileRect::full(self.width(), self.height()),
        )
        .expect("full-image view is always valid")
    }

    /// A zero-copy view of `rect`.  Fails with [`ImagingError::InvalidView`]
    /// if the rectangle does not lie inside the image.
    pub fn view(&self, rect: TileRect) -> Result<ImageView<'_, P>> {
        self.as_view().subview(rect)
    }

    /// The tile decomposition of the whole image (see [`TileRects`]).
    pub fn tile_rects(&self, tile_w: usize, tile_h: usize) -> TileRects {
        TileRects::new(self.width(), self.height(), tile_w, tile_h)
    }

    /// The tile decomposition of the whole image as zero-copy sub-views.
    pub fn tiles(&self, tile_w: usize, tile_h: usize) -> impl Iterator<Item = ImageView<'_, P>> {
        let view = self.as_view();
        view.tile_rects(tile_w, tile_h)
            .map(move |rect| view.subview(rect).expect("tile rects lie inside the image"))
    }
}

/// A mutable, zero-copy rectangular window over `u32` label storage.
///
/// This is the write-side counterpart of [`ImageView`]: a classifier fills a
/// tile's labels through one of these, either into a tile-local scratch
/// buffer ([`LabelViewMut::contiguous`]) or directly into a window of a
/// whole-image label buffer ([`LabelViewMut::new`] /
/// [`crate::LabelMap::view_mut`]).
#[derive(Debug)]
pub struct LabelViewMut<'a> {
    data: &'a mut [u32],
    stride: usize,
    x0: usize,
    y0: usize,
    width: usize,
    height: usize,
}

impl<'a> LabelViewMut<'a> {
    /// Wraps `rect` of a row-major label buffer whose rows are `stride`
    /// elements long.  Fails with [`ImagingError::InvalidView`] if the
    /// rectangle does not lie inside the buffer.
    pub fn new(data: &'a mut [u32], stride: usize, rect: TileRect) -> Result<Self> {
        let rows = data.len().checked_div(stride).unwrap_or(0);
        if !rect.fits_in(stride, rows) && !rect.is_empty() {
            return Err(rect.out_of((stride, rows)));
        }
        Ok(Self {
            data,
            stride,
            x0: rect.x,
            y0: rect.y,
            width: rect.width,
            height: rect.height,
        })
    }

    /// Wraps a dense `width × height` buffer as a full-coverage view
    /// (`stride == width`, origin at zero) — the shape of a tile-local
    /// scratch buffer.  Fails with [`ImagingError::DimensionMismatch`] if
    /// the buffer length is not `width * height`.
    pub fn contiguous(data: &'a mut [u32], width: usize, height: usize) -> Result<Self> {
        let area = ImageBuffer::<u32>::checked_area(width, height)?;
        if data.len() != area {
            return Err(ImagingError::DimensionMismatch {
                expected: area,
                actual: data.len(),
            });
        }
        Self::new(data, width.max(1), TileRect::full(width, height))
    }

    /// View width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// View height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of labels in the view.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// True if the view contains no labels.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The view's origin `(x0, y0)` in parent coordinates.
    pub fn offset(&self) -> (usize, usize) {
        (self.x0, self.y0)
    }

    /// Row `y` of the view as a contiguous mutable slice.
    pub fn row_mut(&mut self, y: usize) -> &mut [u32] {
        assert!(y < self.height, "row {y} out of bounds");
        if self.width == 0 {
            return &mut self.data[..0];
        }
        let start = (self.y0 + y) * self.stride + self.x0;
        &mut self.data[start..start + self.width]
    }

    /// Sets the label at view coordinates `(x, y)`, panicking if out of
    /// bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, label: u32) {
        assert!(
            x < self.width && y < self.height,
            "label ({x}, {y}) out of bounds for {}x{} view",
            self.width,
            self.height
        );
        self.data[(self.y0 + y) * self.stride + self.x0 + x] = label;
    }

    /// Copies a dense row-major `width × height` tile of labels into the
    /// view — the stitch step that folds tile-local scratch buffers back
    /// into a whole-image label buffer.
    ///
    /// # Panics
    ///
    /// Panics if `tile.len() != self.len()`.
    pub fn copy_from_tile(&mut self, tile: &[u32]) {
        assert_eq!(
            tile.len(),
            self.len(),
            "tile label count does not match the {}x{} view",
            self.width,
            self.height
        );
        for y in 0..self.height {
            let src = &tile[y * self.width..(y + 1) * self.width];
            self.row_mut(y).copy_from_slice(src);
        }
    }

    /// Fills every label in the view with `label`.
    pub fn fill(&mut self, label: u32) {
        for y in 0..self.height {
            self.row_mut(y).fill(label);
        }
    }
}

impl ImageBuffer<u32> {
    /// A mutable zero-copy label view of `rect`.  Fails with
    /// [`ImagingError::InvalidView`] if the rectangle does not lie inside
    /// the map.
    pub fn view_mut(&mut self, rect: TileRect) -> Result<LabelViewMut<'_>> {
        let stride = self.width();
        LabelViewMut::new(self.as_mut_slice(), stride, rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parent() -> ImageBuffer<u8> {
        ImageBuffer::from_fn(10, 7, |x, y| (10 * y + x) as u8)
    }

    #[test]
    fn full_view_matches_the_buffer() {
        let img = parent();
        let view = img.as_view();
        assert_eq!(view.dimensions(), img.dimensions());
        assert_eq!(view.len(), img.len());
        assert_eq!(view.offset(), (0, 0));
        assert_eq!(view.stride(), 10);
        assert!(!view.is_empty());
        for (x, y, p) in img.enumerate_pixels() {
            assert_eq!(view.get(x, y), p);
        }
        let collected: Vec<u8> = view.pixels().collect();
        assert_eq!(collected, img.as_slice());
    }

    #[test]
    fn offset_view_addresses_parent_pixels() {
        let img = parent();
        let view = img.view(TileRect::new(2, 1, 5, 4)).unwrap();
        assert_eq!(view.get(0, 0), 12);
        assert_eq!(view.get(4, 3), 46);
        assert_eq!(view.row(2), &[32, 33, 34, 35, 36]);
        assert_eq!(view.rows().count(), 4);
        assert_eq!(view.to_image().as_slice(), {
            let mut expected = Vec::new();
            for y in 1..5 {
                for x in 2..7 {
                    expected.push((10 * y + x) as u8);
                }
            }
            expected
        });
    }

    #[test]
    fn out_of_bounds_views_are_rejected() {
        let img = parent();
        assert!(matches!(
            img.view(TileRect::new(6, 0, 5, 2)).unwrap_err(),
            ImagingError::InvalidView { .. }
        ));
        assert!(matches!(
            img.view(TileRect::new(0, 5, 1, 3)).unwrap_err(),
            ImagingError::InvalidView { .. }
        ));
        // Degenerate rectangles near usize::MAX must not wrap into validity.
        assert!(img.view(TileRect::new(usize::MAX, 0, 2, 1)).is_err());
        // Empty rectangles anywhere are fine — they have no pixels to read.
        let empty = img.view(TileRect::new(9, 9, 0, 0)).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.pixels().count(), 0);
    }

    #[test]
    fn subview_composes_offsets() {
        let img = parent();
        let outer = img.view(TileRect::new(2, 1, 6, 5)).unwrap();
        let inner = outer.subview(TileRect::new(1, 2, 3, 2)).unwrap();
        assert_eq!(inner.offset(), (3, 3));
        assert_eq!(inner.get(0, 0), img.get(3, 3));
        assert!(outer.subview(TileRect::new(4, 0, 3, 1)).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_get_out_of_bounds_panics() {
        let img = parent();
        let view = img.view(TileRect::new(0, 0, 2, 2)).unwrap();
        let _ = view.get(2, 0);
    }

    #[test]
    fn tile_rects_cover_every_pixel_exactly_once() {
        for (w, h, tw, th) in [
            (10usize, 7usize, 3usize, 3usize),
            (10, 7, 1, 1),
            (10, 7, 64, 64),
            (10, 7, 10, 7),
            (5, 5, 2, 5),
            (1, 9, 4, 2),
        ] {
            let mut seen = vec![0u32; w * h];
            for rect in TileRects::new(w, h, tw, th) {
                assert!(rect.fits_in(w, h), "{rect:?} in {w}x{h}");
                assert!(!rect.is_empty());
                for y in rect.y..rect.y + rect.height {
                    for x in rect.x..rect.x + rect.width {
                        seen[y * w + x] += 1;
                    }
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "{w}x{h} tiled {tw}x{th} is not a partition"
            );
        }
    }

    #[test]
    fn tile_rects_are_row_major_and_edge_clamped() {
        let rects: Vec<TileRect> = TileRects::new(10, 7, 4, 3).collect();
        assert_eq!(rects.len(), 9);
        assert_eq!(rects[0], TileRect::new(0, 0, 4, 3));
        assert_eq!(rects[2], TileRect::new(8, 0, 2, 3)); // clamped right edge
        assert_eq!(rects[8], TileRect::new(8, 6, 2, 1)); // clamped corner
                                                         // Zero tile sizes are clamped to 1 instead of looping forever.
        assert_eq!(TileRects::new(3, 2, 0, 0).count(), 6);
        // Empty areas decompose into no tiles.
        assert_eq!(TileRects::new(0, 5, 2, 2).count(), 0);
        assert_eq!(TileRects::new(5, 0, 2, 2).count(), 0);
    }

    #[test]
    fn tiles_iterator_yields_matching_subviews() {
        let img = parent();
        let view = img.as_view();
        for (rect, tile) in view.tile_rects(4, 3).zip(view.tiles(4, 3)) {
            assert_eq!(tile.dimensions(), (rect.width, rect.height));
            assert_eq!(tile.offset(), (rect.x, rect.y));
            assert_eq!(tile.get(0, 0), img.get(rect.x, rect.y));
        }
        assert_eq!(img.tiles(4, 3).count(), img.tile_rects(4, 3).count());
    }

    #[test]
    fn label_view_mut_writes_through_to_the_parent() {
        let mut labels = ImageBuffer::new(6, 4, 0u32);
        {
            let mut view = labels.view_mut(TileRect::new(2, 1, 3, 2)).unwrap();
            assert_eq!(view.dimensions(), (3, 2));
            assert_eq!(view.offset(), (2, 1));
            assert_eq!(view.len(), 6);
            assert!(!view.is_empty());
            view.set(0, 0, 7);
            view.row_mut(1).copy_from_slice(&[1, 2, 3]);
        }
        assert_eq!(labels.get(2, 1), 7);
        assert_eq!(labels.get(2, 2), 1);
        assert_eq!(labels.get(4, 2), 3);
        assert_eq!(labels.get(0, 0), 0, "pixels outside the view are untouched");
    }

    #[test]
    fn copy_from_tile_stitches_a_dense_buffer() {
        let mut labels = ImageBuffer::new(5, 4, 9u32);
        labels
            .view_mut(TileRect::new(1, 1, 3, 2))
            .unwrap()
            .copy_from_tile(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(labels.get(1, 1), 1);
        assert_eq!(labels.get(3, 2), 6);
        assert_eq!(labels.get(0, 0), 9);
        {
            let mut view = labels.view_mut(TileRect::new(0, 0, 2, 2)).unwrap();
            view.fill(8);
        }
        assert_eq!(labels.get(0, 0), 8);
        assert_eq!(labels.get(1, 1), 8);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn copy_from_tile_rejects_wrong_sizes() {
        let mut labels = ImageBuffer::new(4, 4, 0u32);
        labels
            .view_mut(TileRect::new(0, 0, 2, 2))
            .unwrap()
            .copy_from_tile(&[1, 2, 3]);
    }

    #[test]
    fn contiguous_label_views_validate_their_length() {
        let mut buf = vec![0u32; 6];
        {
            let mut view = LabelViewMut::contiguous(&mut buf, 3, 2).unwrap();
            view.set(2, 1, 5);
        }
        assert_eq!(buf[5], 5);
        assert!(matches!(
            LabelViewMut::contiguous(&mut buf, 4, 2).unwrap_err(),
            ImagingError::DimensionMismatch { .. }
        ));
        let mut empty: Vec<u32> = Vec::new();
        let view = LabelViewMut::contiguous(&mut empty, 0, 3).unwrap();
        assert!(view.is_empty());
    }

    #[test]
    fn label_view_rejects_out_of_bounds_rects() {
        let mut labels = ImageBuffer::new(4, 3, 0u32);
        assert!(labels.view_mut(TileRect::new(3, 0, 2, 1)).is_err());
        assert!(labels.view_mut(TileRect::new(0, 2, 1, 2)).is_err());
        assert!(labels.view_mut(TileRect::new(4, 3, 0, 0)).is_ok());
    }

    #[test]
    fn tile_rect_accessors() {
        let rect = TileRect::new(1, 2, 3, 4);
        assert_eq!(rect.area(), 12);
        assert!(!rect.is_empty());
        assert!(rect.fits_in(4, 6));
        assert!(!rect.fits_in(4, 5));
        assert_eq!(TileRect::full(7, 5), TileRect::new(0, 0, 7, 5));
        assert!(TileRect::new(0, 0, 0, 9).is_empty());
    }
}
