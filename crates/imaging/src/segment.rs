//! The common interface every segmentation algorithm in the workspace
//! implements (the IQFT-inspired methods and the K-means / Otsu baselines),
//! plus the per-pixel contract ([`PixelClassifier`]) the parallel
//! `SegmentEngine` (crate `seg-engine`) exploits to execute any such
//! algorithm with a runtime-selectable backend.

use crate::pixel::{Luma, Rgb};
use crate::view::{ImageView, LabelViewMut};
use crate::{GrayImage, LabelMap, RgbImage};

/// An unsupervised image segmenter.
///
/// Implementations return a dense [`LabelMap`]: one `u32` segment id per
/// pixel.  There is no requirement that ids are contiguous or start at 0 —
/// downstream consumers use [`crate::labels::relabel_by_frequency`] /
/// [`crate::labels::binarize`] when a canonical form is needed.
pub trait Segmenter {
    /// A short human-readable name used in experiment tables (e.g. "K-means").
    fn name(&self) -> &str;

    /// Segments an RGB image.
    fn segment_rgb(&self, img: &RgbImage) -> LabelMap;

    /// Segments a grayscale image.  The default converts the image to RGB by
    /// channel replication and calls [`Segmenter::segment_rgb`]; grayscale-
    /// native algorithms override this.
    fn segment_gray(&self, img: &GrayImage) -> LabelMap {
        self.segment_rgb(&crate::color::gray_to_rgb(img))
    }
}

/// A segmentation rule whose label for a pixel depends only on that pixel.
///
/// This is the contract the parallel `SegmentEngine` exploits: because each
/// label is a pure function of one pixel, the label buffer can be filled in
/// disjoint chunks on any number of threads and the result is byte-identical
/// to a serial pass.  All of the paper's methods have this shape (the IQFT
/// segmenters classify pixels independently; Otsu and K-means do after their
/// global fitting step).
///
/// Closures `Fn(Rgb<u8>) -> u32` implement the trait directly, so fitted
/// models can hand the engine a lightweight classification rule without
/// defining a type.
pub trait PixelClassifier {
    /// Label for one RGB pixel.
    fn classify_rgb_pixel(&self, pixel: Rgb<u8>) -> u32;

    /// Label for one grayscale pixel.  The default replicates the intensity
    /// into all channels, mirroring [`Segmenter::segment_gray`]; grayscale-
    /// native rules override this.
    fn classify_gray_pixel(&self, pixel: Luma<u8>) -> u32 {
        let v = pixel.value();
        self.classify_rgb_pixel(Rgb::new(v, v, v))
    }

    /// Classifies a contiguous run of RGB pixels into a matching label
    /// slice — the batch-level hook every bulk execution path routes
    /// through.
    ///
    /// The `SegmentEngine`'s chunk-parallel whole-image pass hands each
    /// worker's chunk here, and the view/tile row loop
    /// ([`PixelClassifier::classify_rgb_view_into`]) hands each contiguous
    /// row here, so a classifier that can batch work — e.g. a SIMD kernel
    /// over a row — overrides this one method and accelerates every
    /// execution path (whole-image, tiled, pipelined, served) at once.
    ///
    /// The default is a per-pixel loop, byte-identical to calling
    /// [`PixelClassifier::classify_rgb_pixel`] on each element; overrides
    /// must preserve that equivalence so backends, tilings and batch sizes
    /// stay interchangeable.
    ///
    /// # Panics
    ///
    /// Panics if `pixels` and `out` differ in length.
    fn classify_rgb_slice_into(&self, pixels: &[Rgb<u8>], out: &mut [u32]) {
        assert_eq!(
            pixels.len(),
            out.len(),
            "label slice does not match the pixel slice"
        );
        for (label, &pixel) in out.iter_mut().zip(pixels) {
            *label = self.classify_rgb_pixel(pixel);
        }
    }

    /// Grayscale counterpart of [`PixelClassifier::classify_rgb_slice_into`].
    ///
    /// # Panics
    ///
    /// Panics if `pixels` and `out` differ in length.
    fn classify_gray_slice_into(&self, pixels: &[Luma<u8>], out: &mut [u32]) {
        assert_eq!(
            pixels.len(),
            out.len(),
            "label slice does not match the pixel slice"
        );
        for (label, &pixel) in out.iter_mut().zip(pixels) {
            *label = self.classify_gray_pixel(pixel);
        }
    }

    /// Classifies every pixel of an RGB view into a matching label view,
    /// row by row — the zero-copy tile work unit behind `segment_tiled`.
    ///
    /// Each contiguous row goes through
    /// [`PixelClassifier::classify_rgb_slice_into`], so a classifier with a
    /// batched row kernel accelerates tiles for free.  Because each label is
    /// a pure function of its own pixel, classifying a tile this way writes
    /// exactly the labels a whole-image pass would, so any tile
    /// decomposition reassembles byte-identically.
    ///
    /// # Panics
    ///
    /// Panics if `view` and `out` differ in dimensions.
    fn classify_rgb_view_into(&self, view: &ImageView<'_, Rgb<u8>>, out: &mut LabelViewMut<'_>) {
        assert_eq!(
            view.dimensions(),
            out.dimensions(),
            "label view does not match the pixel view"
        );
        for y in 0..view.height() {
            self.classify_rgb_slice_into(view.row(y), out.row_mut(y));
        }
    }

    /// Grayscale counterpart of [`PixelClassifier::classify_rgb_view_into`].
    ///
    /// # Panics
    ///
    /// Panics if `view` and `out` differ in dimensions.
    fn classify_gray_view_into(&self, view: &ImageView<'_, Luma<u8>>, out: &mut LabelViewMut<'_>) {
        assert_eq!(
            view.dimensions(),
            out.dimensions(),
            "label view does not match the pixel view"
        );
        for y in 0..view.height() {
            self.classify_gray_slice_into(view.row(y), out.row_mut(y));
        }
    }
}

impl<F: Fn(Rgb<u8>) -> u32> PixelClassifier for F {
    fn classify_rgb_pixel(&self, pixel: Rgb<u8>) -> u32 {
        self(pixel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::{Luma, Rgb};

    /// A trivial segmenter used to exercise the trait's default method.
    struct BrightnessHalver;

    impl Segmenter for BrightnessHalver {
        fn name(&self) -> &str {
            "halver"
        }

        fn segment_rgb(&self, img: &RgbImage) -> LabelMap {
            img.map(|p| u32::from(crate::color::luma_of(p) >= 0.5))
        }
    }

    #[test]
    fn default_gray_path_replicates_channels() {
        let gray = GrayImage::from_fn(2, 1, |x, _| Luma(if x == 0 { 10 } else { 250 }));
        let seg = BrightnessHalver;
        assert_eq!(seg.name(), "halver");
        let labels = seg.segment_gray(&gray);
        assert_eq!(labels.get(0, 0), 0);
        assert_eq!(labels.get(1, 0), 1);
        // And the RGB path agrees with a manual conversion.
        let rgb = crate::color::gray_to_rgb(&gray);
        assert_eq!(seg.segment_rgb(&rgb), labels);
        let bright = RgbImage::new(1, 1, Rgb::WHITE);
        assert_eq!(seg.segment_rgb(&bright).get(0, 0), 1);
    }

    #[test]
    fn view_classification_matches_per_pixel_classification() {
        use crate::view::TileRect;

        let img = RgbImage::from_fn(9, 6, |x, y| Rgb::new((x * 28) as u8, (y * 40) as u8, 90));
        let rule = |p: Rgb<u8>| u32::from(p.r() as u16 + p.g() as u16 > 255);
        let rect = TileRect::new(2, 1, 5, 4);
        let view = img.view(rect).unwrap();
        let mut labels = LabelMap::new(9, 6, u32::MAX);
        rule.classify_rgb_view_into(&view, &mut labels.view_mut(rect).unwrap());
        for y in 0..img.height() {
            for x in 0..img.width() {
                let inside = x >= rect.x
                    && x < rect.x + rect.width
                    && y >= rect.y
                    && y < rect.y + rect.height;
                let expected = if inside {
                    rule.classify_rgb_pixel(img.get(x, y))
                } else {
                    u32::MAX
                };
                assert_eq!(labels.get(x, y), expected, "({x}, {y})");
            }
        }
    }

    #[test]
    fn gray_view_classification_uses_the_gray_rule() {
        use crate::view::LabelViewMut;

        struct Parity;
        impl PixelClassifier for Parity {
            fn classify_rgb_pixel(&self, p: Rgb<u8>) -> u32 {
                u32::from(p.r()) % 2
            }
            fn classify_gray_pixel(&self, p: Luma<u8>) -> u32 {
                u32::from(p.value()) % 2
            }
        }
        let img = GrayImage::from_fn(5, 3, |x, y| Luma((x * 3 + y) as u8));
        let mut buf = vec![0u32; img.len()];
        let mut out = LabelViewMut::contiguous(&mut buf, 5, 3).unwrap();
        Parity.classify_gray_view_into(&img.as_view(), &mut out);
        for (x, y, p) in img.enumerate_pixels() {
            assert_eq!(buf[y * 5 + x], u32::from(p.value()) % 2);
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn view_classification_rejects_mismatched_shapes() {
        let img = RgbImage::new(4, 4, Rgb::BLACK);
        let rule = |_: Rgb<u8>| 0u32;
        let mut buf = vec![0u32; 6];
        let mut out = crate::view::LabelViewMut::contiguous(&mut buf, 3, 2).unwrap();
        rule.classify_rgb_view_into(&img.as_view(), &mut out);
    }
}
