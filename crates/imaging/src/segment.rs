//! The common interface every segmentation algorithm in the workspace
//! implements (the IQFT-inspired methods and the K-means / Otsu baselines),
//! plus the per-pixel contract ([`PixelClassifier`]) the parallel
//! `SegmentEngine` (crate `seg-engine`) exploits to execute any such
//! algorithm with a runtime-selectable backend.

use crate::pixel::{Luma, Rgb};
use crate::{GrayImage, LabelMap, RgbImage};

/// An unsupervised image segmenter.
///
/// Implementations return a dense [`LabelMap`]: one `u32` segment id per
/// pixel.  There is no requirement that ids are contiguous or start at 0 —
/// downstream consumers use [`crate::labels::relabel_by_frequency`] /
/// [`crate::labels::binarize`] when a canonical form is needed.
pub trait Segmenter {
    /// A short human-readable name used in experiment tables (e.g. "K-means").
    fn name(&self) -> &str;

    /// Segments an RGB image.
    fn segment_rgb(&self, img: &RgbImage) -> LabelMap;

    /// Segments a grayscale image.  The default converts the image to RGB by
    /// channel replication and calls [`Segmenter::segment_rgb`]; grayscale-
    /// native algorithms override this.
    fn segment_gray(&self, img: &GrayImage) -> LabelMap {
        self.segment_rgb(&crate::color::gray_to_rgb(img))
    }
}

/// A segmentation rule whose label for a pixel depends only on that pixel.
///
/// This is the contract the parallel `SegmentEngine` exploits: because each
/// label is a pure function of one pixel, the label buffer can be filled in
/// disjoint chunks on any number of threads and the result is byte-identical
/// to a serial pass.  All of the paper's methods have this shape (the IQFT
/// segmenters classify pixels independently; Otsu and K-means do after their
/// global fitting step).
///
/// Closures `Fn(Rgb<u8>) -> u32` implement the trait directly, so fitted
/// models can hand the engine a lightweight classification rule without
/// defining a type.
pub trait PixelClassifier {
    /// Label for one RGB pixel.
    fn classify_rgb_pixel(&self, pixel: Rgb<u8>) -> u32;

    /// Label for one grayscale pixel.  The default replicates the intensity
    /// into all channels, mirroring [`Segmenter::segment_gray`]; grayscale-
    /// native rules override this.
    fn classify_gray_pixel(&self, pixel: Luma<u8>) -> u32 {
        let v = pixel.value();
        self.classify_rgb_pixel(Rgb::new(v, v, v))
    }
}

impl<F: Fn(Rgb<u8>) -> u32> PixelClassifier for F {
    fn classify_rgb_pixel(&self, pixel: Rgb<u8>) -> u32 {
        self(pixel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::{Luma, Rgb};

    /// A trivial segmenter used to exercise the trait's default method.
    struct BrightnessHalver;

    impl Segmenter for BrightnessHalver {
        fn name(&self) -> &str {
            "halver"
        }

        fn segment_rgb(&self, img: &RgbImage) -> LabelMap {
            img.map(|p| u32::from(crate::color::luma_of(p) >= 0.5))
        }
    }

    #[test]
    fn default_gray_path_replicates_channels() {
        let gray = GrayImage::from_fn(2, 1, |x, _| Luma(if x == 0 { 10 } else { 250 }));
        let seg = BrightnessHalver;
        assert_eq!(seg.name(), "halver");
        let labels = seg.segment_gray(&gray);
        assert_eq!(labels.get(0, 0), 0);
        assert_eq!(labels.get(1, 0), 1);
        // And the RGB path agrees with a manual conversion.
        let rgb = crate::color::gray_to_rgb(&gray);
        assert_eq!(seg.segment_rgb(&rgb), labels);
        let bright = RgbImage::new(1, 1, Rgb::WHITE);
        assert_eq!(seg.segment_rgb(&bright).get(0, 0), 1);
    }
}
