//! Dense, row-major image container.

use crate::error::{ImagingError, Result};

/// A dense, row-major 2-D buffer of elements of type `P`.
///
/// `P` is typically one of the pixel types in [`crate::pixel`] or a plain
/// integer for label maps.  The buffer stores its pixels in a single `Vec` so
/// rows are contiguous and the whole image can be traversed (or split into
/// chunks for parallel processing) without pointer chasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageBuffer<P> {
    width: usize,
    height: usize,
    data: Vec<P>,
}

impl<P: Copy> ImageBuffer<P> {
    /// `width * height` with overflow detection: pathological dimensions
    /// yield [`ImagingError::TooLarge`] instead of wrapping around.
    pub fn checked_area(width: usize, height: usize) -> Result<usize> {
        width
            .checked_mul(height)
            .ok_or(ImagingError::TooLarge { width, height })
    }

    /// Creates an image filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` overflows `usize`; use
    /// [`ImageBuffer::try_new`] to handle untrusted dimensions gracefully.
    pub fn new(width: usize, height: usize, fill: P) -> Self {
        Self::try_new(width, height, fill).expect("image dimensions overflow the pixel count")
    }

    /// Fallible variant of [`ImageBuffer::new`]: fails with
    /// [`ImagingError::TooLarge`] when `width * height` overflows `usize`.
    pub fn try_new(width: usize, height: usize, fill: P) -> Result<Self> {
        let area = Self::checked_area(width, height)?;
        Ok(Self {
            width,
            height,
            data: vec![fill; area],
        })
    }

    /// Creates an image by evaluating `f(x, y)` for every pixel.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` overflows `usize`; use
    /// [`ImageBuffer::try_from_fn`] to handle untrusted dimensions gracefully.
    pub fn from_fn<F: FnMut(usize, usize) -> P>(width: usize, height: usize, f: F) -> Self {
        Self::try_from_fn(width, height, f).expect("image dimensions overflow the pixel count")
    }

    /// Fallible variant of [`ImageBuffer::from_fn`]: fails with
    /// [`ImagingError::TooLarge`] when `width * height` overflows `usize`.
    pub fn try_from_fn<F: FnMut(usize, usize) -> P>(
        width: usize,
        height: usize,
        mut f: F,
    ) -> Result<Self> {
        let area = Self::checked_area(width, height)?;
        let mut data = Vec::with_capacity(area);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Wraps an existing row-major buffer.
    ///
    /// Fails with [`ImagingError::TooLarge`] if `width * height` overflows
    /// `usize`, or [`ImagingError::DimensionMismatch`] if `data.len()` does
    /// not equal `width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<P>) -> Result<Self> {
        let area = Self::checked_area(width, height)?;
        if data.len() != area {
            return Err(ImagingError::DimensionMismatch {
                expected: area,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Total number of pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the image has zero pixels.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True if `(x, y)` lies inside the image.
    pub fn in_bounds(&self, x: usize, y: usize) -> bool {
        x < self.width && y < self.height
    }

    /// Returns the pixel at `(x, y)`, panicking if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> P {
        assert!(
            self.in_bounds(x, y),
            "pixel ({x}, {y}) out of bounds for {}x{} image",
            self.width,
            self.height
        );
        self.data[y * self.width + x]
    }

    /// Returns the pixel at `(x, y)` or an error if out of bounds.
    pub fn try_get(&self, x: usize, y: usize) -> Result<P> {
        if self.in_bounds(x, y) {
            Ok(self.data[y * self.width + x])
        } else {
            Err(ImagingError::OutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            })
        }
    }

    /// Sets the pixel at `(x, y)`, panicking if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: P) {
        assert!(
            self.in_bounds(x, y),
            "pixel ({x}, {y}) out of bounds for {}x{} image",
            self.width,
            self.height
        );
        self.data[y * self.width + x] = value;
    }

    /// Sets the pixel at `(x, y)` if it is inside the image; silently ignores
    /// out-of-bounds coordinates (useful when rasterising shapes that may
    /// overhang the canvas).
    pub fn set_clipped(&mut self, x: usize, y: usize, value: P) {
        if self.in_bounds(x, y) {
            self.data[y * self.width + x] = value;
        }
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[P] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [P] {
        &mut self.data
    }

    /// Consumes the image and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<P> {
        self.data
    }

    /// Iterator over pixels in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = &P> {
        self.data.iter()
    }

    /// Mutable iterator over pixels in row-major order.
    pub fn pixels_mut(&mut self) -> impl Iterator<Item = &mut P> {
        self.data.iter_mut()
    }

    /// Iterator yielding `(x, y, pixel)` in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (usize, usize, P)> + '_ {
        let width = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &p)| (i % width, i / width, p))
    }

    /// Iterator over rows as slices.
    pub fn rows(&self) -> impl Iterator<Item = &[P]> {
        self.data.chunks_exact(self.width.max(1))
    }

    /// Returns row `y` as a slice.
    pub fn row(&self, y: usize) -> &[P] {
        assert!(y < self.height, "row {y} out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Applies `f` to every pixel, producing a new image of the same size.
    pub fn map<Q: Copy, F: FnMut(P) -> Q>(&self, mut f: F) -> ImageBuffer<Q> {
        ImageBuffer {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&p| f(p)).collect(),
        }
    }

    /// Applies `f(x, y, pixel)` to every pixel, producing a new image.
    pub fn map_indexed<Q: Copy, F: FnMut(usize, usize, P) -> Q>(&self, mut f: F) -> ImageBuffer<Q> {
        let width = self.width;
        ImageBuffer {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .enumerate()
                .map(|(i, &p)| f(i % width, i / width, p))
                .collect(),
        }
    }

    /// Fills every pixel with `value`.
    pub fn fill(&mut self, value: P) {
        self.data.iter_mut().for_each(|p| *p = value);
    }

    /// Checks that `self` and `other` share dimensions.
    pub fn check_same_shape<Q: Copy>(&self, other: &ImageBuffer<Q>) -> Result<()> {
        if self.dimensions() == other.dimensions() {
            Ok(())
        } else {
            Err(ImagingError::ShapeMismatch {
                left: self.dimensions(),
                right: other.dimensions(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Rgb;

    #[test]
    fn new_fills_with_value() {
        let img = ImageBuffer::new(4, 3, 7u8);
        assert_eq!(img.dimensions(), (4, 3));
        assert_eq!(img.len(), 12);
        assert!(img.pixels().all(|&p| p == 7));
        assert!(!img.is_empty());
    }

    #[test]
    fn from_fn_addresses_pixels_row_major() {
        let img = ImageBuffer::from_fn(3, 2, |x, y| (10 * y + x) as u8);
        assert_eq!(img.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(img.get(2, 1), 12);
        assert_eq!(img.row(1), &[10, 11, 12]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(ImageBuffer::from_vec(2, 2, vec![1u8, 2, 3, 4]).is_ok());
        let err = ImageBuffer::from_vec(2, 2, vec![1u8, 2, 3]).unwrap_err();
        assert!(matches!(err, ImagingError::DimensionMismatch { .. }));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = ImageBuffer::new(5, 5, Rgb::new(0u8, 0, 0));
        img.set(3, 4, Rgb::new(1, 2, 3));
        assert_eq!(img.get(3, 4), Rgb::new(1, 2, 3));
        assert_eq!(img.try_get(3, 4).unwrap(), Rgb::new(1, 2, 3));
        assert!(img.try_get(5, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = ImageBuffer::new(2, 2, 0u8);
        let _ = img.get(2, 0);
    }

    #[test]
    fn set_clipped_ignores_out_of_bounds() {
        let mut img = ImageBuffer::new(2, 2, 0u8);
        img.set_clipped(10, 10, 5);
        img.set_clipped(1, 1, 5);
        assert_eq!(img.get(1, 1), 5);
    }

    #[test]
    fn enumerate_pixels_yields_coordinates() {
        let img = ImageBuffer::from_fn(2, 2, |x, y| (x + 2 * y) as u8);
        let collected: Vec<(usize, usize, u8)> = img.enumerate_pixels().collect();
        assert_eq!(collected, vec![(0, 0, 0), (1, 0, 1), (0, 1, 2), (1, 1, 3)]);
    }

    #[test]
    fn map_preserves_shape() {
        let img = ImageBuffer::from_fn(3, 3, |x, y| (x * y) as u8);
        let doubled = img.map(|p| p as u16 * 2);
        assert_eq!(doubled.dimensions(), (3, 3));
        assert_eq!(doubled.get(2, 2), 8);
        let indexed = img.map_indexed(|x, y, p| (x + y + p as usize) as u32);
        assert_eq!(indexed.get(2, 2), 8);
    }

    #[test]
    fn fill_overwrites_all_pixels() {
        let mut img = ImageBuffer::new(3, 2, 1u8);
        img.fill(9);
        assert!(img.pixels().all(|&p| p == 9));
    }

    #[test]
    fn shape_check() {
        let a = ImageBuffer::new(3, 2, 0u8);
        let b = ImageBuffer::new(3, 2, Rgb::new(0u8, 0, 0));
        let c = ImageBuffer::new(2, 3, 0u8);
        assert!(a.check_same_shape(&b).is_ok());
        assert!(matches!(
            a.check_same_shape(&c).unwrap_err(),
            ImagingError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn rows_iterator_counts_rows() {
        let img = ImageBuffer::from_fn(4, 3, |x, _| x as u8);
        assert_eq!(img.rows().count(), 3);
        for row in img.rows() {
            assert_eq!(row, &[0, 1, 2, 3]);
        }
    }

    #[test]
    fn into_vec_returns_data() {
        let img = ImageBuffer::from_fn(2, 2, |x, y| (x + y) as u8);
        assert_eq!(img.into_vec(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn pathological_dimensions_error_instead_of_wrapping() {
        // usize::MAX * 2 wraps to usize::MAX - 1 with unchecked arithmetic;
        // every constructor must reject it up front.
        assert!(matches!(
            ImageBuffer::try_new(usize::MAX, 2, 0u8).unwrap_err(),
            ImagingError::TooLarge { .. }
        ));
        assert!(matches!(
            ImageBuffer::try_from_fn(2, usize::MAX, |_, _| 0u8).unwrap_err(),
            ImagingError::TooLarge { .. }
        ));
        assert!(matches!(
            ImageBuffer::from_vec(usize::MAX, usize::MAX, vec![0u8]).unwrap_err(),
            ImagingError::TooLarge { .. }
        ));
        assert!(ImageBuffer::<u8>::checked_area(usize::MAX, 1).is_ok());
        assert!(ImageBuffer::<u8>::checked_area(usize::MAX, 0).is_ok());
    }

    #[test]
    fn fallible_constructors_match_their_panicking_twins() {
        let a = ImageBuffer::try_new(3, 2, 9u8).unwrap();
        assert_eq!(a, ImageBuffer::new(3, 2, 9u8));
        let b = ImageBuffer::try_from_fn(3, 2, |x, y| (x + y) as u8).unwrap();
        assert_eq!(b, ImageBuffer::from_fn(3, 2, |x, y| (x + y) as u8));
    }

    #[test]
    fn empty_image_is_empty() {
        let img = ImageBuffer::new(0, 0, 0u8);
        assert!(img.is_empty());
        assert_eq!(img.rows().count(), 0);
    }
}
