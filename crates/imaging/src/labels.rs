//! Label-map utilities.
//!
//! Segmentation algorithms in this workspace all emit a [`crate::LabelMap`]
//! (one `u32` per pixel).  This module provides the operations the evaluation
//! pipeline needs on top of that representation: census/statistics,
//! binarisation into foreground/background, relabelling, connected components
//! and palette rendering for figure output.

use crate::image::ImageBuffer;
use crate::pixel::Rgb;
use crate::{LabelMap, RgbImage, VOID_LABEL};
use std::collections::HashMap;

/// Per-label pixel counts, sorted by label value.
pub fn label_census(labels: &LabelMap) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &l in labels.pixels() {
        *counts.entry(l).or_insert(0) += 1;
    }
    let mut out: Vec<(u32, usize)> = counts.into_iter().collect();
    out.sort_unstable_by_key(|&(l, _)| l);
    out
}

/// Number of distinct labels present (void pixels excluded).
pub fn distinct_labels(labels: &LabelMap) -> usize {
    label_census(labels)
        .into_iter()
        .filter(|&(l, _)| l != VOID_LABEL)
        .count()
}

/// The most frequent label (void pixels excluded); `None` for an empty map.
pub fn dominant_label(labels: &LabelMap) -> Option<u32> {
    label_census(labels)
        .into_iter()
        .filter(|&(l, _)| l != VOID_LABEL)
        .max_by_key(|&(label, count)| (count, std::cmp::Reverse(label)))
        .map(|(l, _)| l)
}

/// Renumbers labels to `0..n` in decreasing order of frequency (the dominant
/// label becomes 0).  Void pixels are preserved.
pub fn relabel_by_frequency(labels: &LabelMap) -> LabelMap {
    let mut census: Vec<(u32, usize)> = label_census(labels)
        .into_iter()
        .filter(|&(l, _)| l != VOID_LABEL)
        .collect();
    census.sort_unstable_by_key(|&(label, count)| (std::cmp::Reverse(count), label));
    let mapping: HashMap<u32, u32> = census
        .into_iter()
        .enumerate()
        .map(|(new, (old, _))| (old, new as u32))
        .collect();
    labels.map(|l| {
        if l == VOID_LABEL {
            VOID_LABEL
        } else {
            mapping[&l]
        }
    })
}

/// Produces a binary foreground mask: pixels whose label is in `foreground`
/// become 1, all others 0 (void pixels stay void).
pub fn binarize(labels: &LabelMap, foreground: &[u32]) -> LabelMap {
    labels.map(|l| {
        if l == VOID_LABEL {
            VOID_LABEL
        } else if foreground.contains(&l) {
            1
        } else {
            0
        }
    })
}

/// Inverts a binary mask (0↔1), leaving void pixels untouched.
pub fn invert_binary(labels: &LabelMap) -> LabelMap {
    labels.map(|l| match l {
        0 => 1,
        1 => 0,
        other => other,
    })
}

/// Fraction of non-void pixels carrying label `label`.
pub fn label_fraction(labels: &LabelMap, label: u32) -> f64 {
    let mut hits = 0usize;
    let mut valid = 0usize;
    for &l in labels.pixels() {
        if l == VOID_LABEL {
            continue;
        }
        valid += 1;
        if l == label {
            hits += 1;
        }
    }
    if valid == 0 {
        0.0
    } else {
        hits as f64 / valid as f64
    }
}

/// 4-connected components of equal labels; returns a map of component ids
/// (starting at 0) and the number of components.  Void pixels form their own
/// components.
pub fn connected_components(labels: &LabelMap) -> (LabelMap, usize) {
    let (w, h) = labels.dimensions();
    let mut comp = ImageBuffer::new(w, h, u32::MAX);
    let mut next = 0u32;
    let mut stack = Vec::new();
    for sy in 0..h {
        for sx in 0..w {
            if comp.get(sx, sy) != u32::MAX {
                continue;
            }
            let target = labels.get(sx, sy);
            comp.set(sx, sy, next);
            stack.push((sx, sy));
            while let Some((x, y)) = stack.pop() {
                let neighbours = [
                    (x.wrapping_sub(1), y),
                    (x + 1, y),
                    (x, y.wrapping_sub(1)),
                    (x, y + 1),
                ];
                for (nx, ny) in neighbours {
                    if nx < w
                        && ny < h
                        && comp.get(nx, ny) == u32::MAX
                        && labels.get(nx, ny) == target
                    {
                        comp.set(nx, ny, next);
                        stack.push((nx, ny));
                    }
                }
            }
            next += 1;
        }
    }
    (comp, next as usize)
}

/// A qualitative colour palette used to render label maps for figures.
pub const PALETTE: [Rgb<u8>; 10] = [
    Rgb([31, 119, 180]),
    Rgb([255, 127, 14]),
    Rgb([44, 160, 44]),
    Rgb([214, 39, 40]),
    Rgb([148, 103, 189]),
    Rgb([140, 86, 75]),
    Rgb([227, 119, 194]),
    Rgb([127, 127, 127]),
    Rgb([188, 189, 34]),
    Rgb([23, 190, 207]),
];

/// Renders a label map as an RGB image using [`PALETTE`] (void pixels are
/// rendered black).
pub fn render_labels(labels: &LabelMap) -> RgbImage {
    labels.map(|l| {
        if l == VOID_LABEL {
            Rgb::BLACK
        } else {
            PALETTE[(l as usize) % PALETTE.len()]
        }
    })
}

/// Renders a binary mask as a black/white image (void pixels mid-gray).
pub fn render_binary(labels: &LabelMap) -> RgbImage {
    labels.map(|l| match l {
        0 => Rgb::BLACK,
        VOID_LABEL => Rgb::new(128, 128, 128),
        _ => Rgb::WHITE,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quarters() -> LabelMap {
        // 4x4 image, left half label 3, right half label 8, one void pixel.
        let mut m = LabelMap::from_fn(4, 4, |x, _| if x < 2 { 3 } else { 8 });
        m.set(0, 0, VOID_LABEL);
        m
    }

    #[test]
    fn census_counts_and_sorts() {
        let census = label_census(&quarters());
        assert_eq!(census, vec![(3, 7), (8, 8), (VOID_LABEL, 1)]);
        assert_eq!(distinct_labels(&quarters()), 2);
    }

    #[test]
    fn dominant_label_ignores_void() {
        assert_eq!(dominant_label(&quarters()), Some(8));
        let empty = LabelMap::new(0, 0, 0);
        assert_eq!(dominant_label(&empty), None);
        // Tie: smaller label wins deterministically.
        let tie = LabelMap::from_fn(2, 1, |x, _| if x == 0 { 5 } else { 9 });
        assert_eq!(dominant_label(&tie), Some(5));
    }

    #[test]
    fn relabel_by_frequency_orders_labels() {
        let relabeled = relabel_by_frequency(&quarters());
        // label 8 (8 pixels) -> 0, label 3 (7 pixels) -> 1
        assert_eq!(relabeled.get(3, 0), 0);
        assert_eq!(relabeled.get(1, 1), 1);
        assert_eq!(relabeled.get(0, 0), VOID_LABEL);
        assert_eq!(distinct_labels(&relabeled), 2);
    }

    #[test]
    fn binarize_and_invert() {
        let bin = binarize(&quarters(), &[8]);
        assert_eq!(bin.get(3, 3), 1);
        assert_eq!(bin.get(1, 3), 0);
        assert_eq!(bin.get(0, 0), VOID_LABEL);
        let inv = invert_binary(&bin);
        assert_eq!(inv.get(3, 3), 0);
        assert_eq!(inv.get(1, 3), 1);
        assert_eq!(inv.get(0, 0), VOID_LABEL);
    }

    #[test]
    fn label_fraction_excludes_void() {
        let f = label_fraction(&quarters(), 8);
        assert!((f - 8.0 / 15.0).abs() < 1e-12);
        assert_eq!(label_fraction(&LabelMap::new(2, 2, VOID_LABEL), 1), 0.0);
    }

    #[test]
    fn connected_components_counts_regions() {
        // Two horizontal stripes of the same label separated by another label
        // are distinct components.
        let m = LabelMap::from_fn(5, 3, |_, y| if y == 1 { 1 } else { 0 });
        let (comp, n) = connected_components(&m);
        assert_eq!(n, 3);
        assert_ne!(comp.get(0, 0), comp.get(0, 2));
        assert_eq!(comp.get(0, 0), comp.get(4, 0));
    }

    #[test]
    fn connected_components_single_region() {
        let m = LabelMap::new(6, 6, 4);
        let (comp, n) = connected_components(&m);
        assert_eq!(n, 1);
        assert!(comp.pixels().all(|&c| c == 0));
    }

    #[test]
    fn rendering_uses_palette_and_black_void() {
        let m = quarters();
        let img = render_labels(&m);
        assert_eq!(img.get(0, 0), Rgb::BLACK);
        assert_eq!(img.get(1, 0), PALETTE[3]);
        assert_eq!(img.get(3, 0), PALETTE[8]);
        let bin = binarize(&m, &[8]);
        let bw = render_binary(&bin);
        assert_eq!(bw.get(3, 0), Rgb::WHITE);
        assert_eq!(bw.get(1, 0), Rgb::BLACK);
        assert_eq!(bw.get(0, 0), Rgb::new(128, 128, 128));
    }
}
