//! Colour conversions.
//!
//! The paper converts RGB images to grayscale with the scikit-image weighted
//! sum (its eq. 17): `Y = 0.2125 R + 0.7154 G + 0.0721 B`.  The same weights
//! are used here so the grayscale variant of the algorithm sees the same
//! intensities the authors' pipeline produced.

use crate::image::ImageBuffer;
use crate::pixel::{Luma, Rgb};
use crate::{GrayImage, GrayImageF, RgbImage, RgbImageF};

/// Red luma weight from eq. 17 (scikit-image's ITU-R 709 coefficients).
pub const LUMA_R: f64 = 0.2125;
/// Green luma weight from eq. 17.
pub const LUMA_G: f64 = 0.7154;
/// Blue luma weight from eq. 17.
pub const LUMA_B: f64 = 0.0721;

/// Converts one 8-bit RGB pixel to a normalised luma intensity in `[0, 1]`
/// using the paper's eq. 17 weights.
#[inline]
pub fn luma_of(p: Rgb<u8>) -> f64 {
    (LUMA_R * p.r() as f64 + LUMA_G * p.g() as f64 + LUMA_B * p.b() as f64) / 255.0
}

/// Converts an RGB image to a normalised `[0, 1]` grayscale image (eq. 17).
pub fn rgb_to_gray_f(img: &RgbImage) -> GrayImageF {
    img.map(|p| Luma(luma_of(p)))
}

/// Converts one 8-bit RGB pixel to the 8-bit luma value
/// [`rgb_to_gray_u8`] produces for it (eq. 17, scaled to 0–255 and rounded).
///
/// Every per-pixel grayscale path in the workspace goes through this helper
/// so the whole-image conversion and the chunk-parallel classifiers cannot
/// drift apart.
#[inline]
pub fn luma_u8_of(p: Rgb<u8>) -> u8 {
    (luma_of(p) * 255.0).round().clamp(0.0, 255.0) as u8
}

/// Converts an RGB image to an 8-bit grayscale image (eq. 17, then scaled to
/// 0–255 and rounded).
pub fn rgb_to_gray_u8(img: &RgbImage) -> GrayImage {
    img.map(|p| Luma(luma_u8_of(p)))
}

/// Converts an 8-bit RGB image into the normalised `[0, 1]` floating-point
/// representation consumed by the segmentation algorithms (Algorithm 1 line 1).
pub fn normalize_rgb(img: &RgbImage) -> RgbImageF {
    img.map(Rgb::<u8>::to_f64)
}

/// Converts a normalised RGB image back to 8 bits (clamping).
pub fn denormalize_rgb(img: &RgbImageF) -> RgbImage {
    img.map(Rgb::<f64>::to_u8)
}

/// Converts an 8-bit grayscale image to normalised `[0, 1]` intensities.
pub fn normalize_gray(img: &GrayImage) -> GrayImageF {
    img.map(Luma::<u8>::to_f64)
}

/// Converts a normalised grayscale image back to 8 bits (clamping).
pub fn denormalize_gray(img: &GrayImageF) -> GrayImage {
    img.map(Luma::<f64>::to_u8)
}

/// Expands a grayscale image to RGB by replicating the intensity into every
/// channel (used when a grayscale algorithm output is rendered for a figure).
pub fn gray_to_rgb(img: &GrayImage) -> RgbImage {
    img.map(|p| Rgb::new(p.value(), p.value(), p.value()))
}

/// Skips normalisation and interprets raw 0–255 intensities directly as the
/// "un-normalised" input of the paper's Fig. 5 ablation.
///
/// The returned image holds the raw channel values as `f64` (0.0–255.0) so the
/// downstream phase computation `γ = I·θ` receives intensities 255× larger than
/// intended, reproducing the "noisy segments" failure mode the figure shows.
pub fn raw_rgb_as_f64(img: &RgbImage) -> ImageBuffer<Rgb<f64>> {
    img.map(|p| p.map(|c| c as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luma_weights_sum_to_one() {
        assert!((LUMA_R + LUMA_G + LUMA_B - 1.0).abs() < 1e-12);
    }

    #[test]
    fn luma_of_extremes() {
        assert_eq!(luma_of(Rgb::new(0, 0, 0)), 0.0);
        assert!((luma_of(Rgb::new(255, 255, 255)) - 1.0).abs() < 1e-12);
        // Pure green carries the largest weight.
        let g = luma_of(Rgb::new(0, 255, 0));
        let r = luma_of(Rgb::new(255, 0, 0));
        let b = luma_of(Rgb::new(0, 0, 255));
        assert!(g > r && r > b);
        assert!((g - LUMA_G).abs() < 1e-12);
    }

    #[test]
    fn rgb_to_gray_matches_manual_computation() {
        let img = RgbImage::from_fn(2, 1, |x, _| {
            if x == 0 {
                Rgb::new(100, 150, 200)
            } else {
                Rgb::new(10, 20, 30)
            }
        });
        let gray = rgb_to_gray_f(&img);
        let expected0 = (0.2125 * 100.0 + 0.7154 * 150.0 + 0.0721 * 200.0) / 255.0;
        assert!((gray.get(0, 0).value() - expected0).abs() < 1e-12);
        let gray8 = rgb_to_gray_u8(&img);
        assert_eq!(gray8.get(0, 0).value(), (expected0 * 255.0).round() as u8);
    }

    #[test]
    fn normalization_roundtrip() {
        let img = RgbImage::from_fn(3, 3, |x, y| Rgb::new((x * 40) as u8, (y * 40) as u8, 128));
        let norm = normalize_rgb(&img);
        assert!(norm.pixels().all(|p| (0.0..=1.0).contains(&p.r())));
        let back = denormalize_rgb(&norm);
        assert_eq!(back, img);
    }

    #[test]
    fn gray_normalization_roundtrip() {
        let img = GrayImage::from_fn(4, 1, |x, _| Luma((x * 80) as u8));
        let norm = normalize_gray(&img);
        let back = denormalize_gray(&norm);
        assert_eq!(back, img);
    }

    #[test]
    fn gray_to_rgb_replicates_channels() {
        let img = GrayImage::from_fn(2, 1, |x, _| Luma(if x == 0 { 10 } else { 200 }));
        let rgb = gray_to_rgb(&img);
        assert_eq!(rgb.get(0, 0), Rgb::new(10, 10, 10));
        assert_eq!(rgb.get(1, 0), Rgb::new(200, 200, 200));
    }

    #[test]
    fn raw_rgb_preserves_0_255_range() {
        let img = RgbImage::from_fn(1, 1, |_, _| Rgb::new(255, 128, 0));
        let raw = raw_rgb_as_f64(&img);
        assert_eq!(raw.get(0, 0), Rgb::new(255.0, 128.0, 0.0));
    }
}
