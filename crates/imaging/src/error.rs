//! Error type shared across the imaging substrate.

use std::fmt;

/// Errors produced by the imaging substrate.
#[derive(Debug)]
pub enum ImagingError {
    /// Width/height do not match the supplied buffer length.
    DimensionMismatch {
        /// Expected number of elements (`width * height`).
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// An operation was asked to work on an empty (zero-sized) image.
    EmptyImage,
    /// A pixel coordinate was outside the image bounds.
    OutOfBounds {
        /// Requested x coordinate.
        x: usize,
        /// Requested y coordinate.
        y: usize,
        /// Image width.
        width: usize,
        /// Image height.
        height: usize,
    },
    /// Two images that were expected to share dimensions do not.
    ShapeMismatch {
        /// Dimensions of the first image.
        left: (usize, usize),
        /// Dimensions of the second image.
        right: (usize, usize),
    },
    /// `width * height` does not fit in a `usize` (pathological dimensions).
    TooLarge {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// A requested sub-image rectangle does not lie inside its parent.
    InvalidView {
        /// Requested rectangle as `(x, y, width, height)`.
        rect: (usize, usize, usize, usize),
        /// Parent dimensions as `(width, height)`.
        parent: (usize, usize),
    },
    /// A file could not be parsed as the expected format.
    Decode(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

/// Convenience alias for imaging results.
pub type Result<T> = std::result::Result<T, ImagingError>;

impl fmt::Display for ImagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImagingError::DimensionMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match width*height = {expected}"
            ),
            ImagingError::EmptyImage => write!(f, "operation requires a non-empty image"),
            ImagingError::OutOfBounds {
                x,
                y,
                width,
                height,
            } => write!(
                f,
                "pixel ({x}, {y}) out of bounds for {width}x{height} image"
            ),
            ImagingError::ShapeMismatch { left, right } => write!(
                f,
                "image shapes differ: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            ImagingError::TooLarge { width, height } => write!(
                f,
                "image dimensions {width}x{height} overflow the pixel count"
            ),
            ImagingError::InvalidView { rect, parent } => write!(
                f,
                "view {}x{}+{}+{} does not fit inside {}x{} parent",
                rect.2, rect.3, rect.0, rect.1, parent.0, parent.1
            ),
            ImagingError::Decode(msg) => write!(f, "decode error: {msg}"),
            ImagingError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ImagingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImagingError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImagingError {
    fn from(e: std::io::Error) -> Self {
        ImagingError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ImagingError::DimensionMismatch {
            expected: 100,
            actual: 50,
        };
        assert!(e.to_string().contains("100"));
        let e = ImagingError::OutOfBounds {
            x: 5,
            y: 6,
            width: 4,
            height: 4,
        };
        assert!(e.to_string().contains("(5, 6)"));
        let e = ImagingError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("2x3"));
        let e = ImagingError::Decode("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        assert!(ImagingError::EmptyImage.to_string().contains("non-empty"));
        let e = ImagingError::TooLarge {
            width: usize::MAX,
            height: 2,
        };
        assert!(e.to_string().contains("overflow"));
        let e = ImagingError::InvalidView {
            rect: (1, 2, 3, 4),
            parent: (2, 2),
        };
        assert!(e.to_string().contains("3x4+1+2"));
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: ImagingError = io.into();
        assert!(e.to_string().contains("missing"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
