//! Shape rasterisation and procedural textures.
//!
//! These primitives are what the synthetic dataset generators use to build
//! PASCAL-VOC-like and xVIEW2-like scenes with pixel-exact ground truth: every
//! drawing routine has a matching "mask" form so the generator can paint the
//! image and the label map with the same geometry.

use crate::image::ImageBuffer;
use crate::pixel::Rgb;
use crate::RgbImage;

/// Axis-aligned rectangle given by its top-left corner and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x: usize,
    /// Top edge (inclusive).
    pub y: usize,
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
}

impl Rect {
    /// Creates a rectangle.
    pub fn new(x: usize, y: usize, w: usize, h: usize) -> Self {
        Self { x, y, w, h }
    }

    /// True if `(px, py)` lies inside the rectangle.
    pub fn contains(&self, px: usize, py: usize) -> bool {
        px >= self.x && px < self.x + self.w && py >= self.y && py < self.y + self.h
    }

    /// Area in pixels.
    pub fn area(&self) -> usize {
        self.w * self.h
    }
}

/// Fills an axis-aligned rectangle with `value` (clipped to the image).
pub fn fill_rect<P: Copy>(img: &mut ImageBuffer<P>, rect: Rect, value: P) {
    let x_end = (rect.x + rect.w).min(img.width());
    let y_end = (rect.y + rect.h).min(img.height());
    for y in rect.y.min(img.height())..y_end {
        for x in rect.x.min(img.width())..x_end {
            img.set(x, y, value);
        }
    }
}

/// Fills a filled circle of radius `r` centred at `(cx, cy)` (clipped).
pub fn fill_circle<P: Copy>(img: &mut ImageBuffer<P>, cx: i64, cy: i64, r: i64, value: P) {
    if r < 0 {
        return;
    }
    let r2 = r * r;
    for y in (cy - r).max(0)..=(cy + r).min(img.height() as i64 - 1) {
        for x in (cx - r).max(0)..=(cx + r).min(img.width() as i64 - 1) {
            let dx = x - cx;
            let dy = y - cy;
            if dx * dx + dy * dy <= r2 {
                img.set(x as usize, y as usize, value);
            }
        }
    }
}

/// Fills a filled axis-aligned ellipse with semi-axes `(rx, ry)` (clipped).
pub fn fill_ellipse<P: Copy>(
    img: &mut ImageBuffer<P>,
    cx: i64,
    cy: i64,
    rx: i64,
    ry: i64,
    value: P,
) {
    if rx <= 0 || ry <= 0 {
        return;
    }
    let rx2 = (rx * rx) as f64;
    let ry2 = (ry * ry) as f64;
    for y in (cy - ry).max(0)..=(cy + ry).min(img.height() as i64 - 1) {
        for x in (cx - rx).max(0)..=(cx + rx).min(img.width() as i64 - 1) {
            let dx = (x - cx) as f64;
            let dy = (y - cy) as f64;
            if dx * dx / rx2 + dy * dy / ry2 <= 1.0 {
                img.set(x as usize, y as usize, value);
            }
        }
    }
}

/// Draws a straight line of the given thickness between two points (clipped).
pub fn draw_line<P: Copy>(
    img: &mut ImageBuffer<P>,
    (x0, y0): (i64, i64),
    (x1, y1): (i64, i64),
    thickness: i64,
    value: P,
) {
    let dx = x1 - x0;
    let dy = y1 - y0;
    let steps = dx.abs().max(dy.abs()).max(1);
    let half = (thickness.max(1) - 1) / 2;
    for s in 0..=steps {
        let t = s as f64 / steps as f64;
        let x = x0 as f64 + t * dx as f64;
        let y = y0 as f64 + t * dy as f64;
        for oy in -half..=half + (thickness.max(1) + 1) % 2 {
            for ox in -half..=half + (thickness.max(1) + 1) % 2 {
                let px = x.round() as i64 + ox;
                let py = y.round() as i64 + oy;
                if px >= 0 && py >= 0 {
                    img.set_clipped(px as usize, py as usize, value);
                }
            }
        }
    }
}

/// Fills the whole image with a vertical linear gradient between two colours.
pub fn vertical_gradient(img: &mut RgbImage, top: Rgb<u8>, bottom: Rgb<u8>) {
    let h = img.height().max(1);
    for y in 0..img.height() {
        let t = y as f64 / (h - 1).max(1) as f64;
        let color = lerp_rgb(top, bottom, t);
        for x in 0..img.width() {
            img.set(x, y, color);
        }
    }
}

/// Fills the whole image with a horizontal linear gradient between two colours.
pub fn horizontal_gradient(img: &mut RgbImage, left: Rgb<u8>, right: Rgb<u8>) {
    let w = img.width().max(1);
    for x in 0..img.width() {
        let t = x as f64 / (w - 1).max(1) as f64;
        let color = lerp_rgb(left, right, t);
        for y in 0..img.height() {
            img.set(x, y, color);
        }
    }
}

/// Fills the image with a checkerboard of `cell`-sized squares.
pub fn checkerboard(img: &mut RgbImage, cell: usize, a: Rgb<u8>, b: Rgb<u8>) {
    let cell = cell.max(1);
    for y in 0..img.height() {
        for x in 0..img.width() {
            let color = if ((x / cell) + (y / cell)).is_multiple_of(2) {
                a
            } else {
                b
            };
            img.set(x, y, color);
        }
    }
}

/// Linear interpolation between two 8-bit colours, `t` clamped to `[0, 1]`.
pub fn lerp_rgb(a: Rgb<u8>, b: Rgb<u8>, t: f64) -> Rgb<u8> {
    let t = t.clamp(0.0, 1.0);
    let mix = |x: u8, y: u8| -> u8 { (x as f64 + (y as f64 - x as f64) * t).round() as u8 };
    Rgb::new(mix(a.r(), b.r()), mix(a.g(), b.g()), mix(a.b(), b.b()))
}

/// Lightens or darkens a colour by multiplying each channel by `factor`.
pub fn scale_brightness(c: Rgb<u8>, factor: f64) -> Rgb<u8> {
    c.map(|ch| (ch as f64 * factor).round().clamp(0.0, 255.0) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelMap;

    #[test]
    fn rect_contains_and_area() {
        let r = Rect::new(2, 3, 4, 5);
        assert!(r.contains(2, 3));
        assert!(r.contains(5, 7));
        assert!(!r.contains(6, 3));
        assert!(!r.contains(2, 8));
        assert_eq!(r.area(), 20);
    }

    #[test]
    fn fill_rect_clips_to_image() {
        let mut img = LabelMap::new(8, 8, 0);
        fill_rect(&mut img, Rect::new(6, 6, 10, 10), 1);
        let count = img.pixels().filter(|&&p| p == 1).count();
        assert_eq!(count, 4); // only the 2x2 corner survives clipping
    }

    #[test]
    fn fill_circle_is_symmetric_and_clipped() {
        let mut img = LabelMap::new(21, 21, 0);
        fill_circle(&mut img, 10, 10, 5, 1);
        assert_eq!(img.get(10, 10), 1);
        assert_eq!(img.get(15, 10), 1);
        assert_eq!(img.get(16, 10), 0);
        // symmetric in the four directions
        assert_eq!(img.get(5, 10), 1);
        assert_eq!(img.get(10, 5), 1);
        assert_eq!(img.get(10, 15), 1);
        // clipped circle does not panic
        let mut img2 = LabelMap::new(4, 4, 0);
        fill_circle(&mut img2, 0, 0, 10, 1);
        assert!(img2.pixels().all(|&p| p == 1));
        fill_circle(&mut img2, 2, 2, -1, 9);
        assert!(img2.pixels().all(|&p| p == 1));
    }

    #[test]
    fn fill_ellipse_respects_axes() {
        let mut img = LabelMap::new(41, 41, 0);
        fill_ellipse(&mut img, 20, 20, 15, 5, 1);
        assert_eq!(img.get(20, 20), 1);
        assert_eq!(img.get(34, 20), 1); // along x within rx
        assert_eq!(img.get(20, 24), 1); // along y within ry
        assert_eq!(img.get(20, 27), 0); // beyond ry
        fill_ellipse(&mut img, 20, 20, 0, 5, 7);
        assert_ne!(img.get(20, 20), 7); // degenerate axes are a no-op
    }

    #[test]
    fn draw_line_connects_endpoints() {
        let mut img = LabelMap::new(16, 16, 0);
        draw_line(&mut img, (0, 0), (15, 15), 1, 1);
        assert_eq!(img.get(0, 0), 1);
        assert_eq!(img.get(15, 15), 1);
        assert_eq!(img.get(7, 7), 1);
        // thicker line covers more pixels
        let mut thick = LabelMap::new(16, 16, 0);
        draw_line(&mut thick, (0, 8), (15, 8), 3, 1);
        let thin_count = img.pixels().filter(|&&p| p == 1).count();
        let thick_count = thick.pixels().filter(|&&p| p == 1).count();
        assert!(thick_count > thin_count);
    }

    #[test]
    fn gradients_interpolate_colors() {
        let mut img = RgbImage::new(3, 5, Rgb::BLACK);
        vertical_gradient(&mut img, Rgb::BLACK, Rgb::WHITE);
        assert_eq!(img.get(0, 0), Rgb::BLACK);
        assert_eq!(img.get(0, 4), Rgb::WHITE);
        assert_eq!(img.get(1, 2), Rgb::new(128, 128, 128));
        let mut img2 = RgbImage::new(5, 2, Rgb::BLACK);
        horizontal_gradient(&mut img2, Rgb::RED, Rgb::BLUE);
        assert_eq!(img2.get(0, 0), Rgb::RED);
        assert_eq!(img2.get(4, 1), Rgb::BLUE);
    }

    #[test]
    fn checkerboard_alternates() {
        let mut img = RgbImage::new(4, 4, Rgb::BLACK);
        checkerboard(&mut img, 2, Rgb::WHITE, Rgb::BLACK);
        assert_eq!(img.get(0, 0), Rgb::WHITE);
        assert_eq!(img.get(2, 0), Rgb::BLACK);
        assert_eq!(img.get(0, 2), Rgb::BLACK);
        assert_eq!(img.get(2, 2), Rgb::WHITE);
    }

    #[test]
    fn lerp_and_brightness() {
        assert_eq!(lerp_rgb(Rgb::BLACK, Rgb::WHITE, 0.0), Rgb::BLACK);
        assert_eq!(lerp_rgb(Rgb::BLACK, Rgb::WHITE, 1.0), Rgb::WHITE);
        assert_eq!(lerp_rgb(Rgb::BLACK, Rgb::WHITE, 2.0), Rgb::WHITE);
        assert_eq!(
            scale_brightness(Rgb::new(100, 200, 10), 0.5),
            Rgb::new(50, 100, 5)
        );
        assert_eq!(
            scale_brightness(Rgb::new(200, 200, 200), 2.0),
            Rgb::new(255, 255, 255)
        );
    }
}
