#![warn(missing_docs)]
//! `imaging` — the imaging substrate for the IQFT-segmentation reproduction.
//!
//! The reproduced paper leans on scikit-image for all of its image handling:
//! loading, RGB→grayscale conversion (its eq. 17), histograms and Otsu's
//! threshold, and on matplotlib for rendering figures.  This crate provides
//! the equivalent functionality natively in Rust so the rest of the workspace
//! has no Python or C dependencies:
//!
//! * [`image::ImageBuffer`] — a dense, row-major image container generic over
//!   the element type, with typed aliases for the formats the workspace uses
//!   ([`RgbImage`], [`RgbImageF`], [`GrayImage`], [`GrayImageF`], [`LabelMap`]).
//! * [`pixel`] — RGB and luma pixel types with channel arithmetic.
//! * [`color`] — colour conversions, including the paper's eq. 17 luma weights.
//! * [`io`] — PPM (P3/P6) and PGM (P2/P5) codecs for reading and writing
//!   images and masks.
//! * [`hist`] — intensity histograms (the substrate for Otsu thresholding).
//! * [`draw`] — shape rasterisation and procedural textures used by the
//!   synthetic dataset generators.
//! * [`filter`] — blurs and noise injection.
//! * [`transform`] — resize / crop / flip.
//! * [`labels`] — label-map utilities: census, relabelling, binarisation,
//!   connected components and palette rendering.
//! * [`stats`] — per-channel image statistics.
//! * [`view`] — zero-copy sub-image views ([`ImageView`], [`LabelViewMut`])
//!   and the deterministic tile decomposition ([`TileRect`]) that lets large
//!   images be segmented as independent tile jobs without copying pixels.
//!
//! # Example
//!
//! ```
//! use imaging::{Rgb, RgbImage};
//!
//! // Build an image procedurally and convert it with the paper's eq. 17
//! // luma weights.
//! let img = RgbImage::from_fn(4, 2, |x, _| Rgb::new((x * 80) as u8, 0, 0));
//! assert_eq!(img.dimensions(), (4, 2));
//! let gray = imaging::color::rgb_to_gray_u8(&img);
//! assert!(gray.get(3, 0).value() > gray.get(0, 0).value());
//! ```

pub mod color;
pub mod draw;
pub mod error;
pub mod filter;
pub mod hist;
pub mod image;
pub mod io;
pub mod labels;
pub mod pixel;
pub mod segment;
pub mod stats;
pub mod transform;
pub mod view;

pub use crate::image::ImageBuffer;
pub use error::{ImagingError, Result};
pub use pixel::{Luma, Rgb};
pub use segment::{PixelClassifier, Segmenter};
pub use view::{ImageView, LabelViewMut, TileRect, TileRects};

/// 8-bit RGB image.
pub type RgbImage = ImageBuffer<Rgb<u8>>;
/// Floating-point RGB image with channels in `[0, 1]`.
pub type RgbImageF = ImageBuffer<Rgb<f64>>;
/// 8-bit grayscale image.
pub type GrayImage = ImageBuffer<Luma<u8>>;
/// Floating-point grayscale image with intensities in `[0, 1]`.
pub type GrayImageF = ImageBuffer<Luma<f64>>;
/// Dense per-pixel label map (segment ids).
pub type LabelMap = ImageBuffer<u32>;

/// Label value used for "void" pixels in ground-truth masks (ignored in mIOU,
/// mirroring the PASCAL VOC convention of marking object borders as void).
pub const VOID_LABEL: u32 = u32::MAX;
