//! Geometric transforms: resize, crop, flip.

use crate::image::ImageBuffer;
use crate::pixel::Rgb;
use crate::RgbImage;

/// Nearest-neighbour resize for any element type (used for label maps, where
/// interpolation would invent labels).
pub fn resize_nearest<P: Copy>(
    img: &ImageBuffer<P>,
    new_width: usize,
    new_height: usize,
) -> ImageBuffer<P> {
    assert!(!img.is_empty(), "cannot resize an empty image");
    ImageBuffer::from_fn(new_width, new_height, |x, y| {
        let sx = (x as f64 + 0.5) * img.width() as f64 / new_width.max(1) as f64;
        let sy = (y as f64 + 0.5) * img.height() as f64 / new_height.max(1) as f64;
        let sx = (sx as usize).min(img.width() - 1);
        let sy = (sy as usize).min(img.height() - 1);
        img.get(sx, sy)
    })
}

/// Bilinear resize for RGB images.
pub fn resize_bilinear_rgb(img: &RgbImage, new_width: usize, new_height: usize) -> RgbImage {
    assert!(!img.is_empty(), "cannot resize an empty image");
    let (w, h) = img.dimensions();
    RgbImage::from_fn(new_width, new_height, |x, y| {
        let sx = (x as f64 + 0.5) * w as f64 / new_width.max(1) as f64 - 0.5;
        let sy = (y as f64 + 0.5) * h as f64 / new_height.max(1) as f64 - 0.5;
        let x0 = sx.floor().clamp(0.0, (w - 1) as f64) as usize;
        let y0 = sy.floor().clamp(0.0, (h - 1) as f64) as usize;
        let x1 = (x0 + 1).min(w - 1);
        let y1 = (y0 + 1).min(h - 1);
        let fx = (sx - x0 as f64).clamp(0.0, 1.0);
        let fy = (sy - y0 as f64).clamp(0.0, 1.0);
        let p00 = img.get(x0, y0);
        let p10 = img.get(x1, y0);
        let p01 = img.get(x0, y1);
        let p11 = img.get(x1, y1);
        let lerp_channel = |c00: u8, c10: u8, c01: u8, c11: u8| -> u8 {
            let top = c00 as f64 + (c10 as f64 - c00 as f64) * fx;
            let bottom = c01 as f64 + (c11 as f64 - c01 as f64) * fx;
            (top + (bottom - top) * fy).round().clamp(0.0, 255.0) as u8
        };
        Rgb::new(
            lerp_channel(p00.r(), p10.r(), p01.r(), p11.r()),
            lerp_channel(p00.g(), p10.g(), p01.g(), p11.g()),
            lerp_channel(p00.b(), p10.b(), p01.b(), p11.b()),
        )
    })
}

/// Crops the rectangle `(x, y, width, height)`; the rectangle is clipped to
/// the image bounds.
pub fn crop<P: Copy>(
    img: &ImageBuffer<P>,
    x: usize,
    y: usize,
    width: usize,
    height: usize,
) -> ImageBuffer<P> {
    let x = x.min(img.width());
    let y = y.min(img.height());
    let width = width.min(img.width() - x);
    let height = height.min(img.height() - y);
    ImageBuffer::from_fn(width, height, |cx, cy| img.get(x + cx, y + cy))
}

/// Horizontal mirror.
pub fn flip_horizontal<P: Copy>(img: &ImageBuffer<P>) -> ImageBuffer<P> {
    ImageBuffer::from_fn(img.width(), img.height(), |x, y| {
        img.get(img.width() - 1 - x, y)
    })
}

/// Vertical mirror.
pub fn flip_vertical<P: Copy>(img: &ImageBuffer<P>) -> ImageBuffer<P> {
    ImageBuffer::from_fn(img.width(), img.height(), |x, y| {
        img.get(x, img.height() - 1 - y)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelMap;

    #[test]
    fn nearest_resize_preserves_label_set() {
        let labels = LabelMap::from_fn(10, 10, |x, _| if x < 5 { 0 } else { 7 });
        let resized = resize_nearest(&labels, 23, 17);
        assert_eq!(resized.dimensions(), (23, 17));
        let mut values: Vec<u32> = resized.pixels().copied().collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values, vec![0, 7]);
    }

    #[test]
    fn nearest_resize_identity_size_is_identity() {
        let img = LabelMap::from_fn(6, 4, |x, y| (x * 10 + y) as u32);
        assert_eq!(resize_nearest(&img, 6, 4), img);
    }

    #[test]
    fn bilinear_resize_of_constant_is_constant() {
        let img = RgbImage::new(9, 7, Rgb::new(13, 77, 200));
        let out = resize_bilinear_rgb(&img, 20, 3);
        assert!(out.pixels().all(|&p| p == Rgb::new(13, 77, 200)));
    }

    #[test]
    fn bilinear_downscale_averages_checkerboard() {
        let img = RgbImage::from_fn(4, 4, |x, y| {
            if (x + y) % 2 == 0 {
                Rgb::new(0, 0, 0)
            } else {
                Rgb::new(255, 255, 255)
            }
        });
        let out = resize_bilinear_rgb(&img, 2, 2);
        // Every sampled neighbourhood mixes black and white pixels.
        for p in out.pixels() {
            assert!(p.r() > 0 && p.r() < 255);
        }
    }

    #[test]
    fn crop_extracts_subregion_and_clips() {
        let img = LabelMap::from_fn(8, 8, |x, y| (y * 8 + x) as u32);
        let c = crop(&img, 2, 3, 4, 2);
        assert_eq!(c.dimensions(), (4, 2));
        assert_eq!(c.get(0, 0), 3 * 8 + 2);
        assert_eq!(c.get(3, 1), 4 * 8 + 5);
        let clipped = crop(&img, 6, 6, 10, 10);
        assert_eq!(clipped.dimensions(), (2, 2));
    }

    #[test]
    fn flips_are_involutions() {
        let img = LabelMap::from_fn(7, 5, |x, y| (x * 31 + y * 7) as u32);
        assert_eq!(flip_horizontal(&flip_horizontal(&img)), img);
        assert_eq!(flip_vertical(&flip_vertical(&img)), img);
        let h = flip_horizontal(&img);
        assert_eq!(h.get(0, 0), img.get(6, 0));
        let v = flip_vertical(&img);
        assert_eq!(v.get(0, 0), img.get(0, 4));
    }
}
