//! Intensity histograms.
//!
//! Histograms are the substrate for Otsu's method (baseline) and for the
//! automatic θ-selection heuristic in the core crate.

use crate::pixel::Luma;
use crate::{GrayImage, GrayImageF, RgbImage};

/// A 256-bin intensity histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: [u64; 256],
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            bins: [0; 256],
            total: 0,
        }
    }

    /// Builds a histogram from an 8-bit grayscale image.
    pub fn of_gray(img: &GrayImage) -> Self {
        let mut h = Self::new();
        for p in img.pixels() {
            h.push(p.value());
        }
        h
    }

    /// Builds a histogram from a normalised `[0, 1]` grayscale image by
    /// quantising intensities to 256 levels.
    pub fn of_gray_f(img: &GrayImageF) -> Self {
        let mut h = Self::new();
        for p in img.pixels() {
            h.push((p.value().clamp(0.0, 1.0) * 255.0).round() as u8);
        }
        h
    }

    /// Builds a luminance histogram of an RGB image using the paper's eq. 17
    /// weights.
    pub fn of_rgb_luma(img: &RgbImage) -> Self {
        let mut h = Self::new();
        for p in img.pixels() {
            h.push(crate::color::luma_u8_of(*p));
        }
        h
    }

    /// Adds one sample.
    pub fn push(&mut self, value: u8) {
        self.bins[value as usize] += 1;
        self.total += 1;
    }

    /// Count in bin `value`.
    pub fn count(&self, value: u8) -> u64 {
        self.bins[value as usize]
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bins.
    pub fn bins(&self) -> &[u64; 256] {
        &self.bins
    }

    /// Normalised bin probabilities (empty histogram yields all zeros).
    pub fn probabilities(&self) -> [f64; 256] {
        let mut p = [0.0; 256];
        if self.total == 0 {
            return p;
        }
        let n = self.total as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            p[i] = c as f64 / n;
        }
        p
    }

    /// Mean intensity (0–255 scale); 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, &c)| i as f64 * c as f64)
            .sum();
        sum / self.total as f64
    }

    /// Intensity variance (0–255 scale).
    pub fn variance(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let sum: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = i as f64 - mean;
                d * d * c as f64
            })
            .sum();
        sum / self.total as f64
    }

    /// Smallest intensity with a non-zero count, if any sample exists.
    pub fn min(&self) -> Option<u8> {
        self.bins.iter().position(|&c| c > 0).map(|i| i as u8)
    }

    /// Largest intensity with a non-zero count, if any sample exists.
    pub fn max(&self) -> Option<u8> {
        self.bins.iter().rposition(|&c| c > 0).map(|i| i as u8)
    }

    /// Cumulative distribution function over the 256 bins.
    pub fn cdf(&self) -> [f64; 256] {
        let p = self.probabilities();
        let mut cdf = [0.0; 256];
        let mut acc = 0.0;
        for i in 0..256 {
            acc += p[i];
            cdf[i] = acc;
        }
        cdf
    }
}

/// Per-channel histograms of an RGB image.
#[derive(Debug, Clone, Default)]
pub struct RgbHistogram {
    /// Red channel histogram.
    pub r: Histogram,
    /// Green channel histogram.
    pub g: Histogram,
    /// Blue channel histogram.
    pub b: Histogram,
}

impl RgbHistogram {
    /// Builds per-channel histograms for `img`.
    pub fn of_rgb(img: &RgbImage) -> Self {
        let mut h = Self::default();
        for p in img.pixels() {
            h.r.push(p.r());
            h.g.push(p.g());
            h.b.push(p.b());
        }
        h
    }
}

/// Builds a grayscale image whose histogram is `hist` scaled to the requested
/// number of pixels — used by property tests to round-trip histogram logic.
pub fn synthesize_from_histogram(hist: &Histogram, width: usize) -> GrayImage {
    let mut values = Vec::new();
    for (i, &c) in hist.bins().iter().enumerate() {
        for _ in 0..c {
            values.push(i as u8);
        }
    }
    let height = values.len().div_ceil(width.max(1));
    let mut img = GrayImage::new(width, height, Luma(0));
    for (idx, v) in values.into_iter().enumerate() {
        let x = idx % width.max(1);
        let y = idx / width.max(1);
        img.set_clipped(x, y, Luma(v));
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Rgb;

    #[test]
    fn empty_histogram_defaults() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.variance(), 0.0);
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert!(h.probabilities().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn push_and_count() {
        let mut h = Histogram::new();
        h.push(5);
        h.push(5);
        h.push(200);
        assert_eq!(h.count(5), 2);
        assert_eq!(h.count(200), 1);
        assert_eq!(h.count(7), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(200));
    }

    #[test]
    fn histogram_of_gray_image() {
        let img = GrayImage::from_fn(4, 2, |x, _| Luma(if x < 2 { 10 } else { 240 }));
        let h = Histogram::of_gray(&img);
        assert_eq!(h.count(10), 4);
        assert_eq!(h.count(240), 4);
        assert_eq!(h.total(), 8);
        assert!((h.mean() - 125.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let img = GrayImage::from_fn(10, 10, |x, y| Luma(((x * y) % 256) as u8));
        let h = Histogram::of_gray(&img);
        let sum: f64 = h.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let cdf = h.cdf();
        assert!((cdf[255] - 1.0).abs() < 1e-9);
        assert!(cdf.windows(2).all(|w| w[1] >= w[0] - 1e-15));
    }

    #[test]
    fn variance_of_constant_image_is_zero() {
        let img = GrayImage::new(8, 8, Luma(77));
        let h = Histogram::of_gray(&img);
        assert_eq!(h.variance(), 0.0);
        assert_eq!(h.mean(), 77.0);
    }

    #[test]
    fn of_gray_f_quantizes() {
        let img = GrayImageF::from_fn(2, 1, |x, _| Luma(if x == 0 { 0.0 } else { 1.0 }));
        let h = Histogram::of_gray_f(&img);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(255), 1);
    }

    #[test]
    fn rgb_luma_histogram_uses_eq17() {
        let img = RgbImage::new(3, 1, Rgb::new(0, 255, 0));
        let h = Histogram::of_rgb_luma(&img);
        let expected = (crate::color::LUMA_G * 255.0).round() as u8;
        assert_eq!(h.count(expected), 3);
    }

    #[test]
    fn per_channel_histograms() {
        let img = RgbImage::new(2, 2, Rgb::new(1, 2, 3));
        let h = RgbHistogram::of_rgb(&img);
        assert_eq!(h.r.count(1), 4);
        assert_eq!(h.g.count(2), 4);
        assert_eq!(h.b.count(3), 4);
    }

    #[test]
    fn synthesize_roundtrips_counts() {
        let mut h = Histogram::new();
        for v in [3u8, 3, 3, 250, 250, 17] {
            h.push(v);
        }
        let img = synthesize_from_histogram(&h, 4);
        let h2 = Histogram::of_gray(&img);
        // The synthesized image may contain padding zeros in the final row.
        assert!(h2.count(3) >= 3);
        assert!(h2.count(250) >= 2);
        assert!(h2.count(17) >= 1);
    }
}
