//! Pixel types: RGB triples and single-channel luma values.

/// An RGB pixel with channel type `T`.
///
/// The workspace uses `Rgb<u8>` for stored images and `Rgb<f64>` for the
/// normalised `[0, 1]` representation consumed by the segmentation algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb<T>(pub [T; 3]);

/// A single-channel (grayscale) pixel with channel type `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Luma<T>(pub T);

impl<T: Copy> Rgb<T> {
    /// Creates a pixel from individual channel values.
    pub fn new(r: T, g: T, b: T) -> Self {
        Rgb([r, g, b])
    }

    /// Red channel.
    pub fn r(&self) -> T {
        self.0[0]
    }

    /// Green channel.
    pub fn g(&self) -> T {
        self.0[1]
    }

    /// Blue channel.
    pub fn b(&self) -> T {
        self.0[2]
    }

    /// Applies `f` to every channel.
    pub fn map<U: Copy, F: Fn(T) -> U>(&self, f: F) -> Rgb<U> {
        Rgb([f(self.0[0]), f(self.0[1]), f(self.0[2])])
    }
}

impl Rgb<u8> {
    /// Converts to a floating-point pixel with channels in `[0, 1]`.
    pub fn to_f64(self) -> Rgb<f64> {
        self.map(|c| c as f64 / 255.0)
    }

    /// Per-channel squared Euclidean distance to `other` (in u8 units).
    pub fn dist2(self, other: Rgb<u8>) -> f64 {
        let dr = self.r() as f64 - other.r() as f64;
        let dg = self.g() as f64 - other.g() as f64;
        let db = self.b() as f64 - other.b() as f64;
        dr * dr + dg * dg + db * db
    }

    /// Fully saturated channel shortcut colours used by the synthetic scenes.
    pub const BLACK: Rgb<u8> = Rgb([0, 0, 0]);
    /// White.
    pub const WHITE: Rgb<u8> = Rgb([255, 255, 255]);
    /// Red.
    pub const RED: Rgb<u8> = Rgb([255, 0, 0]);
    /// Green.
    pub const GREEN: Rgb<u8> = Rgb([0, 255, 0]);
    /// Blue.
    pub const BLUE: Rgb<u8> = Rgb([0, 0, 255]);
}

impl Rgb<f64> {
    /// Converts to an 8-bit pixel, clamping to `[0, 1]` first.
    pub fn to_u8(self) -> Rgb<u8> {
        self.map(|c| (c.clamp(0.0, 1.0) * 255.0).round() as u8)
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist2(self, other: Rgb<f64>) -> f64 {
        let dr = self.r() - other.r();
        let dg = self.g() - other.g();
        let db = self.b() - other.b();
        dr * dr + dg * dg + db * db
    }

    /// Channel-wise addition (used when accumulating cluster means).
    #[allow(clippy::should_implement_trait)] // named like the operator on purpose
    pub fn add(self, other: Rgb<f64>) -> Rgb<f64> {
        Rgb([
            self.r() + other.r(),
            self.g() + other.g(),
            self.b() + other.b(),
        ])
    }

    /// Channel-wise scaling.
    pub fn scale(self, k: f64) -> Rgb<f64> {
        self.map(|c| c * k)
    }
}

impl<T: Copy> Luma<T> {
    /// Creates a luma pixel.
    pub fn new(v: T) -> Self {
        Luma(v)
    }

    /// The underlying intensity value.
    pub fn value(&self) -> T {
        self.0
    }
}

impl Luma<u8> {
    /// Converts to a normalised `[0, 1]` intensity.
    pub fn to_f64(self) -> Luma<f64> {
        Luma(self.0 as f64 / 255.0)
    }
}

impl Luma<f64> {
    /// Converts to an 8-bit intensity, clamping to `[0, 1]` first.
    pub fn to_u8(self) -> Luma<u8> {
        Luma((self.0.clamp(0.0, 1.0) * 255.0).round() as u8)
    }
}

impl<T: Copy> From<[T; 3]> for Rgb<T> {
    fn from(v: [T; 3]) -> Self {
        Rgb(v)
    }
}

impl<T: Copy> From<T> for Luma<T> {
    fn from(v: T) -> Self {
        Luma(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_accessors() {
        let p = Rgb::new(1u8, 2, 3);
        assert_eq!((p.r(), p.g(), p.b()), (1, 2, 3));
        assert_eq!(Rgb::from([4u8, 5, 6]), Rgb::new(4, 5, 6));
    }

    #[test]
    fn u8_to_f64_roundtrip() {
        for v in [0u8, 1, 17, 127, 200, 255] {
            let p = Rgb::new(v, v, v).to_f64();
            assert!(p.r() >= 0.0 && p.r() <= 1.0);
            assert_eq!(p.to_u8(), Rgb::new(v, v, v));
        }
        assert_eq!(Luma::new(255u8).to_f64().value(), 1.0);
        assert_eq!(Luma::new(0.5f64).to_u8().value(), 128);
    }

    #[test]
    fn f64_to_u8_clamps() {
        let p = Rgb::new(-0.5f64, 1.5, 0.5).to_u8();
        assert_eq!(p, Rgb::new(0u8, 255, 128));
        assert_eq!(Luma::new(2.0f64).to_u8().value(), 255);
        assert_eq!(Luma::new(-1.0f64).to_u8().value(), 0);
    }

    #[test]
    fn distances_are_euclidean_squared() {
        let a = Rgb::new(0u8, 0, 0);
        let b = Rgb::new(3u8, 4, 0);
        assert_eq!(a.dist2(b), 25.0);
        let af = a.to_f64();
        let bf = b.to_f64();
        let expected = (3.0f64 / 255.0).powi(2) + (4.0f64 / 255.0).powi(2);
        assert!((af.dist2(bf) - expected).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_helpers() {
        let a = Rgb::new(0.1, 0.2, 0.3);
        let b = Rgb::new(0.4, 0.5, 0.6);
        let s = a.add(b);
        assert!((s.r() - 0.5).abs() < 1e-12);
        assert!((s.b() - 0.9).abs() < 1e-12);
        let h = s.scale(0.5);
        assert!((h.g() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn named_colors() {
        assert_eq!(Rgb::RED.r(), 255);
        assert_eq!(Rgb::RED.g(), 0);
        assert_eq!(Rgb::BLACK, Rgb::new(0, 0, 0));
        assert_eq!(Rgb::WHITE, Rgb::new(255, 255, 255));
        assert_eq!(Rgb::GREEN.g(), 255);
        assert_eq!(Rgb::BLUE.b(), 255);
    }

    #[test]
    fn map_applies_per_channel() {
        let p = Rgb::new(1u8, 2, 3).map(|c| c as u16 * 10);
        assert_eq!(p, Rgb::new(10u16, 20, 30));
        let l: Luma<u8> = 7u8.into();
        assert_eq!(l.value(), 7);
    }
}
