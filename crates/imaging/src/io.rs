//! Netpbm (PPM / PGM) encoding and decoding.
//!
//! The workspace stores every rendered figure and every synthetic dataset
//! image as binary PPM (`P6`) or PGM (`P5`); the ASCII variants (`P3`/`P2`)
//! are also read so hand-written fixtures can be used in tests.  Netpbm was
//! chosen over PNG because it needs no compression dependency, and every
//! common image viewer / converter understands it.

use crate::error::{ImagingError, Result};
use crate::pixel::{Luma, Rgb};
use crate::{GrayImage, RgbImage};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Writes an RGB image as binary PPM (`P6`).
pub fn write_ppm<W: Write>(img: &RgbImage, mut w: W) -> Result<()> {
    write!(w, "P6\n{} {}\n255\n", img.width(), img.height())?;
    let mut buf = Vec::with_capacity(img.len() * 3);
    for p in img.pixels() {
        buf.extend_from_slice(&p.0);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Writes an RGB image as binary PPM to `path`.
pub fn save_ppm<P: AsRef<Path>>(img: &RgbImage, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_ppm(img, std::io::BufWriter::new(file))
}

/// Writes a grayscale image as binary PGM (`P5`).
pub fn write_pgm<W: Write>(img: &GrayImage, mut w: W) -> Result<()> {
    write!(w, "P5\n{} {}\n255\n", img.width(), img.height())?;
    let buf: Vec<u8> = img.pixels().map(|p| p.value()).collect();
    w.write_all(&buf)?;
    Ok(())
}

/// Writes a grayscale image as binary PGM to `path`.
pub fn save_pgm<P: AsRef<Path>>(img: &GrayImage, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_pgm(img, std::io::BufWriter::new(file))
}

/// Reads a PPM image (`P6` binary or `P3` ASCII).
pub fn read_ppm<R: Read>(r: R) -> Result<RgbImage> {
    let mut reader = BufReader::new(r);
    let header = PnmHeader::parse(&mut reader)?;
    match header.magic {
        PnmMagic::P6 => {
            let mut data = vec![0u8; header.width * header.height * 3];
            reader.read_exact(&mut data)?;
            let pixels: Vec<Rgb<u8>> = data
                .chunks_exact(3)
                .map(|c| Rgb::new(c[0], c[1], c[2]))
                .collect();
            RgbImage::from_vec(header.width, header.height, pixels)
        }
        PnmMagic::P3 => {
            let values = read_ascii_values(&mut reader, header.width * header.height * 3)?;
            let pixels: Vec<Rgb<u8>> = values
                .chunks_exact(3)
                .map(|c| Rgb::new(c[0], c[1], c[2]))
                .collect();
            RgbImage::from_vec(header.width, header.height, pixels)
        }
        _ => Err(ImagingError::Decode(
            "expected a PPM (P3/P6) file, found a PGM header".into(),
        )),
    }
}

/// Reads a PPM image from `path`.
pub fn load_ppm<P: AsRef<Path>>(path: P) -> Result<RgbImage> {
    read_ppm(std::fs::File::open(path)?)
}

/// Reads a PGM image (`P5` binary or `P2` ASCII).
pub fn read_pgm<R: Read>(r: R) -> Result<GrayImage> {
    let mut reader = BufReader::new(r);
    let header = PnmHeader::parse(&mut reader)?;
    match header.magic {
        PnmMagic::P5 => {
            let mut data = vec![0u8; header.width * header.height];
            reader.read_exact(&mut data)?;
            let pixels: Vec<Luma<u8>> = data.into_iter().map(Luma).collect();
            GrayImage::from_vec(header.width, header.height, pixels)
        }
        PnmMagic::P2 => {
            let values = read_ascii_values(&mut reader, header.width * header.height)?;
            let pixels: Vec<Luma<u8>> = values.into_iter().map(Luma).collect();
            GrayImage::from_vec(header.width, header.height, pixels)
        }
        _ => Err(ImagingError::Decode(
            "expected a PGM (P2/P5) file, found a PPM header".into(),
        )),
    }
}

/// Reads a PGM image from `path`.
pub fn load_pgm<P: AsRef<Path>>(path: P) -> Result<GrayImage> {
    read_pgm(std::fs::File::open(path)?)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PnmMagic {
    P2,
    P3,
    P5,
    P6,
}

struct PnmHeader {
    magic: PnmMagic,
    width: usize,
    height: usize,
    #[allow(dead_code)]
    maxval: u32,
}

impl PnmHeader {
    /// Parses the netpbm header (magic, width, height, maxval), skipping
    /// whitespace and `#` comments, and leaves the reader positioned at the
    /// first byte of pixel data.
    fn parse<R: BufRead>(reader: &mut R) -> Result<Self> {
        let magic_token = next_token(reader)?;
        let magic = match magic_token.as_str() {
            "P2" => PnmMagic::P2,
            "P3" => PnmMagic::P3,
            "P5" => PnmMagic::P5,
            "P6" => PnmMagic::P6,
            other => {
                return Err(ImagingError::Decode(format!(
                    "unsupported netpbm magic '{other}'"
                )))
            }
        };
        let width: usize = parse_token(&next_token(reader)?)?;
        let height: usize = parse_token(&next_token(reader)?)?;
        let maxval: u32 = parse_token(&next_token(reader)?)?;
        if maxval == 0 || maxval > 255 {
            return Err(ImagingError::Decode(format!(
                "unsupported maxval {maxval}; only 8-bit netpbm is supported"
            )));
        }
        Ok(Self {
            magic,
            width,
            height,
            maxval,
        })
    }
}

fn parse_token<T: std::str::FromStr>(token: &str) -> Result<T> {
    token
        .parse()
        .map_err(|_| ImagingError::Decode(format!("invalid numeric token '{token}'")))
}

/// Reads the next whitespace-delimited token, skipping `#` comments.  Consumes
/// exactly one trailing whitespace byte after the token (the netpbm rule that
/// separates the header from binary pixel data).
fn next_token<R: BufRead>(reader: &mut R) -> Result<String> {
    let mut token = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        let n = reader.read(&mut byte)?;
        if n == 0 {
            if token.is_empty() {
                return Err(ImagingError::Decode("unexpected end of header".into()));
            }
            return Ok(token);
        }
        let c = byte[0] as char;
        if in_comment {
            if c == '\n' {
                in_comment = false;
            }
            continue;
        }
        if c == '#' {
            in_comment = true;
            continue;
        }
        if c.is_whitespace() {
            if token.is_empty() {
                continue;
            }
            return Ok(token);
        }
        token.push(c);
    }
}

fn read_ascii_values<R: BufRead>(reader: &mut R, count: usize) -> Result<Vec<u8>> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    let mut values = Vec::with_capacity(count);
    for token in text.split_whitespace() {
        if token.starts_with('#') {
            continue;
        }
        let v: u32 = parse_token(token)?;
        if v > 255 {
            return Err(ImagingError::Decode(format!(
                "ASCII sample {v} exceeds maxval 255"
            )));
        }
        values.push(v as u8);
        if values.len() == count {
            break;
        }
    }
    if values.len() != count {
        return Err(ImagingError::Decode(format!(
            "expected {count} samples, found {}",
            values.len()
        )));
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_rgb() -> RgbImage {
        RgbImage::from_fn(4, 3, |x, y| Rgb::new((x * 60) as u8, (y * 80) as u8, 200))
    }

    fn test_gray() -> GrayImage {
        GrayImage::from_fn(5, 2, |x, y| Luma((x * 50 + y * 10) as u8))
    }

    #[test]
    fn ppm_roundtrip_in_memory() {
        let img = test_rgb();
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n4 3\n255\n"));
        let back = read_ppm(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn pgm_roundtrip_in_memory() {
        let img = test_gray();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn ascii_ppm_is_parsed() {
        let text = "P3\n# a comment\n2 2\n255\n255 0 0  0 255 0\n0 0 255  10 20 30\n";
        let img = read_ppm(text.as_bytes()).unwrap();
        assert_eq!(img.get(0, 0), Rgb::new(255, 0, 0));
        assert_eq!(img.get(1, 0), Rgb::new(0, 255, 0));
        assert_eq!(img.get(0, 1), Rgb::new(0, 0, 255));
        assert_eq!(img.get(1, 1), Rgb::new(10, 20, 30));
    }

    #[test]
    fn ascii_pgm_is_parsed() {
        let text = "P2\n3 1\n255\n0 128 255\n";
        let img = read_pgm(text.as_bytes()).unwrap();
        assert_eq!(img.get(0, 0).value(), 0);
        assert_eq!(img.get(1, 0).value(), 128);
        assert_eq!(img.get(2, 0).value(), 255);
    }

    #[test]
    fn comments_in_header_are_skipped() {
        let text = "P2\n# width and height follow\n2 # inline\n1\n255\n7 9\n";
        let img = read_pgm(text.as_bytes()).unwrap();
        assert_eq!(img.dimensions(), (2, 1));
        assert_eq!(img.get(1, 0).value(), 9);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        assert!(matches!(
            read_ppm("P5\n1 1\n255\n\0".as_bytes()).unwrap_err(),
            ImagingError::Decode(_)
        ));
        assert!(matches!(
            read_pgm("P6\n1 1\n255\n\0\0\0".as_bytes()).unwrap_err(),
            ImagingError::Decode(_)
        ));
        assert!(matches!(
            read_ppm("P9\n1 1\n255\n".as_bytes()).unwrap_err(),
            ImagingError::Decode(_)
        ));
    }

    #[test]
    fn truncated_data_is_an_error() {
        let text = "P2\n3 1\n255\n1 2\n";
        assert!(read_pgm(text.as_bytes()).is_err());
        let mut buf = Vec::new();
        write_ppm(&test_rgb(), &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_ppm(&buf[..]).is_err());
    }

    #[test]
    fn unsupported_maxval_is_rejected() {
        let text = "P2\n1 1\n65535\n1000\n";
        assert!(read_pgm(text.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("imaging-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ppm_path = dir.join("test.ppm");
        let pgm_path = dir.join("test.pgm");
        save_ppm(&test_rgb(), &ppm_path).unwrap();
        save_pgm(&test_gray(), &pgm_path).unwrap();
        assert_eq!(load_ppm(&ppm_path).unwrap(), test_rgb());
        assert_eq!(load_pgm(&pgm_path).unwrap(), test_gray());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
