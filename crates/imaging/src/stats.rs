//! Per-channel image statistics.

use crate::{GrayImage, GrayImageF, RgbImage};

/// Mean and standard deviation of a sequence of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

fn mean_std(values: impl Iterator<Item = f64>) -> MeanStd {
    let mut n = 0usize;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for v in values {
        n += 1;
        sum += v;
        sum_sq += v * v;
    }
    if n == 0 {
        return MeanStd {
            mean: 0.0,
            std: 0.0,
        };
    }
    let mean = sum / n as f64;
    let var = (sum_sq / n as f64 - mean * mean).max(0.0);
    MeanStd {
        mean,
        std: var.sqrt(),
    }
}

/// Per-channel statistics of an RGB image (0–255 scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RgbStats {
    /// Red channel statistics.
    pub r: MeanStd,
    /// Green channel statistics.
    pub g: MeanStd,
    /// Blue channel statistics.
    pub b: MeanStd,
}

/// Computes per-channel mean/std of an RGB image.
pub fn rgb_stats(img: &RgbImage) -> RgbStats {
    RgbStats {
        r: mean_std(img.pixels().map(|p| p.r() as f64)),
        g: mean_std(img.pixels().map(|p| p.g() as f64)),
        b: mean_std(img.pixels().map(|p| p.b() as f64)),
    }
}

/// Mean/std of an 8-bit grayscale image (0–255 scale).
pub fn gray_stats(img: &GrayImage) -> MeanStd {
    mean_std(img.pixels().map(|p| p.value() as f64))
}

/// Mean/std of a normalised grayscale image (`[0, 1]` scale).
pub fn gray_f_stats(img: &GrayImageF) -> MeanStd {
    mean_std(img.pixels().map(|p| p.value()))
}

/// Michelson contrast of a grayscale image: `(max - min) / (max + min)`.
///
/// Returns 0 for constant or empty images.
pub fn michelson_contrast(img: &GrayImage) -> f64 {
    let mut min = u8::MAX;
    let mut max = u8::MIN;
    for p in img.pixels() {
        min = min.min(p.value());
        max = max.max(p.value());
    }
    if img.is_empty() || (max as u16 + min as u16) == 0 {
        return 0.0;
    }
    (max as f64 - min as f64) / (max as f64 + min as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::{Luma, Rgb};

    #[test]
    fn constant_image_has_zero_std() {
        let img = RgbImage::new(8, 8, Rgb::new(10, 20, 30));
        let s = rgb_stats(&img);
        assert_eq!(s.r.mean, 10.0);
        assert_eq!(s.g.mean, 20.0);
        assert_eq!(s.b.mean, 30.0);
        assert_eq!(s.r.std, 0.0);
    }

    #[test]
    fn two_value_image_statistics() {
        let img = GrayImage::from_fn(2, 1, |x, _| Luma(if x == 0 { 0 } else { 200 }));
        let s = gray_stats(&img);
        assert_eq!(s.mean, 100.0);
        assert_eq!(s.std, 100.0);
    }

    #[test]
    fn empty_image_statistics_are_zero() {
        let img = GrayImage::new(0, 0, Luma(0));
        let s = gray_stats(&img);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(michelson_contrast(&img), 0.0);
    }

    #[test]
    fn normalized_stats_match_u8_stats() {
        let img = GrayImage::from_fn(16, 1, |x, _| Luma((x * 16) as u8));
        let imgf = crate::color::normalize_gray(&img);
        let s8 = gray_stats(&img);
        let sf = gray_f_stats(&imgf);
        assert!((s8.mean / 255.0 - sf.mean).abs() < 1e-12);
        assert!((s8.std / 255.0 - sf.std).abs() < 1e-12);
    }

    #[test]
    fn contrast_extremes() {
        let flat = GrayImage::new(4, 4, Luma(128));
        assert_eq!(michelson_contrast(&flat), 0.0);
        let full = GrayImage::from_fn(2, 1, |x, _| Luma(if x == 0 { 0 } else { 255 }));
        assert_eq!(michelson_contrast(&full), 1.0);
        let black = GrayImage::new(2, 2, Luma(0));
        assert_eq!(michelson_contrast(&black), 0.0);
    }
}
