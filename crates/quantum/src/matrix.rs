//! Dense complex matrices.

use crate::complex::Complex;

/// A dense, row-major complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, Complex::ONE);
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Complex {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Complex) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[Complex] {
        assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(
            v.len(),
            self.cols,
            "vector length {} does not match matrix columns {}",
            v.len(),
            self.cols
        );
        (0..self.rows)
            .map(|r| {
                let mut acc = Complex::ZERO;
                for (a, b) in self.row(r).iter().zip(v.iter()) {
                    acc += *a * *b;
                }
                acc
            })
            .collect()
    }

    /// Matrix–matrix product.
    pub fn mul_mat(&self, other: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = CMatrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == Complex::ZERO {
                    continue;
                }
                for c in 0..other.cols {
                    let cur = out.get(r, c);
                    out.set(r, c, cur + a * other.get(k, c));
                }
            }
        }
        out
    }

    /// Conjugate transpose (dagger).
    pub fn dagger(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r).conj())
    }

    /// Maximum absolute elementwise difference to `other`.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// True if `self · self† ≈ I` within `eps`.
    pub fn is_unitary(&self, eps: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let product = self.mul_mat(&self.dagger());
        product.max_abs_diff(&CMatrix::identity(self.rows)) <= eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn identity_times_vector_is_vector() {
        let id = CMatrix::identity(4);
        let v: Vec<Complex> = (0..4)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        assert_eq!(id.mul_vec(&v), v);
        assert!(id.is_unitary(1e-12));
    }

    #[test]
    fn from_fn_and_accessors() {
        let m = CMatrix::from_fn(2, 3, |r, c| Complex::new(r as f64, c as f64));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), Complex::new(1.0, 2.0));
        assert_eq!(m.row(0).len(), 3);
    }

    #[test]
    fn matrix_multiplication_matches_manual() {
        // [[1, i], [0, 1]] * [[1, 0], [1, 1]] = [[1+i, i], [1, 1]]
        let a = CMatrix::from_fn(2, 2, |r, c| match (r, c) {
            (0, 0) => Complex::ONE,
            (0, 1) => Complex::I,
            (1, 1) => Complex::ONE,
            _ => Complex::ZERO,
        });
        let b = CMatrix::from_fn(2, 2, |r, c| match (r, c) {
            (0, 0) => Complex::ONE,
            (1, 0) => Complex::ONE,
            (1, 1) => Complex::ONE,
            _ => Complex::ZERO,
        });
        let p = a.mul_mat(&b);
        assert!(p.get(0, 0).approx_eq(Complex::new(1.0, 1.0), 1e-12));
        assert!(p.get(0, 1).approx_eq(Complex::I, 1e-12));
        assert!(p.get(1, 0).approx_eq(Complex::ONE, 1e-12));
        assert!(p.get(1, 1).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn dagger_conjugates_and_transposes() {
        let m = CMatrix::from_fn(2, 2, |r, c| {
            Complex::new((r + c) as f64, r as f64 - c as f64)
        });
        let d = m.dagger();
        assert_eq!(d.get(0, 1), m.get(1, 0).conj());
        assert_eq!(d.get(1, 0), m.get(0, 1).conj());
    }

    #[test]
    fn hadamard_is_unitary_but_scaled_is_not() {
        let s = 1.0 / 2.0_f64.sqrt();
        let h = CMatrix::from_fn(2, 2, |r, c| {
            if r == 1 && c == 1 {
                Complex::real(-s)
            } else {
                Complex::real(s)
            }
        });
        assert!(h.is_unitary(1e-12));
        let mut not_unitary = h.clone();
        not_unitary.set(0, 0, Complex::real(1.0));
        assert!(!not_unitary.is_unitary(1e-9));
        // Non-square matrices are never unitary.
        assert!(!CMatrix::zeros(2, 3).is_unitary(1e-9));
    }

    #[test]
    fn phase_matrix_unitarity() {
        let p = CMatrix::from_fn(2, 2, |r, c| {
            if r == c {
                if r == 0 {
                    Complex::ONE
                } else {
                    Complex::from_phase(PI / 3.0)
                }
            } else {
                Complex::ZERO
            }
        });
        assert!(p.is_unitary(1e-12));
    }

    #[test]
    #[should_panic(expected = "does not match matrix columns")]
    fn mul_vec_dimension_mismatch_panics() {
        let m = CMatrix::identity(3);
        let _ = m.mul_vec(&[Complex::ONE; 2]);
    }

    #[test]
    fn max_abs_diff_detects_differences() {
        let a = CMatrix::identity(2);
        let mut b = CMatrix::identity(2);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(0, 1, Complex::new(0.0, 0.5));
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
    }
}
