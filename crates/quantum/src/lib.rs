#![warn(missing_docs)]
//! `quantum` — a small quantum-computing substrate.
//!
//! The reproduced paper derives its segmentation rule from the inverse quantum
//! Fourier transform: pixel intensities are encoded as the relative phases of
//! a 3-qubit product state (its eqs. 2–8), the IQFT is applied, and the pixel
//! is classified by the most probable computational basis state (eqs. 10–11).
//! The paper then evaluates a purely classical re-expression of that rule.
//!
//! This crate implements the quantum side from scratch so the classical
//! "inspired" algorithm in `iqft-seg` can be *derived from and validated
//! against* a genuine simulation:
//!
//! * [`complex::Complex`] — complex arithmetic (no external dependency).
//! * [`matrix::CMatrix`] — dense complex matrices with multiplication and
//!   unitarity checks.
//! * [`dft`] — the DFT / inverse-DFT unitaries; `idft_matrix(8)` is exactly
//!   the `W` matrix of the paper's eq. 11.
//! * [`state::StateVector`] — a dense state-vector simulator for up to ~20
//!   qubits with measurement probabilities.
//! * [`gates`] — standard gates (H, X, phase, controlled-phase, swap).
//! * [`circuit`] — gate sequences plus textbook QFT / IQFT circuit builders
//!   (Nielsen & Chuang construction: Hadamards, controlled phases, final swap
//!   network).
//! * [`encoding`] — the paper's phase encoding: building the product state
//!   `⊗_k (|0⟩ + e^{iθ_k}|1⟩)/√2` from a vector of angles.
//!
//! # Example
//!
//! Phase-encode three angles, apply the textbook 3-qubit IQFT circuit, and
//! confirm it matches multiplication by the inverse-DFT matrix (the paper's
//! `W` of eq. 11):
//!
//! ```
//! use quantum::{idft_matrix, phase_product_state, Circuit};
//!
//! let state = phase_product_state(&[2.464, 0.025, 0.246]);
//! let mut via_circuit = state.clone();
//! Circuit::iqft(3).apply(&mut via_circuit);
//! let via_matrix = idft_matrix(8).mul_vec(state.amplitudes());
//! for (a, b) in via_circuit.amplitudes().iter().zip(&via_matrix) {
//!     assert!(a.sub(*b).abs() < 1e-9);
//! }
//! ```

pub mod circuit;
pub mod complex;
pub mod dft;
pub mod encoding;
pub mod gates;
pub mod matrix;
pub mod state;

pub use circuit::Circuit;
pub use complex::Complex;
pub use dft::{dft_matrix, idft_matrix};
pub use encoding::{phase_product_state, phase_vector};
pub use matrix::CMatrix;
pub use state::StateVector;

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: the IQFT circuit applied to the phase-encoded state gives
    /// the same probability distribution as multiplying by the inverse-DFT
    /// matrix — the identity the paper's Algorithm 1 is built on.
    #[test]
    fn circuit_matrix_and_encoding_agree() {
        let angles = [2.464, 0.025, 0.246];
        // Phase-encoded product state |ψ⟩ = ⊗ (|0⟩+e^{iθ}|1⟩)/√2.
        let state = phase_product_state(&angles);
        // Path 1: apply the IQFT circuit.
        let mut circuit_state = state.clone();
        Circuit::iqft(3).apply(&mut circuit_state);
        // Path 2: multiply by the inverse-DFT matrix.
        let amps = idft_matrix(8).mul_vec(state.amplitudes());
        for (a, b) in circuit_state.amplitudes().iter().zip(amps.iter()) {
            assert!((a.sub(*b)).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }
}
