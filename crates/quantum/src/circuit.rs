//! Gate sequences and the textbook QFT / IQFT circuits.

use crate::dft::{dft_matrix, idft_matrix};
use crate::gates::Gate;
use crate::matrix::CMatrix;
use crate::state::StateVector;
use std::f64::consts::PI;

/// A sequence of gates applied left to right.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `qubits` qubits.
    pub fn new(qubits: usize) -> Self {
        Self {
            qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits the circuit acts on.
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// Gates in application order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        self.gates.push(gate);
        self
    }

    /// Applies the circuit to `state` in place.
    pub fn apply(&self, state: &mut StateVector) {
        assert_eq!(
            state.qubits(),
            self.qubits,
            "state has {} qubits but circuit expects {}",
            state.qubits(),
            self.qubits
        );
        for gate in &self.gates {
            gate.apply(state);
        }
    }

    /// The inverse circuit (gates reversed and individually inverted).
    pub fn inverse(&self) -> Circuit {
        Circuit {
            qubits: self.qubits,
            gates: self.gates.iter().rev().map(|g| g.inverse()).collect(),
        }
    }

    /// The dense unitary matrix this circuit implements (column `x` is the
    /// circuit applied to `|x⟩`).  Exponential in the qubit count; intended
    /// for verification on small registers.
    pub fn to_matrix(&self) -> CMatrix {
        let dim = 1usize << self.qubits;
        let mut m = CMatrix::zeros(dim, dim);
        for x in 0..dim {
            let mut state = StateVector::basis_state(self.qubits, x);
            self.apply(&mut state);
            for (k, amp) in state.amplitudes().iter().enumerate() {
                m.set(k, x, *amp);
            }
        }
        m
    }

    /// The textbook QFT circuit on `n` qubits (Nielsen & Chuang Fig. 5.1):
    /// for each qubit (most significant first) a Hadamard followed by
    /// controlled phase rotations from the less significant qubits, then a
    /// final swap network that reverses qubit order.
    pub fn qft(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for j in 0..n {
            c.push(Gate::H(j));
            for m in (j + 1)..n {
                // R_k with k = m - j + 1: phase 2π / 2^k.
                let theta = 2.0 * PI / (1u64 << (m - j + 1)) as f64;
                c.push(Gate::CPhase(m, j, theta));
            }
        }
        for j in 0..n / 2 {
            c.push(Gate::Swap(j, n - 1 - j));
        }
        c
    }

    /// The inverse QFT circuit on `n` qubits.
    pub fn iqft(n: usize) -> Circuit {
        Self::qft(n).inverse()
    }
}

/// Verifies (numerically) that the QFT circuit implements [`dft_matrix`] and
/// the IQFT circuit implements [`idft_matrix`]; returns the larger of the two
/// maximum elementwise deviations.  Used by tests and the quantum cross-check
/// benchmark.
pub fn qft_circuit_deviation(n: usize) -> f64 {
    let qft_dev = Circuit::qft(n)
        .to_matrix()
        .max_abs_diff(&dft_matrix(1 << n));
    let iqft_dev = Circuit::iqft(n)
        .to_matrix()
        .max_abs_diff(&idft_matrix(1 << n));
    qft_dev.max(iqft_dev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    #[test]
    fn empty_circuit_is_identity() {
        let c = Circuit::new(2);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        let mut s = StateVector::basis_state(2, 3);
        c.apply(&mut s);
        assert_eq!(s.most_probable(), 3);
        assert!(c.to_matrix().max_abs_diff(&CMatrix::identity(4)) < 1e-12);
    }

    #[test]
    fn qft_circuit_matches_dft_matrix() {
        for n in 1..=4 {
            let dev = Circuit::qft(n)
                .to_matrix()
                .max_abs_diff(&dft_matrix(1 << n));
            assert!(dev < 1e-10, "n={n}, dev={dev}");
        }
    }

    #[test]
    fn iqft_circuit_matches_idft_matrix() {
        for n in 1..=4 {
            let dev = Circuit::iqft(n)
                .to_matrix()
                .max_abs_diff(&idft_matrix(1 << n));
            assert!(dev < 1e-10, "n={n}, dev={dev}");
        }
    }

    #[test]
    fn qft_then_iqft_is_identity_on_random_state() {
        let amps: Vec<Complex> = (0..8)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()))
            .collect();
        let original = StateVector::from_amplitudes(amps);
        let mut s = original.clone();
        Circuit::qft(3).apply(&mut s);
        Circuit::iqft(3).apply(&mut s);
        assert!((s.fidelity(&original) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn qft_of_zero_state_is_uniform() {
        let mut s = StateVector::zero_state(3);
        Circuit::qft(3).apply(&mut s);
        for p in s.probabilities() {
            assert!((p - 1.0 / 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn deviation_helper_is_small() {
        assert!(qft_circuit_deviation(3) < 1e-10);
        assert!(qft_circuit_deviation(4) < 1e-10);
    }

    #[test]
    fn inverse_of_inverse_is_original() {
        let c = Circuit::qft(3);
        assert_eq!(c.inverse().inverse(), c);
    }

    #[test]
    #[should_panic(expected = "circuit expects")]
    fn qubit_count_mismatch_panics() {
        let c = Circuit::qft(3);
        let mut s = StateVector::zero_state(2);
        c.apply(&mut s);
    }

    #[test]
    fn gate_count_of_qft_is_quadratic_plus_swaps() {
        // n Hadamards + n(n-1)/2 controlled phases + floor(n/2) swaps.
        for n in 1..=5usize {
            let c = Circuit::qft(n);
            let expected = n + n * (n - 1) / 2 + n / 2;
            assert_eq!(c.len(), expected, "n={n}");
        }
    }
}
