//! Dense state-vector simulation.

use crate::complex::Complex;

/// A pure quantum state of `n` qubits stored as `2^n` complex amplitudes.
///
/// Qubit 0 is the **most significant** bit of the basis index, matching the
/// paper's eq. 3 where the first tensor factor carries the coarsest phase.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    qubits: usize,
    amplitudes: Vec<Complex>,
}

impl StateVector {
    /// Creates the all-zeros computational basis state `|0…0⟩`.
    pub fn zero_state(qubits: usize) -> Self {
        assert!(
            qubits > 0 && qubits <= 24,
            "qubit count out of range (1..=24)"
        );
        let mut amplitudes = vec![Complex::ZERO; 1 << qubits];
        amplitudes[0] = Complex::ONE;
        Self { qubits, amplitudes }
    }

    /// Creates the computational basis state `|index⟩`.
    pub fn basis_state(qubits: usize, index: usize) -> Self {
        let mut s = Self::zero_state(qubits);
        assert!(index < s.dim(), "basis index out of range");
        s.amplitudes[0] = Complex::ZERO;
        s.amplitudes[index] = Complex::ONE;
        s
    }

    /// Wraps raw amplitudes; the length must be a power of two and the state
    /// is normalised automatically.
    pub fn from_amplitudes(amplitudes: Vec<Complex>) -> Self {
        let dim = amplitudes.len();
        assert!(
            dim >= 2 && dim.is_power_of_two(),
            "dimension must be a power of two >= 2"
        );
        let qubits = dim.trailing_zeros() as usize;
        let mut s = Self { qubits, amplitudes };
        s.normalize();
        s
    }

    /// Number of qubits.
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// Hilbert-space dimension (`2^n`).
    pub fn dim(&self) -> usize {
        self.amplitudes.len()
    }

    /// The amplitude vector.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// Mutable access to the amplitude vector (used by gate application).
    pub(crate) fn amplitudes_mut(&mut self) -> &mut [Complex] {
        &mut self.amplitudes
    }

    /// Squared norm of the state (should be 1 for a physical state).
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescales the amplitudes so the state has unit norm.
    pub fn normalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        assert!(norm > 0.0, "cannot normalise the zero vector");
        let inv = 1.0 / norm;
        for a in &mut self.amplitudes {
            *a = a.scale(inv);
        }
    }

    /// Measurement probability of computational basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amplitudes[index].norm_sqr()
    }

    /// Full measurement distribution over the computational basis.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Index of the most probable basis state (ties broken towards the lower
    /// index, matching the arg-max rule of the paper's Algorithm 1).
    pub fn most_probable(&self) -> usize {
        let mut best = 0usize;
        let mut best_p = f64::MIN;
        for (i, p) in self.probabilities().into_iter().enumerate() {
            if p > best_p {
                best_p = p;
                best = i;
            }
        }
        best
    }

    /// Tensor product `self ⊗ other` (self's qubits become the most
    /// significant ones of the combined register).
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let mut amplitudes = Vec::with_capacity(self.dim() * other.dim());
        for a in &self.amplitudes {
            for b in &other.amplitudes {
                amplitudes.push(*a * *b);
            }
        }
        StateVector {
            qubits: self.qubits + other.qubits,
            amplitudes,
        }
    }

    /// Fidelity `|⟨self|other⟩|²` with another state of the same dimension.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "states must share dimension");
        let mut inner = Complex::ZERO;
        for (a, b) in self.amplitudes.iter().zip(other.amplitudes.iter()) {
            inner += a.conj() * *b;
        }
        inner.norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_has_unit_probability_at_zero() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.qubits(), 3);
        assert_eq!(s.dim(), 8);
        assert_eq!(s.probability(0), 1.0);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(s.most_probable(), 0);
    }

    #[test]
    fn basis_state_places_amplitude_correctly() {
        let s = StateVector::basis_state(3, 5);
        assert_eq!(s.probability(5), 1.0);
        assert_eq!(s.probability(0), 0.0);
        assert_eq!(s.most_probable(), 5);
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = StateVector::from_amplitudes(vec![Complex::real(3.0), Complex::real(4.0)]);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert!((s.probability(0) - 0.36).abs() < 1e-12);
        assert!((s.probability(1) - 0.64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = StateVector::from_amplitudes(vec![Complex::ONE; 3]);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn zero_vector_cannot_be_normalized() {
        let _ = StateVector::from_amplitudes(vec![Complex::ZERO; 4]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let s = StateVector::from_amplitudes(vec![
            Complex::new(0.3, 0.1),
            Complex::new(-0.2, 0.5),
            Complex::new(0.0, -0.4),
            Complex::new(0.6, 0.0),
        ]);
        let sum: f64 = s.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tensor_product_of_basis_states() {
        let a = StateVector::basis_state(1, 1); // |1⟩
        let b = StateVector::basis_state(2, 2); // |10⟩
        let t = a.tensor(&b); // |110⟩ = index 6
        assert_eq!(t.qubits(), 3);
        assert_eq!(t.most_probable(), 6);
        assert_eq!(t.probability(6), 1.0);
    }

    #[test]
    fn fidelity_of_identical_and_orthogonal_states() {
        let a = StateVector::basis_state(2, 1);
        let b = StateVector::basis_state(2, 2);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
        assert!(a.fidelity(&b).abs() < 1e-12);
    }

    #[test]
    fn most_probable_prefers_lowest_index_on_ties() {
        let amp = 0.5;
        let s = StateVector::from_amplitudes(vec![Complex::real(amp); 4]);
        assert_eq!(s.most_probable(), 0);
    }
}
