//! Discrete Fourier transform unitaries.
//!
//! `dft_matrix(N)` is the matrix representation of the QFT on `log2 N` qubits
//! (the paper's eq. 1): entry `(k, x) = ω^{kx}/√N` with `ω = e^{2πi/N}`.
//! `idft_matrix(N)` is its inverse / conjugate transpose — for `N = 8`, this is
//! exactly the `W` matrix of the paper's eq. 11 (up to the 1/√8 normalisation
//! the paper folds into the input state).

use crate::complex::Complex;
use crate::matrix::CMatrix;

/// The `N × N` QFT unitary: `F[k][x] = ω^{kx} / √N`, `ω = e^{2πi/N}`.
pub fn dft_matrix(n: usize) -> CMatrix {
    assert!(n > 0, "DFT size must be positive");
    let norm = 1.0 / (n as f64).sqrt();
    CMatrix::from_fn(n, n, |k, x| {
        let angle = 2.0 * std::f64::consts::PI * (k as f64) * (x as f64) / n as f64;
        Complex::from_polar(norm, angle)
    })
}

/// The `N × N` inverse-QFT unitary: `W[k][x] = ω^{-kx} / √N`.
pub fn idft_matrix(n: usize) -> CMatrix {
    assert!(n > 0, "DFT size must be positive");
    let norm = 1.0 / (n as f64).sqrt();
    CMatrix::from_fn(n, n, |k, x| {
        let angle = -2.0 * std::f64::consts::PI * (k as f64) * (x as f64) / n as f64;
        Complex::from_polar(norm, angle)
    })
}

/// The unnormalised 8×8 inverse-DFT matrix of the paper's eq. 11 (entries
/// `ω^{-kx}` without the 1/√8 factor).  Provided for exact correspondence with
/// the paper's notation; the segmentation crate divides the matrix–vector
/// product by 8 as written in Algorithm 1, line 4.
pub fn paper_w_matrix() -> CMatrix {
    let n = 8;
    CMatrix::from_fn(n, n, |k, x| {
        let angle = -2.0 * std::f64::consts::PI * (k as f64) * (x as f64) / n as f64;
        Complex::from_phase(angle)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CMatrix;

    #[test]
    fn dft_and_idft_are_unitary() {
        for n in [2usize, 4, 8, 16] {
            assert!(dft_matrix(n).is_unitary(1e-10), "n={n}");
            assert!(idft_matrix(n).is_unitary(1e-10), "n={n}");
        }
    }

    #[test]
    fn idft_is_inverse_of_dft() {
        for n in [2usize, 4, 8] {
            let product = idft_matrix(n).mul_mat(&dft_matrix(n));
            assert!(product.max_abs_diff(&CMatrix::identity(n)) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn idft_is_dagger_of_dft() {
        let f = dft_matrix(8);
        let w = idft_matrix(8);
        assert!(f.dagger().max_abs_diff(&w) < 1e-12);
    }

    #[test]
    fn first_row_and_column_are_constant() {
        let w = idft_matrix(8);
        let expected = Complex::real(1.0 / 8.0_f64.sqrt());
        for i in 0..8 {
            assert!(w.get(0, i).approx_eq(expected, 1e-12));
            assert!(w.get(i, 0).approx_eq(expected, 1e-12));
        }
    }

    #[test]
    fn paper_w_matrix_matches_scaled_idft() {
        let w = paper_w_matrix();
        let idft = idft_matrix(8);
        for r in 0..8 {
            for c in 0..8 {
                assert!(w
                    .get(r, c)
                    .scale(1.0 / 8.0_f64.sqrt())
                    .approx_eq(idft.get(r, c), 1e-12));
            }
        }
    }

    #[test]
    fn eq4_example_qft_of_basis_state_100() {
        // Paper eq. 4: QFT|100⟩ = 1/√8 (|000⟩ - |001⟩ + |010⟩ - ... ).
        // |100⟩ is basis index 4; the QFT output amplitude at index k is
        // ω^{4k}/√8 = e^{iπk}/√8 = (±1)/√8 alternating.
        let f = dft_matrix(8);
        let norm = 1.0 / 8.0_f64.sqrt();
        for k in 0..8 {
            let expected = if k % 2 == 0 { norm } else { -norm };
            assert!(
                f.get(k, 4).approx_eq(Complex::real(expected), 1e-12),
                "k={k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_is_rejected() {
        let _ = dft_matrix(0);
    }
}
