//! Complex number arithmetic.
//!
//! A small, dependency-free complex type.  Only the operations the simulator
//! and the segmentation algorithm need are implemented; everything is `f64`.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    pub fn from_phase(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Creates `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Subtraction helper usable in const-free contexts (mirrors `-`).
    #[allow(clippy::should_implement_trait)] // deliberate mirror of the operator
    pub fn sub(self, other: Self) -> Self {
        self - other
    }

    /// True if both parts are within `eps` of `other`'s.
    pub fn approx_eq(self, other: Self, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn constants_behave() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
        assert_eq!(Complex::from(3.0), Complex::new(3.0, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b, Complex::new(1.0, 1.0));
        assert_eq!(a - b, Complex::new(2.0, -5.0));
        // (1.5 - 2i)(-0.5 + 3i) = -0.75 + 4.5i + 1i + 6 = 5.25 + 5.5i
        let p = a * b;
        assert!((p.re - 5.25).abs() < 1e-12);
        assert!((p.im - 5.5).abs() < 1e-12);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn phase_and_polar() {
        let z = Complex::from_phase(PI / 2.0);
        assert!(z.approx_eq(Complex::I, 1e-12));
        assert!((z.abs() - 1.0).abs() < 1e-12);
        assert!((z.arg() - PI / 2.0).abs() < 1e-12);
        let w = Complex::from_polar(2.0, PI);
        assert!(w.approx_eq(Complex::new(-2.0, 0.0), 1e-12));
    }

    #[test]
    fn conjugate_and_modulus() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
        assert!((z * z.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn scale_and_neg() {
        let z = Complex::new(1.0, -2.0);
        assert_eq!(z.scale(2.0), Complex::new(2.0, -4.0));
        assert_eq!(-z, Complex::new(-1.0, 2.0));
        assert_eq!(z.sub(z), Complex::ZERO);
    }

    #[test]
    fn phase_multiplication_adds_angles() {
        let a = Complex::from_phase(0.7);
        let b = Complex::from_phase(1.1);
        let prod = a * b;
        assert!(prod.approx_eq(Complex::from_phase(1.8), 1e-12));
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Complex::new(1.0, 1.0);
        let b = Complex::new(1.0 + 1e-10, 1.0 - 1e-10);
        assert!(a.approx_eq(b, 1e-9));
        assert!(!a.approx_eq(b, 1e-12));
    }
}
