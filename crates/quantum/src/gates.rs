//! Quantum gates and their application to a state vector.
//!
//! Qubit indices follow the convention of [`crate::state::StateVector`]:
//! qubit 0 is the most significant bit of the basis index.

use crate::complex::Complex;
use crate::state::StateVector;

/// A single gate acting on one or two qubits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard on `qubit`.
    H(usize),
    /// Pauli-X (NOT) on `qubit`.
    X(usize),
    /// Phase gate `diag(1, e^{iθ})` on `qubit`.
    Phase(usize, f64),
    /// Controlled phase: multiplies the amplitude by `e^{iθ}` when both
    /// `control` and `target` are 1.
    CPhase(usize, usize, f64),
    /// Swaps two qubits.
    Swap(usize, usize),
}

impl Gate {
    /// The inverse (adjoint) of this gate.
    pub fn inverse(self) -> Gate {
        match self {
            Gate::H(q) => Gate::H(q),
            Gate::X(q) => Gate::X(q),
            Gate::Phase(q, theta) => Gate::Phase(q, -theta),
            Gate::CPhase(c, t, theta) => Gate::CPhase(c, t, -theta),
            Gate::Swap(a, b) => Gate::Swap(a, b),
        }
    }

    /// Applies this gate to `state` in place.
    pub fn apply(self, state: &mut StateVector) {
        let n = state.qubits();
        match self {
            Gate::H(q) => {
                let mask = bit_mask(n, q);
                let s = 1.0 / 2.0_f64.sqrt();
                let amps = state.amplitudes_mut();
                for i in 0..amps.len() {
                    if i & mask == 0 {
                        let j = i | mask;
                        let a = amps[i];
                        let b = amps[j];
                        amps[i] = (a + b).scale(s);
                        amps[j] = (a - b).scale(s);
                    }
                }
            }
            Gate::X(q) => {
                let mask = bit_mask(n, q);
                let amps = state.amplitudes_mut();
                for i in 0..amps.len() {
                    if i & mask == 0 {
                        amps.swap(i, i | mask);
                    }
                }
            }
            Gate::Phase(q, theta) => {
                let mask = bit_mask(n, q);
                let phase = Complex::from_phase(theta);
                let amps = state.amplitudes_mut();
                for (i, a) in amps.iter_mut().enumerate() {
                    if i & mask != 0 {
                        *a = *a * phase;
                    }
                }
            }
            Gate::CPhase(c, t, theta) => {
                assert_ne!(c, t, "control and target must differ");
                let cm = bit_mask(n, c);
                let tm = bit_mask(n, t);
                let phase = Complex::from_phase(theta);
                let amps = state.amplitudes_mut();
                for (i, a) in amps.iter_mut().enumerate() {
                    if i & cm != 0 && i & tm != 0 {
                        *a = *a * phase;
                    }
                }
            }
            Gate::Swap(qa, qb) => {
                if qa == qb {
                    return;
                }
                let ma = bit_mask(n, qa);
                let mb = bit_mask(n, qb);
                let amps = state.amplitudes_mut();
                for i in 0..amps.len() {
                    // Only visit states where qubit a is 1 and qubit b is 0 to
                    // swap each pair exactly once.
                    if i & ma != 0 && i & mb == 0 {
                        let j = (i & !ma) | mb;
                        amps.swap(i, j);
                    }
                }
            }
        }
    }
}

/// Bit mask selecting qubit `q` (qubit 0 = most significant bit) in an
/// `n`-qubit basis index.
fn bit_mask(n: usize, q: usize) -> usize {
    assert!(q < n, "qubit index {q} out of range for {n} qubits");
    1 << (n - 1 - q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = StateVector::zero_state(1);
        Gate::H(0).apply(&mut s);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(1) - 0.5).abs() < 1e-12);
        // H is self-inverse.
        Gate::H(0).apply(&mut s);
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips_the_targeted_qubit() {
        let mut s = StateVector::zero_state(3);
        Gate::X(0).apply(&mut s); // MSB -> |100⟩ = 4
        assert_eq!(s.most_probable(), 4);
        Gate::X(2).apply(&mut s); // LSB -> |101⟩ = 5
        assert_eq!(s.most_probable(), 5);
    }

    #[test]
    fn phase_gate_only_affects_one_component() {
        let mut s = StateVector::zero_state(1);
        Gate::H(0).apply(&mut s);
        Gate::Phase(0, PI).apply(&mut s);
        // (|0⟩ - |1⟩)/√2: amplitudes real, opposite signs.
        let a = s.amplitudes();
        assert!(a[0].approx_eq(Complex::real(1.0 / 2.0_f64.sqrt()), 1e-12));
        assert!(a[1].approx_eq(Complex::real(-1.0 / 2.0_f64.sqrt()), 1e-12));
    }

    #[test]
    fn cphase_applies_only_when_both_set() {
        let mut s = StateVector::from_amplitudes(vec![Complex::real(0.5); 4]);
        Gate::CPhase(0, 1, PI).apply(&mut s);
        let a = s.amplitudes();
        assert!(a[0].approx_eq(Complex::real(0.5), 1e-12));
        assert!(a[1].approx_eq(Complex::real(0.5), 1e-12));
        assert!(a[2].approx_eq(Complex::real(0.5), 1e-12));
        assert!(a[3].approx_eq(Complex::real(-0.5), 1e-12));
    }

    #[test]
    fn swap_exchanges_qubits() {
        // |01⟩ (index 1) --swap--> |10⟩ (index 2)
        let mut s = StateVector::basis_state(2, 1);
        Gate::Swap(0, 1).apply(&mut s);
        assert_eq!(s.most_probable(), 2);
        // Swapping a qubit with itself is a no-op.
        Gate::Swap(1, 1).apply(&mut s);
        assert_eq!(s.most_probable(), 2);
    }

    #[test]
    fn gates_preserve_normalization() {
        let mut s = StateVector::from_amplitudes(vec![
            Complex::new(0.1, 0.2),
            Complex::new(0.3, -0.1),
            Complex::new(-0.2, 0.4),
            Complex::new(0.5, 0.1),
            Complex::new(0.0, 0.3),
            Complex::new(0.2, 0.2),
            Complex::new(-0.1, -0.3),
            Complex::new(0.4, 0.0),
        ]);
        for gate in [
            Gate::H(1),
            Gate::X(2),
            Gate::Phase(0, 0.7),
            Gate::CPhase(1, 2, 1.3),
            Gate::Swap(0, 2),
        ] {
            gate.apply(&mut s);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-10, "{gate:?}");
        }
    }

    #[test]
    fn inverse_gates_undo_their_action() {
        let original = StateVector::from_amplitudes(vec![
            Complex::new(0.6, 0.1),
            Complex::new(0.2, -0.3),
            Complex::new(-0.4, 0.2),
            Complex::new(0.1, 0.5),
        ]);
        for gate in [
            Gate::H(0),
            Gate::X(1),
            Gate::Phase(1, 0.9),
            Gate::CPhase(0, 1, 2.1),
            Gate::Swap(0, 1),
        ] {
            let mut s = original.clone();
            gate.apply(&mut s);
            gate.inverse().apply(&mut s);
            assert!((s.fidelity(&original) - 1.0).abs() < 1e-10, "{gate:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut s = StateVector::zero_state(2);
        Gate::H(2).apply(&mut s);
    }
}
