//! Phase encoding of classical vectors into product states.
//!
//! The paper encodes a pixel's three channel intensities as the relative
//! phases of a 3-qubit product state (eq. 7):
//!
//! ```text
//! |ψ⟩ = (|0⟩ + e^{iα}|1⟩)/√2 ⊗ (|0⟩ + e^{iβ}|1⟩)/√2 ⊗ (|0⟩ + e^{iγ}|1⟩)/√2
//! ```
//!
//! Expanding the tensor product gives the 8-component phase vector of eq. 11:
//! component `k` carries the phase `Σ_j θ_j` over the bits `j` set in `k`
//! (with bit 0 = the most significant qubit = `α`).

use crate::complex::Complex;
use crate::state::StateVector;

/// The unnormalised phase vector of the paper's eq. 11: entry `k` is
/// `e^{i Σ θ_j}` over the angles whose qubit bit is set in `k`.
///
/// `angles[0]` is the most significant qubit (the paper's `α`); for the RGB
/// algorithm the call is therefore `phase_vector(&[alpha, beta, gamma])`.
pub fn phase_vector(angles: &[f64]) -> Vec<Complex> {
    let n = angles.len();
    assert!(n > 0 && n <= 24, "angle count out of range (1..=24)");
    let dim = 1usize << n;
    let mut out = Vec::with_capacity(dim);
    for index in 0..dim {
        let mut phase = 0.0;
        for (q, &theta) in angles.iter().enumerate() {
            if index & (1 << (n - 1 - q)) != 0 {
                phase += theta;
            }
        }
        out.push(Complex::from_phase(phase));
    }
    out
}

/// The normalised product state `⊗_j (|0⟩ + e^{iθ_j}|1⟩)/√2`.
pub fn phase_product_state(angles: &[f64]) -> StateVector {
    let dim = 1usize << angles.len();
    let norm = 1.0 / (dim as f64).sqrt();
    let amplitudes = phase_vector(angles)
        .into_iter()
        .map(|c| c.scale(norm))
        .collect();
    StateVector::from_amplitudes(amplitudes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gates::Gate;

    #[test]
    fn single_angle_phase_vector() {
        let v = phase_vector(&[std::f64::consts::PI]);
        assert_eq!(v.len(), 2);
        assert!(v[0].approx_eq(Complex::ONE, 1e-12));
        assert!(v[1].approx_eq(Complex::real(-1.0), 1e-12));
    }

    #[test]
    fn three_angle_phase_vector_matches_eq11_layout() {
        let (alpha, beta, gamma) = (0.3, 0.7, 1.1);
        let v = phase_vector(&[alpha, beta, gamma]);
        assert_eq!(v.len(), 8);
        // Ordering from eq. 11: [1, e^{iγ}, e^{iβ}, e^{i(β+γ)}, e^{iα}, ...]
        assert!(v[0].approx_eq(Complex::ONE, 1e-12));
        assert!(v[1].approx_eq(Complex::from_phase(gamma), 1e-12));
        assert!(v[2].approx_eq(Complex::from_phase(beta), 1e-12));
        assert!(v[3].approx_eq(Complex::from_phase(beta + gamma), 1e-12));
        assert!(v[4].approx_eq(Complex::from_phase(alpha), 1e-12));
        assert!(v[5].approx_eq(Complex::from_phase(alpha + gamma), 1e-12));
        assert!(v[6].approx_eq(Complex::from_phase(alpha + beta), 1e-12));
        assert!(v[7].approx_eq(Complex::from_phase(alpha + beta + gamma), 1e-12));
    }

    #[test]
    fn product_state_is_normalized_and_uniform_in_magnitude() {
        let s = phase_product_state(&[0.4, 2.2, 5.1]);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        for p in s.probabilities() {
            assert!((p - 1.0 / 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn product_state_equals_tensor_of_single_qubit_states() {
        let angles = [1.2, 0.5, 2.8];
        let combined = phase_product_state(&angles);
        let singles: Vec<StateVector> = angles.iter().map(|&a| phase_product_state(&[a])).collect();
        let tensored = singles[0].tensor(&singles[1]).tensor(&singles[2]);
        assert!((combined.fidelity(&tensored) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_state_can_be_prepared_by_h_and_phase_gates() {
        // |ψ⟩ = ∏ Phase(q, θ_q) H(q) |0…0⟩
        let angles = [0.9, 1.7, 0.2];
        let mut circuit = Circuit::new(3);
        for (q, &theta) in angles.iter().enumerate() {
            circuit.push(Gate::H(q));
            circuit.push(Gate::Phase(q, theta));
        }
        let mut prepared = StateVector::zero_state(3);
        circuit.apply(&mut prepared);
        let direct = phase_product_state(&angles);
        assert!((prepared.fidelity(&direct) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zero_angles_give_uniform_real_superposition() {
        let s = phase_product_state(&[0.0, 0.0]);
        for a in s.amplitudes() {
            assert!(a.approx_eq(Complex::real(0.5), 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn empty_angle_list_is_rejected() {
        let _ = phase_vector(&[]);
    }
}
