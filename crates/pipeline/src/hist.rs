//! Lock-free log-bucketed latency histograms (HDR-style, hand-rolled).
//!
//! A [`LatencyHistogram`] records per-operation service latencies into a
//! fixed array of [`AtomicU64`] buckets, so many worker threads (or many
//! connections) can record concurrently with nothing but relaxed atomic
//! adds — no locks, no allocation after construction.  Histograms with the
//! same (fixed) bucket layout merge by bucket-wise addition, which is what
//! lets per-connection or per-worker histograms roll up into one server-wide
//! view without losing information.
//!
//! # Bucket layout
//!
//! The layout is the classic exponent/mantissa split: values below
//! 2^[`SUB_BITS`] nanoseconds get one exact bucket each, and every power-of-
//! two octave above that is divided into 2^[`SUB_BITS`] linear sub-buckets.
//! With `SUB_BITS = 4` that bounds the relative quantisation error of any
//! recorded value by 1/16 (6.25%), which is far below the run-to-run noise
//! of any real latency distribution, while keeping the whole histogram at
//! [`BUCKET_COUNT`] (= 720) buckets — small enough to sit in a server's
//! shared stats block.  The top bucket absorbs overflow (values beyond
//! ~2^48 ns ≈ 3 days), so recording can never index out of bounds.
//!
//! Quantiles are answered by walking the cumulative counts to the target
//! rank and returning that bucket's lower bound; the estimate therefore
//! never exceeds the true value and sits within one bucket (≤ 6.25%
//! relative) below it — the same one-sided guarantee HDR histograms give.
//!
//! # Example
//!
//! ```
//! use iqft_pipeline::LatencyHistogram;
//! use std::time::Duration;
//!
//! let hist = LatencyHistogram::new();
//! for ms in [1u64, 2, 3, 40] {
//!     hist.record(Duration::from_millis(ms));
//! }
//! let summary = hist.summary();
//! assert_eq!(summary.count, 4);
//! assert!(summary.p50_ns >= 1_000_000 && summary.p50_ns <= 2_000_000);
//! assert!(summary.max_ns == 40_000_000);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear buckets, bounding relative error by `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 4;

/// Sub-buckets per octave (`2^SUB_BITS`).
const SUBS: usize = 1 << SUB_BITS;

/// Octaves tracked above the exact range; the top bucket absorbs overflow.
const OCTAVES: usize = 44;

/// Total number of buckets in the fixed layout.
pub const BUCKET_COUNT: usize = SUBS * (OCTAVES + 1);

/// A fixed-layout, lock-free, mergeable latency histogram (see the module
/// docs for the bucket layout).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram (one allocation; recording never
    /// allocates).
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// The bucket index a value in nanoseconds falls into.
    ///
    /// Values below `2^SUB_BITS` map to their own exact bucket; larger
    /// values map to `(octave, sub-bucket)` pairs; values beyond the layout
    /// clamp into the top bucket.
    pub fn bucket_index(nanos: u64) -> usize {
        if nanos < SUBS as u64 {
            return nanos as usize;
        }
        let msb = 63 - u64::from(nanos.leading_zeros());
        let shift = msb - u64::from(SUB_BITS);
        let octave = shift as usize;
        let sub = ((nanos >> shift) & (SUBS as u64 - 1)) as usize;
        ((octave + 1) * SUBS + sub).min(BUCKET_COUNT - 1)
    }

    /// The smallest value (nanoseconds) that maps into bucket `index` — the
    /// inverse of [`LatencyHistogram::bucket_index`] on bucket lower bounds.
    pub fn bucket_floor(index: usize) -> u64 {
        if index < SUBS {
            index as u64
        } else {
            let octave = index / SUBS - 1;
            let sub = index % SUBS;
            ((SUBS + sub) as u64) << octave
        }
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        self.record_nanos(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one latency sample given in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[Self::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The largest sample recorded, exact (not bucket-quantised).
    pub fn max_nanos(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Folds `other`'s counts into `self` bucket-wise.  Both histograms
    /// share the fixed layout, so merging then querying is equivalent to
    /// having recorded every sample into one histogram.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The latency (nanoseconds) at quantile `q` in `0.0..=1.0`: the lower
    /// bound of the bucket holding the sample of rank `ceil(q · count)`.
    /// Returns 0 for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(idx);
            }
        }
        // Counts raced upward between the count() load and the walk; the
        // highest non-empty bucket is still the right answer.
        self.max_nanos()
    }

    /// Snapshots the headline percentiles into a plain value type.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50_ns: self.value_at_quantile(0.50),
            p90_ns: self.value_at_quantile(0.90),
            p99_ns: self.value_at_quantile(0.99),
            p999_ns: self.value_at_quantile(0.999),
            max_ns: self.max_nanos(),
        }
    }
}

/// A point-in-time percentile summary of a [`LatencyHistogram`] — the plain
/// (non-atomic) value that travels in reports and stats snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median service latency, nanoseconds (bucket lower bound).
    pub p50_ns: u64,
    /// 90th-percentile service latency, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile service latency, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile service latency, nanoseconds.
    pub p999_ns: u64,
    /// Largest recorded latency, nanoseconds (exact).
    pub max_ns: u64,
}

impl LatencySummary {
    /// Renders a percentile in milliseconds (for human-readable reports).
    pub fn ms(nanos: u64) -> f64 {
        nanos as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* stream for percentile cross-checks.
    struct XorShift(u64);

    impl XorShift {
        fn new(seed: u64) -> Self {
            Self(seed | 1)
        }

        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn bucket_boundaries_are_exact_and_contiguous() {
        // The exact range: one bucket per value.
        for v in 0..SUBS as u64 {
            assert_eq!(LatencyHistogram::bucket_index(v), v as usize);
            assert_eq!(LatencyHistogram::bucket_floor(v as usize), v);
        }
        // Every bucket's floor maps back to that bucket, and the value just
        // below the next floor still maps to this bucket: boundaries are
        // exact with no gaps and no overlaps.
        for idx in 0..BUCKET_COUNT - 1 {
            let floor = LatencyHistogram::bucket_floor(idx);
            let next = LatencyHistogram::bucket_floor(idx + 1);
            assert!(next > floor, "bucket {idx} floors must increase");
            assert_eq!(LatencyHistogram::bucket_index(floor), idx, "floor of {idx}");
            assert_eq!(
                LatencyHistogram::bucket_index(next - 1),
                idx,
                "last value of bucket {idx}"
            );
            assert_eq!(LatencyHistogram::bucket_index(next), idx + 1);
        }
        // Power-of-two edges land exactly on a fresh sub-bucket.
        assert_eq!(LatencyHistogram::bucket_index(16), SUBS);
        assert_eq!(LatencyHistogram::bucket_index(32), 2 * SUBS);
        // Overflow clamps into the top bucket instead of indexing out.
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn relative_quantisation_error_is_bounded() {
        let mut rng = XorShift::new(9);
        for _ in 0..10_000 {
            // Any magnitude inside the tracked range (beyond it, the top
            // bucket clamps and the error bound intentionally no longer
            // holds).
            let v = (rng.next() >> 17) >> (rng.next() % 40);
            let floor = LatencyHistogram::bucket_floor(LatencyHistogram::bucket_index(v));
            assert!(floor <= v, "floor never exceeds the sample");
            let err = (v - floor) as f64 / (v.max(1)) as f64;
            assert!(err <= 1.0 / SUBS as f64 + 1e-12, "value {v}: error {err}");
        }
    }

    #[test]
    fn percentiles_match_a_brute_force_sorted_reference() {
        for seed in [3u64, 17, 991] {
            let mut rng = XorShift::new(seed);
            let hist = LatencyHistogram::new();
            // A heavy-tailed latency-like distribution spanning ~6 decades.
            let samples: Vec<u64> = (0..5_000)
                .map(|_| 1_000 + (rng.next() % 1_000_000_000) / (1 + rng.next() % 997))
                .collect();
            for &s in &samples {
                hist.record_nanos(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let truth = sorted[rank - 1];
                let got = hist.value_at_quantile(q);
                // The histogram answers with the truth's own bucket.
                assert_eq!(
                    LatencyHistogram::bucket_index(got),
                    LatencyHistogram::bucket_index(truth),
                    "seed {seed} q {q}: got {got}, truth {truth}"
                );
                assert!(got <= truth, "one-sided: got {got} > truth {truth}");
            }
            assert_eq!(hist.max_nanos(), *sorted.last().unwrap(), "max is exact");
            assert_eq!(hist.count(), 5_000);
        }
    }

    #[test]
    fn merge_is_equivalent_to_recording_into_one_histogram() {
        let mut rng = XorShift::new(41);
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let combined = LatencyHistogram::new();
        for i in 0..4_000 {
            let v = rng.next() % 50_000_000;
            if i % 3 == 0 {
                a.record_nanos(v);
            } else {
                b.record_nanos(v);
            }
            combined.record_nanos(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.max_nanos(), combined.max_nanos());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(
                a.value_at_quantile(q),
                combined.value_at_quantile(q),
                "q {q}"
            );
        }
        assert_eq!(a.summary(), combined.summary());
    }

    #[test]
    fn empty_and_degenerate_histograms_answer_zero() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.value_at_quantile(0.5), 0);
        assert_eq!(hist.summary(), LatencySummary::default());
        hist.record_nanos(0);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.value_at_quantile(0.999), 0);
        assert_eq!(hist.max_nanos(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let hist = &hist;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        hist.record_nanos(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(hist.count(), 40_000);
        assert_eq!(hist.max_nanos(), 3 * 1_000_000 + 9_999);
    }

    #[test]
    fn summary_renders_milliseconds() {
        assert!((LatencySummary::ms(1_500_000) - 1.5).abs() < 1e-12);
    }
}
