#![warn(missing_docs)]
//! `iqft-pipeline` — a batched, high-throughput segmentation service.
//!
//! PR 1's `SegmentEngine` made a *single* segmentation fast; this crate makes
//! *many* segmentations fast.  A [`SegmentPipeline`] owns an engine plus a
//! pixel classifier and drives whole image streams through three pieces:
//!
//! * [`queue::JobQueue`] — a bounded MPMC work queue with backpressure and
//!   drain-then-stop shutdown; worker threads pull image jobs from it.
//! * [`arena::LabelArena`] — a recycling pool of label buffers, so the
//!   steady-state hot path performs **zero per-image allocations** (the
//!   report's allocation/reuse counters prove it).
//! * [`stats`] — per-batch throughput/latency accounting built on
//!   [`xpar::Progress`], rolled up into a [`PipelineReport`].
//! * [`cache::SegmentCache`] — an opt-in sharded, content-addressed,
//!   byte-budgeted LRU cache of finished segmentations
//!   ([`SegmentPipeline::with_cache`]): repeated images are answered with a
//!   memcpy instead of a classification pass, byte-identically.
//!
//! The pipeline parallelises **across images** by default: each worker
//! segments its image with a serial per-pixel pass, so the output of
//! [`run_batch`] is byte-identical to per-image serial segmentation no
//! matter how many workers run (`tests/engine_determinism.rs` at the
//! workspace root enforces this across backends).  When a stream contains
//! images too large for that to balance — one satellite frame would
//! serialise onto a single worker — configure a
//! [`seg_engine::Tiling::Tiles`] decomposition ([`PipelineConfig::tiling`]):
//! every image then splits into zero-copy tile jobs whose scratch buffers
//! recycle through the same [`LabelArena`], and the stitched output remains
//! byte-identical.  For the steady-state fast path, hand the pipeline an
//! [`iqft_seg::PhaseTable`]: classification collapses to three table lookups
//! per pixel.
//!
//! [`run_batch`]: SegmentPipeline::run_batch
//!
//! # Example
//!
//! ```
//! use imaging::{Rgb, RgbImage};
//! use iqft_pipeline::SegmentPipeline;
//! use iqft_seg::PhaseTable;
//! use seg_engine::SegmentEngine;
//!
//! let images: Vec<RgbImage> = (0..6)
//!     .map(|i| RgbImage::from_fn(32, 24, move |x, y| {
//!         Rgb::new((x * 8) as u8, (y * 10) as u8, (i * 40) as u8)
//!     }))
//!     .collect();
//!
//! let pipeline = SegmentPipeline::new(
//!     SegmentEngine::with_threads(2),
//!     PhaseTable::paper_default(),
//! );
//! // Stream the images in batches of 3, recycling buffers between batches.
//! let report = pipeline.run_stream(&images, 3, |_idx, labels| {
//!     assert_eq!(labels.dimensions(), (32, 24));
//!     pipeline.recycle(labels);
//! });
//! assert_eq!(report.images(), 6);
//! assert_eq!(report.batches.len(), 2);
//! // Steady state reuses the warm buffers instead of allocating.
//! assert!(report.arena_reuses > 0);
//! ```

pub mod arena;
pub mod cache;
pub mod hist;
pub mod queue;
pub mod stats;

pub use arena::LabelArena;
pub use cache::{route_hash, CacheConfig, CacheStats, SegmentCache, SnapshotError, SnapshotStats};
pub use hist::{LatencyHistogram, LatencySummary};
pub use queue::JobQueue;
pub use stats::{BatchStats, PipelineReport};

use imaging::view::{LabelViewMut, TileRect};
use imaging::{LabelMap, PixelClassifier, RgbImage};
use seg_engine::{SegmentEngine, Tiling};
use xpar::Progress;

/// Tuning knobs for a [`SegmentPipeline`].
///
/// The default (all zeros, whole-image work units) derives the worker count
/// from the engine and the queue capacity from the worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineConfig {
    /// Worker threads pulling jobs from the queue (0 = the engine's
    /// effective thread count).
    pub workers: usize,
    /// Bounded job-queue capacity (0 = twice the worker count).
    pub queue_capacity: usize,
    /// Work decomposition: [`Tiling::Whole`] enqueues one job per image;
    /// [`Tiling::Tiles`] splits every image into tile jobs, so one oversized
    /// frame no longer serialises onto a single worker.  Tile label buffers
    /// recycle through the same [`LabelArena`] as image buffers, keeping the
    /// steady state allocation-free, and the output stays byte-identical to
    /// whole-image segmentation.
    pub tiling: Tiling,
}

/// Closes the queue if the holding worker unwinds, so the producer cannot
/// block forever on a full queue whose consumers are all dead.
struct CloseOnPanic<'q, T>(&'q JobQueue<T>);

impl<T> Drop for CloseOnPanic<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.close();
        }
    }
}

/// A batched segmentation service: owns a [`SegmentEngine`], a pixel
/// classifier, and a label-buffer arena, and drives image streams through a
/// bounded work queue on a fixed set of worker threads.
///
/// Outputs are byte-identical to per-image serial segmentation for any
/// worker count, because each image is classified independently by a serial
/// per-pixel pass.
#[derive(Debug)]
pub struct SegmentPipeline<C> {
    engine: SegmentEngine,
    classifier: C,
    arena: LabelArena,
    config: PipelineConfig,
    cache: Option<SegmentCache>,
}

impl<C: PixelClassifier + Sync> SegmentPipeline<C> {
    /// Creates a pipeline executing on `engine` with the given per-pixel
    /// `classifier` and default tuning.
    pub fn new(engine: SegmentEngine, classifier: C) -> Self {
        Self {
            engine,
            classifier,
            arena: LabelArena::new(),
            config: PipelineConfig::default(),
            cache: None,
        }
    }

    /// Replaces the tuning knobs.
    pub fn with_config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a content-addressed result cache (see [`cache`]).  `salt`
    /// should identify the segmentation strategy — callers pass the
    /// serialized `SegmentPlan::to_spec()` — so caches built for different
    /// strategies can never alias.  A disabled config
    /// (`capacity_bytes == 0`) leaves the pipeline uncached.
    pub fn with_cache(mut self, config: CacheConfig, salt: &str) -> Self {
        self.cache = config.enabled().then(|| SegmentCache::new(config, salt));
        self
    }

    /// The engine this pipeline was built with.
    pub fn engine(&self) -> SegmentEngine {
        self.engine
    }

    /// The classifier driving per-pixel classification.
    pub fn classifier(&self) -> &C {
        &self.classifier
    }

    /// Effective number of worker threads.
    pub fn workers(&self) -> usize {
        if self.config.workers == 0 {
            self.engine.threads()
        } else {
            self.config.workers
        }
    }

    /// Effective job-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        if self.config.queue_capacity == 0 {
            self.workers() * 2
        } else {
            self.config.queue_capacity
        }
    }

    /// The work decomposition jobs are enqueued with.
    pub fn tiling(&self) -> Tiling {
        self.config.tiling
    }

    /// The label-buffer arena (for inspection; see [`LabelArena`]).
    pub fn arena(&self) -> &LabelArena {
        &self.arena
    }

    /// The attached result cache, if any (see [`SegmentPipeline::with_cache`]).
    pub fn cache(&self) -> Option<&SegmentCache> {
        self.cache.as_ref()
    }

    /// Returns a finished label map's buffer to the arena so a later image
    /// can reuse it without allocating.
    pub fn recycle(&self, labels: LabelMap) {
        self.arena.recycle(labels);
    }

    /// Shared single-image wrapper: takes an arena buffer, lets `fill` write
    /// the labels, and shapes the result to `img`'s dimensions.
    fn segment_with<F>(&self, img: &RgbImage, fill: F) -> LabelMap
    where
        F: FnOnce(&mut Vec<u32>),
    {
        let mut buf = self.arena.take();
        fill(&mut buf);
        let (w, h) = img.dimensions();
        LabelMap::from_vec(w, h, buf).expect("label buffer matches image size")
    }

    /// Segments a single image on the pipeline's engine (per-pixel parallel,
    /// arena-backed).  Recycle the result to keep the hot path allocation-free.
    pub fn segment_one(&self, img: &RgbImage) -> LabelMap {
        self.segment_with(img, |buf| {
            self.engine.segment_rgb_into(&self.classifier, img, buf)
        })
    }

    /// Per-request submit/completion entry point for long-lived services.
    ///
    /// Unlike [`SegmentPipeline::run_batch`], which owns a whole batch and a
    /// join barrier, this segments exactly one image synchronously — the
    /// shape a connection-per-client server (`iqft-serve`) needs: each
    /// connection thread submits its request here and the call completes
    /// when the labels are ready.  And unlike [`SegmentPipeline::segment_one`]
    /// it honours the configured [`PipelineConfig::tiling`], so one oversized
    /// frame still fans out across the engine's backend.  The scratch buffer
    /// comes from the shared [`LabelArena`]; recycle the result and the
    /// steady state stays allocation-free across all callers.
    ///
    /// Byte-identical to a serial whole-image pass for any configuration.
    pub fn segment_request(&self, img: &RgbImage) -> LabelMap {
        self.segment_with(img, |buf| match self.config.tiling {
            Tiling::Whole => self.engine.segment_rgb_into(&self.classifier, img, buf),
            Tiling::Tiles { width, height } => {
                self.engine
                    .segment_tiled_into(&self.classifier, img, width, height, buf)
            }
        })
    }

    /// Cache-aware variant of [`SegmentPipeline::segment_request`]: when a
    /// cache is attached (and `bypass` is false) the request is content-
    /// addressed first, and a hit is answered by copying the cached labels
    /// into an arena buffer — no classification at all.  A miss segments as
    /// usual and stores a copy for the next identical request.
    ///
    /// Returns the labels plus whether they came from the cache.  Hit or
    /// miss, the result is byte-identical to [`segment_request`] by
    /// construction: the cache only ever stores this pipeline's own output.
    ///
    /// [`segment_request`]: SegmentPipeline::segment_request
    pub fn segment_request_cached(&self, img: &RgbImage, bypass: bool) -> (LabelMap, bool) {
        let cache = match (&self.cache, bypass) {
            (Some(cache), false) => cache,
            _ => return (self.segment_request(img), false),
        };
        let key = cache.key_for(img);
        if let Some(labels) = cache.lookup(key, &self.arena) {
            return (labels, true);
        }
        let labels = self.segment_request(img);
        cache.insert(key, &labels, &self.arena);
        (labels, false)
    }

    /// Per-tile delta variant of [`SegmentPipeline::segment_request_cached`]
    /// for video-like streams: instead of content-addressing the whole frame
    /// (where one changed pixel forfeits the entire cached result), the frame
    /// is split into tiles — the plan's own tile shape, or
    /// [`Tiling::DEFAULT_DELTA_TILE`]-square tiles for a whole-image plan —
    /// and each tile is content-addressed independently.  Unchanged tiles are
    /// answered by copying their cached labels straight into the stitch
    /// buffer; only tiles whose hash changed are re-classified (and stored
    /// for the next frame).  Frame cost therefore scales with how much of
    /// the frame changed, not with its area.
    ///
    /// Returns `(labels, tiles_hit, tiles_recomputed)`.  Without an attached
    /// cache every tile counts as recomputed and the call is equivalent to
    /// [`SegmentPipeline::segment_request`].
    ///
    /// The stitched output is byte-identical to fresh whole-image
    /// segmentation by construction: each label depends only on its own
    /// pixel (classification is per-pixel), cached tiles hold exactly the
    /// bytes a fresh classification of identical pixel content produces, and
    /// the 128-bit content hash plus the entry dimension check make a
    /// cross-content collision practically impossible.  This is the same
    /// argument that makes tiled execution byte-identical to whole-image
    /// execution, composed with the cache's "only ever stores the pipeline's
    /// own output" invariant.
    pub fn segment_request_delta(&self, img: &RgbImage) -> (LabelMap, u32, u32) {
        let (tile_w, tile_h) = self.config.tiling.delta_shape();
        let Some(cache) = &self.cache else {
            let total = img.tile_rects(tile_w, tile_h).count() as u32;
            return (self.segment_request(img), 0, total);
        };
        let mut hit_tiles = 0u32;
        let mut recomputed_tiles = 0u32;
        let mut scratch: Option<Vec<u32>> = None;
        let labels = self.segment_with(img, |buf| {
            buf.clear();
            buf.resize(img.len(), 0);
            for rect in img.tile_rects(tile_w, tile_h) {
                let view = img.view(rect).expect("tile rects lie inside their image");
                let key = cache.key_for_tile(&view, tile_w, tile_h);
                let mut dest = LabelViewMut::new(buf, img.width(), rect)
                    .expect("tile rects lie inside the label buffer");
                if cache.lookup_tile_into(key, &mut dest) {
                    hit_tiles += 1;
                    continue;
                }
                recomputed_tiles += 1;
                let tile_buf = scratch.get_or_insert_with(|| self.arena.take());
                tile_buf.clear();
                tile_buf.resize(rect.area(), 0);
                let mut out = LabelViewMut::contiguous(tile_buf, rect.width, rect.height)
                    .expect("tile buffer matches tile area");
                self.classifier.classify_rgb_view_into(&view, &mut out);
                LabelViewMut::new(buf, img.width(), rect)
                    .expect("tile rects lie inside the label buffer")
                    .copy_from_tile(tile_buf);
                cache.insert_tile(key, tile_buf, rect.width, rect.height, &self.arena);
            }
        });
        if let Some(tile_buf) = scratch {
            self.arena.put(tile_buf);
        }
        (labels, hit_tiles, recomputed_tiles)
    }

    /// Streams a video-like sequence of `frames` through the per-tile delta
    /// path ([`SegmentPipeline::segment_request_delta`]), batching
    /// `batch_size` consecutive frames per [`BatchStats`] entry so throughput
    /// is comparable with the other stream runners.  The sink receives
    /// `(index, labels, tiles_hit, tiles_recomputed)` and should recycle the
    /// labels.  The returned report carries per-run cache/arena deltas plus
    /// the delta-tile counters.
    pub fn run_stream_deltas<F>(
        &self,
        frames: &[RgbImage],
        batch_size: usize,
        mut sink: F,
    ) -> PipelineReport
    where
        F: FnMut(usize, LabelMap, u32, u32),
    {
        let batch_size = batch_size.max(1);
        let allocations_before = self.arena.allocations();
        let reuses_before = self.arena.reuses();
        let cache_before = self.cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        let mut report = PipelineReport {
            workers: self.workers(),
            ..PipelineReport::default()
        };
        let latency = LatencyHistogram::new();
        for (batch_idx, chunk) in frames.chunks(batch_size).enumerate() {
            let offset = batch_idx * batch_size;
            let started = std::time::Instant::now();
            for (i, img) in chunk.iter().enumerate() {
                let op_started = std::time::Instant::now();
                let (labels, hit, recomputed) = self.segment_request_delta(img);
                latency.record(op_started.elapsed());
                report.delta_tiles_hit += hit as usize;
                report.delta_tiles_recomputed += recomputed as usize;
                sink(offset + i, labels, hit, recomputed);
            }
            report.batches.push(BatchStats {
                batch: batch_idx,
                images: chunk.len(),
                pixels: chunk.iter().map(|img| img.len()).sum(),
                elapsed_secs: started.elapsed().as_secs_f64(),
            });
        }
        report.latency = latency.summary();
        report.arena_allocations = self.arena.allocations() - allocations_before;
        report.arena_reuses = self.arena.reuses() - reuses_before;
        report.arena_pooled = self.arena.pooled();
        if let Some(cache) = &self.cache {
            let now = cache.stats();
            report.cache_hits = now.hits - cache_before.hits;
            report.cache_misses = now.misses - cache_before.misses;
            report.cache_evictions = now.evictions - cache_before.evictions;
            report.cache_entries = now.entries;
            report.cache_bytes = now.bytes;
        }
        report
    }

    /// Segments one batch of images through the bounded queue on the
    /// pipeline's worker threads.
    ///
    /// Returns the label maps in input order plus the batch's throughput
    /// stats.  The output is byte-identical to calling
    /// `SegmentEngine::serial().segment_rgb(..)` per image.
    pub fn run_batch(&self, images: &[RgbImage]) -> (Vec<LabelMap>, BatchStats) {
        self.run_batch_indexed(0, images, &LatencyHistogram::new())
    }

    fn run_batch_indexed(
        &self,
        batch: usize,
        images: &[RgbImage],
        latency: &LatencyHistogram,
    ) -> (Vec<LabelMap>, BatchStats) {
        if let Tiling::Tiles { width, height } = self.config.tiling {
            return self.run_batch_tiled(batch, images, width, height, latency);
        }
        let progress = Progress::new(images.len());
        let workers = self.workers();
        let queue: JobQueue<usize> = JobQueue::bounded(self.queue_capacity());
        let serial = SegmentEngine::serial();
        let mut results: Vec<Option<LabelMap>> = Vec::new();
        results.resize_with(images.len(), || None);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let queue = queue.clone();
                let progress = &progress;
                let arena = &self.arena;
                let classifier = &self.classifier;
                handles.push(scope.spawn(move || {
                    let _guard = CloseOnPanic(&queue);
                    let mut done: Vec<(usize, LabelMap)> = Vec::new();
                    while let Some(idx) = queue.pop() {
                        let img = &images[idx];
                        let started = std::time::Instant::now();
                        let mut buf = arena.take();
                        serial.segment_rgb_into(classifier, img, &mut buf);
                        let (w, h) = img.dimensions();
                        let map =
                            LabelMap::from_vec(w, h, buf).expect("label buffer matches image");
                        latency.record(started.elapsed());
                        done.push((idx, map));
                        progress.inc(1);
                    }
                    done
                }));
            }
            // Feed jobs with backpressure: push blocks while the queue is at
            // capacity, so at most queue_capacity images are in flight ahead
            // of the workers.  A push can only fail if a dying worker closed
            // the queue; stop producing and let the joins below re-raise the
            // worker's panic.
            for idx in 0..images.len() {
                if queue.push(idx).is_err() {
                    break;
                }
            }
            queue.close();
            for handle in handles {
                match handle.join() {
                    Ok(done) => {
                        for (idx, map) in done {
                            results[idx] = Some(map);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        let stats = BatchStats {
            batch,
            images: images.len(),
            pixels: images.iter().map(|img| img.len()).sum(),
            elapsed_secs: progress.elapsed_secs(),
        };
        debug_assert!(progress.is_complete());
        let labels = results
            .into_iter()
            .map(|slot| slot.expect("every job produced a label map"))
            .collect();
        (labels, stats)
    }

    /// Tiled variant of [`SegmentPipeline::run_batch_indexed`]: every image
    /// is split into `tile_w × tile_h` tile jobs (edge tiles clamped), so a
    /// single oversized frame fans out across all workers instead of
    /// serialising onto one.
    ///
    /// Each tile job takes a scratch buffer from the [`LabelArena`],
    /// classifies its zero-copy [`imaging::ImageView`], and the buffer goes
    /// straight back to the arena after the stitch — tile buffers and
    /// whole-image buffers recycle through the same pool, so the steady
    /// state stays allocation-free.  Stitching happens in deterministic tile
    /// order and each label depends only on its own pixel, so the output is
    /// byte-identical to the whole-image path for any worker count.
    fn run_batch_tiled(
        &self,
        batch: usize,
        images: &[RgbImage],
        tile_w: usize,
        tile_h: usize,
        latency: &LatencyHistogram,
    ) -> (Vec<LabelMap>, BatchStats) {
        // Jobs are materialised in (image, tile) order, so the grouped
        // assembly below can walk them with a single cursor.
        let jobs: Vec<(usize, TileRect)> = images
            .iter()
            .enumerate()
            .flat_map(|(idx, img)| img.tile_rects(tile_w, tile_h).map(move |rect| (idx, rect)))
            .collect();
        let progress = Progress::new(jobs.len());
        let workers = self.workers();
        let queue: JobQueue<usize> = JobQueue::bounded(self.queue_capacity());
        let mut tiles: Vec<Option<Vec<u32>>> = Vec::new();
        tiles.resize_with(jobs.len(), || None);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let queue = queue.clone();
                let progress = &progress;
                let arena = &self.arena;
                let classifier = &self.classifier;
                let jobs = &jobs;
                handles.push(scope.spawn(move || {
                    let _guard = CloseOnPanic(&queue);
                    let mut done: Vec<(usize, Vec<u32>)> = Vec::new();
                    while let Some(job) = queue.pop() {
                        let (img_idx, rect) = jobs[job];
                        let started = std::time::Instant::now();
                        let tile = images[img_idx]
                            .view(rect)
                            .expect("tile rects lie inside their image");
                        let mut buf = arena.take();
                        buf.clear();
                        buf.resize(rect.area(), 0);
                        let mut out = LabelViewMut::contiguous(&mut buf, rect.width, rect.height)
                            .expect("tile buffer matches tile area");
                        classifier.classify_rgb_view_into(&tile, &mut out);
                        latency.record(started.elapsed());
                        done.push((job, buf));
                        progress.inc(1);
                    }
                    done
                }));
            }
            for job in 0..jobs.len() {
                if queue.push(job).is_err() {
                    break;
                }
            }
            queue.close();
            for handle in handles {
                match handle.join() {
                    Ok(done) => {
                        for (job, buf) in done {
                            tiles[job] = Some(buf);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        debug_assert!(progress.is_complete());

        // Stitch tiles into per-image label maps, returning every tile
        // buffer to the arena so the next batch reuses it.
        let mut labels = Vec::with_capacity(images.len());
        let mut cursor = 0usize;
        for (idx, img) in images.iter().enumerate() {
            let mut buf = self.arena.take();
            buf.clear();
            buf.resize(img.len(), 0);
            while cursor < jobs.len() && jobs[cursor].0 == idx {
                let rect = jobs[cursor].1;
                let tile = tiles[cursor]
                    .take()
                    .expect("every tile job produced labels");
                LabelViewMut::new(&mut buf, img.width(), rect)
                    .expect("tile rects lie inside the label buffer")
                    .copy_from_tile(&tile);
                self.arena.put(tile);
                cursor += 1;
            }
            let (w, h) = img.dimensions();
            labels.push(LabelMap::from_vec(w, h, buf).expect("label buffer matches image size"));
        }
        // The clock stops only after the stitch: the tile-copy pass is real
        // per-batch work the whole-image path does not pay, and it must not
        // be excluded from tiled throughput/latency figures.
        let stats = BatchStats {
            batch,
            images: images.len(),
            pixels: images.iter().map(|img| img.len()).sum(),
            elapsed_secs: progress.elapsed_secs(),
        };
        (labels, stats)
    }

    /// Streams `images` through the pipeline in batches of `batch_size`,
    /// handing each finished label map (with its global image index, in
    /// order) to `sink`, and returns the aggregated [`PipelineReport`].
    ///
    /// The sink typically consumes the labels and calls
    /// [`SegmentPipeline::recycle`] so subsequent batches reuse the buffers —
    /// that is what makes the steady state allocation-free.
    ///
    /// Each batch runs on a fresh set of scoped worker threads with a join
    /// barrier at the batch boundary; that barrier is what gives the
    /// per-batch latency figures their meaning (and thread spawns are cheap
    /// next to a batch of pixel work).  The arena counters in the returned
    /// report are deltas for *this* run, so repeated `run_stream` calls on
    /// one pipeline each report their own allocation behaviour.
    pub fn run_stream<F>(
        &self,
        images: &[RgbImage],
        batch_size: usize,
        mut sink: F,
    ) -> PipelineReport
    where
        F: FnMut(usize, LabelMap),
    {
        let batch_size = batch_size.max(1);
        let allocations_before = self.arena.allocations();
        let reuses_before = self.arena.reuses();
        let mut report = PipelineReport {
            workers: self.workers(),
            ..PipelineReport::default()
        };
        let latency = LatencyHistogram::new();
        for (batch_idx, chunk) in images.chunks(batch_size).enumerate() {
            let offset = batch_idx * batch_size;
            let (labels, stats) = self.run_batch_indexed(batch_idx, chunk, &latency);
            report.batches.push(stats);
            for (i, map) in labels.into_iter().enumerate() {
                sink(offset + i, map);
            }
        }
        report.latency = latency.summary();
        report.arena_allocations = self.arena.allocations() - allocations_before;
        report.arena_reuses = self.arena.reuses() - reuses_before;
        report.arena_pooled = self.arena.pooled();
        report
    }

    /// Streams `images` through the *per-request* path — the shape a serving
    /// deployment sees: each image goes through
    /// [`SegmentPipeline::segment_request_cached`] (honouring the configured
    /// tiling and the attached cache), so repeated images are answered from
    /// the cache instead of being re-classified.  Parallelism comes from
    /// within each request (the engine's backend plus tiled fan-out), not
    /// from batching across images.
    ///
    /// The sink receives `(index, labels, cache_hit)` and should recycle the
    /// labels like [`SegmentPipeline::run_stream`]'s sink does.  The
    /// returned report carries per-run cache and arena counter deltas;
    /// batches group `batch_size` consecutive requests so throughput is
    /// comparable with the batched path.
    pub fn run_stream_requests<F>(
        &self,
        images: &[RgbImage],
        batch_size: usize,
        mut sink: F,
    ) -> PipelineReport
    where
        F: FnMut(usize, LabelMap, bool),
    {
        let batch_size = batch_size.max(1);
        let allocations_before = self.arena.allocations();
        let reuses_before = self.arena.reuses();
        let cache_before = self.cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        let mut report = PipelineReport {
            workers: self.workers(),
            ..PipelineReport::default()
        };
        let latency = LatencyHistogram::new();
        for (batch_idx, chunk) in images.chunks(batch_size).enumerate() {
            let offset = batch_idx * batch_size;
            let started = std::time::Instant::now();
            for (i, img) in chunk.iter().enumerate() {
                let op_started = std::time::Instant::now();
                let (labels, hit) = self.segment_request_cached(img, false);
                latency.record(op_started.elapsed());
                sink(offset + i, labels, hit);
            }
            report.batches.push(BatchStats {
                batch: batch_idx,
                images: chunk.len(),
                pixels: chunk.iter().map(|img| img.len()).sum(),
                elapsed_secs: started.elapsed().as_secs_f64(),
            });
        }
        report.latency = latency.summary();
        report.arena_allocations = self.arena.allocations() - allocations_before;
        report.arena_reuses = self.arena.reuses() - reuses_before;
        report.arena_pooled = self.arena.pooled();
        if let Some(cache) = &self.cache {
            let now = cache.stats();
            report.cache_hits = now.hits - cache_before.hits;
            report.cache_misses = now.misses - cache_before.misses;
            report.cache_evictions = now.evictions - cache_before.evictions;
            report.cache_entries = now.entries;
            report.cache_bytes = now.bytes;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::Rgb;
    use iqft_seg::{IqftRgbSegmenter, PhaseTable};

    fn test_images(count: usize) -> Vec<RgbImage> {
        (0..count)
            .map(|i| {
                RgbImage::from_fn(23 + i % 5, 17 + i % 3, move |x, y| {
                    Rgb::new((x * 11 + i * 29) as u8, (y * 13) as u8, ((x + y) * 7) as u8)
                })
            })
            .collect()
    }

    #[test]
    fn batch_output_is_byte_identical_to_serial_per_image() {
        let images = test_images(9);
        let exact = IqftRgbSegmenter::paper_default();
        let expected: Vec<LabelMap> = images
            .iter()
            .map(|img| SegmentEngine::serial().segment_rgb(&exact, img))
            .collect();
        for workers in [1usize, 2, 4] {
            let pipeline = SegmentPipeline::new(
                SegmentEngine::with_threads(workers),
                IqftRgbSegmenter::paper_default(),
            )
            .with_config(PipelineConfig {
                workers,
                queue_capacity: 2,
                ..PipelineConfig::default()
            });
            let (labels, stats) = pipeline.run_batch(&images);
            assert_eq!(labels, expected, "workers={workers}");
            assert_eq!(stats.images, 9);
            assert_eq!(stats.pixels, images.iter().map(|i| i.len()).sum::<usize>());
        }
    }

    #[test]
    fn phase_table_fast_path_matches_exact_through_the_pipeline() {
        let images = test_images(6);
        let exact_pipe = SegmentPipeline::new(
            SegmentEngine::with_threads(2),
            IqftRgbSegmenter::paper_default(),
        );
        let table_pipe =
            SegmentPipeline::new(SegmentEngine::with_threads(2), PhaseTable::paper_default());
        let (exact_labels, _) = exact_pipe.run_batch(&images);
        let (table_labels, _) = table_pipe.run_batch(&images);
        assert_eq!(exact_labels, table_labels);
    }

    #[test]
    fn stream_recycling_makes_steady_state_allocation_free() {
        let images: Vec<RgbImage> = (0..12)
            .map(|i| {
                RgbImage::from_fn(32, 32, move |x, y| {
                    Rgb::new((x * 8) as u8, (y * 8) as u8, (i * 20) as u8)
                })
            })
            .collect();
        let pipeline =
            SegmentPipeline::new(SegmentEngine::with_threads(2), PhaseTable::paper_default())
                .with_config(PipelineConfig {
                    workers: 2,
                    queue_capacity: 2,
                    ..PipelineConfig::default()
                });
        let mut seen = Vec::new();
        let report = pipeline.run_stream(&images, 4, |idx, labels| {
            seen.push(idx);
            pipeline.recycle(labels);
        });
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
        assert_eq!(report.images(), 12);
        assert_eq!(report.batches.len(), 3);
        assert_eq!(report.workers, 2);
        // Per-op service latency was recorded for every image.
        assert_eq!(report.latency.count, 12, "{report:?}");
        assert!(report.latency.p50_ns <= report.latency.p99_ns);
        assert!(report.latency.p999_ns <= report.latency.max_ns);
        // Every take after the warm-up buffers exist is served from the pool:
        // allocations are bounded by the in-flight image count, not by the
        // stream length.
        assert!(report.arena_allocations <= 8, "{report:?}");
        assert_eq!(
            report.arena_allocations + report.arena_reuses,
            12,
            "every image took exactly one buffer"
        );
        assert!(report.arena_reuses >= 4, "{report:?}");
    }

    #[test]
    fn segment_one_matches_engine_and_recycles() {
        let img = &test_images(1)[0];
        let pipeline = SegmentPipeline::new(SegmentEngine::serial(), PhaseTable::paper_default());
        let labels = pipeline.segment_one(img);
        assert_eq!(
            labels,
            SegmentEngine::serial().segment_rgb(pipeline.classifier(), img)
        );
        pipeline.recycle(labels);
        assert_eq!(pipeline.arena().pooled(), 1);
        let again = pipeline.segment_one(img);
        assert_eq!(pipeline.arena().reuses(), 1);
        drop(again);
    }

    #[test]
    fn segment_request_honours_tiling_and_recycles_through_the_arena() {
        let img = &test_images(1)[0];
        let expected = SegmentEngine::serial().segment_rgb(&IqftRgbSegmenter::paper_default(), img);
        for tiling in [
            seg_engine::Tiling::Whole,
            seg_engine::Tiling::Tiles {
                width: 8,
                height: 8,
            },
        ] {
            let pipeline =
                SegmentPipeline::new(SegmentEngine::with_threads(2), PhaseTable::paper_default())
                    .with_config(PipelineConfig {
                        tiling,
                        ..PipelineConfig::default()
                    });
            let labels = pipeline.segment_request(img);
            assert_eq!(labels, expected, "{tiling:?}");
            pipeline.recycle(labels);
            let again = pipeline.segment_request(img);
            assert_eq!(again, expected, "{tiling:?} (recycled)");
            assert!(pipeline.arena().reuses() >= 1, "{tiling:?}");
        }
    }

    #[test]
    #[should_panic(expected = "classifier exploded")]
    fn worker_panic_propagates_instead_of_deadlocking_the_producer() {
        // A classifier that dies on the very first pixel, with a single
        // worker and a queue smaller than the image count: without the
        // close-on-panic guard the producer would block forever on a full
        // queue with no consumer left.
        let bomb = |_p: Rgb<u8>| -> u32 { panic!("classifier exploded") };
        let pipeline =
            SegmentPipeline::new(SegmentEngine::serial(), bomb).with_config(PipelineConfig {
                workers: 1,
                queue_capacity: 1,
                ..PipelineConfig::default()
            });
        let images = test_images(8);
        let _ = pipeline.run_batch(&images);
    }

    #[test]
    fn repeated_streams_report_per_run_arena_deltas() {
        let images = test_images(6);
        let pipeline =
            SegmentPipeline::new(SegmentEngine::with_threads(2), PhaseTable::paper_default())
                .with_config(PipelineConfig {
                    workers: 2,
                    queue_capacity: 2,
                    ..PipelineConfig::default()
                });
        let first = pipeline.run_stream(&images, 3, |_, labels| pipeline.recycle(labels));
        let second = pipeline.run_stream(&images, 3, |_, labels| pipeline.recycle(labels));
        assert_eq!(first.arena_allocations + first.arena_reuses, 6);
        // The second run starts with a warm pool: every take is a reuse and
        // the counters do not accumulate across runs.
        assert_eq!(second.arena_allocations, 0, "{second:?}");
        assert_eq!(second.arena_reuses, 6, "{second:?}");
        assert_eq!(second.arena_pooled, pipeline.arena().pooled());
    }

    #[test]
    fn tiled_batches_are_byte_identical_to_whole_image_batches() {
        let images = test_images(7);
        let reference: Vec<LabelMap> = images
            .iter()
            .map(|img| SegmentEngine::serial().segment_rgb(&IqftRgbSegmenter::paper_default(), img))
            .collect();
        for workers in [1usize, 2, 4] {
            for (tw, th) in [(1usize, 1usize), (7, 3), (64, 64)] {
                let pipeline = SegmentPipeline::new(
                    SegmentEngine::with_threads(workers),
                    PhaseTable::paper_default(),
                )
                .with_config(PipelineConfig {
                    workers,
                    queue_capacity: 2,
                    tiling: seg_engine::Tiling::Tiles {
                        width: tw,
                        height: th,
                    },
                });
                assert_eq!(
                    pipeline.tiling(),
                    seg_engine::Tiling::Tiles {
                        width: tw,
                        height: th
                    }
                );
                let (labels, stats) = pipeline.run_batch(&images);
                assert_eq!(labels, reference, "workers={workers} tile={tw}x{th}");
                assert_eq!(stats.images, 7);
                assert_eq!(stats.pixels, images.iter().map(|i| i.len()).sum::<usize>());
            }
        }
    }

    #[test]
    fn tiled_streams_recycle_tile_buffers_through_the_arena() {
        let images: Vec<RgbImage> = (0..8)
            .map(|i| {
                RgbImage::from_fn(48, 32, move |x, y| {
                    Rgb::new((x * 5) as u8, (y * 7) as u8, (i * 31) as u8)
                })
            })
            .collect();
        let pipeline =
            SegmentPipeline::new(SegmentEngine::with_threads(2), PhaseTable::paper_default())
                .with_config(PipelineConfig {
                    workers: 2,
                    queue_capacity: 2,
                    tiling: seg_engine::Tiling::Tiles {
                        width: 16,
                        height: 16,
                    },
                });
        let first = pipeline.run_stream(&images, 4, |_, labels| pipeline.recycle(labels));
        assert_eq!(first.images(), 8);
        // Warm pool: the second stream takes every tile and image buffer from
        // the arena without a single fresh allocation.
        let second = pipeline.run_stream(&images, 4, |_, labels| pipeline.recycle(labels));
        assert_eq!(second.arena_allocations, 0, "{second:?}");
        assert!(second.arena_reuses > 0, "{second:?}");
    }

    #[test]
    fn cached_requests_are_byte_identical_to_fresh_segmentation() {
        let images = test_images(4);
        let expected: Vec<LabelMap> = images
            .iter()
            .map(|img| SegmentEngine::serial().segment_rgb(&IqftRgbSegmenter::paper_default(), img))
            .collect();
        let pipeline = SegmentPipeline::new(SegmentEngine::serial(), PhaseTable::paper_default())
            .with_cache(
                CacheConfig::with_capacity_mb(4),
                "classifier=table;tile=off;backend=serial",
            );
        // First pass: all misses, results stored.
        for (img, expected) in images.iter().zip(&expected) {
            let (labels, hit) = pipeline.segment_request_cached(img, false);
            assert!(!hit);
            assert_eq!(&labels, expected);
            pipeline.recycle(labels);
        }
        // Second pass: all hits, byte-identical to the fresh pass.
        for (img, expected) in images.iter().zip(&expected) {
            let (labels, hit) = pipeline.segment_request_cached(img, false);
            assert!(hit);
            assert_eq!(&labels, expected);
            pipeline.recycle(labels);
        }
        // Bypass skips the cache but still answers identically.
        let (labels, hit) = pipeline.segment_request_cached(&images[0], true);
        assert!(!hit);
        assert_eq!(labels, expected[0]);
        let stats = pipeline.cache().expect("cache attached").stats();
        assert_eq!((stats.hits, stats.misses), (4, 4), "{stats:?}");
    }

    #[test]
    fn uncached_pipeline_reports_misses_as_fresh_segmentations() {
        let img = &test_images(1)[0];
        let pipeline = SegmentPipeline::new(SegmentEngine::serial(), PhaseTable::paper_default());
        assert!(pipeline.cache().is_none());
        let (labels, hit) = pipeline.segment_request_cached(img, false);
        assert!(!hit);
        assert_eq!(labels, pipeline.segment_request(img));
        // A disabled config is a no-op.
        let pipeline = SegmentPipeline::new(SegmentEngine::serial(), PhaseTable::paper_default())
            .with_cache(CacheConfig::default(), "");
        assert!(pipeline.cache().is_none());
    }

    #[test]
    fn request_streams_report_cache_and_arena_deltas() {
        let unique = test_images(3);
        // A repeated-traffic stream: each unique image appears three times.
        let stream: Vec<RgbImage> = (0..9).map(|i| unique[i % 3].clone()).collect();
        let pipeline = SegmentPipeline::new(SegmentEngine::serial(), PhaseTable::paper_default())
            .with_cache(
                CacheConfig::with_capacity_mb(4),
                "classifier=table;tile=off;backend=serial",
            );
        let mut hits_seen = 0usize;
        let report = pipeline.run_stream_requests(&stream, 3, |_, labels, hit| {
            hits_seen += usize::from(hit);
            pipeline.recycle(labels);
        });
        assert_eq!(report.images(), 9);
        assert_eq!(report.batches.len(), 3);
        assert_eq!(report.latency.count, 9, "one latency sample per request");
        assert_eq!(report.cache_misses, 3, "{report:?}");
        assert_eq!(report.cache_hits, 6, "{report:?}");
        assert_eq!(hits_seen, 6);
        assert_eq!(report.cache_entries, 3);
        assert!(report.cache_bytes > 0);
        // A second run is all hits and reports its own deltas.
        let second = pipeline.run_stream_requests(&stream, 3, |_, labels, _| {
            pipeline.recycle(labels);
        });
        assert_eq!(second.cache_hits, 9, "{second:?}");
        assert_eq!(second.cache_misses, 0, "{second:?}");
        assert_eq!(second.arena_allocations, 0, "warm arena: {second:?}");
    }

    #[test]
    fn delta_requests_are_byte_identical_and_reuse_unchanged_tiles() {
        let base = RgbImage::from_fn(53, 37, |x, y| {
            Rgb::new((x * 3) as u8, (y * 5) as u8, ((x ^ y) * 7) as u8)
        });
        // Frame 2 differs from frame 1 in a single pixel.
        let mut changed = base.clone();
        changed.set(40, 30, Rgb::new(200, 10, 10));
        let exact = IqftRgbSegmenter::paper_default();
        for tiling in [
            seg_engine::Tiling::Whole,
            seg_engine::Tiling::Tiles {
                width: 16,
                height: 16,
            },
            seg_engine::Tiling::Tiles {
                width: 53,
                height: 37,
            },
        ] {
            let pipeline =
                SegmentPipeline::new(SegmentEngine::serial(), PhaseTable::paper_default())
                    .with_config(PipelineConfig {
                        tiling,
                        ..PipelineConfig::default()
                    })
                    .with_cache(CacheConfig::with_capacity_mb(4), "delta-test");
            let (tw, th) = tiling.delta_shape();
            let total = base.tile_rects(tw, th).count() as u32;
            let (labels, hit, recomputed) = pipeline.segment_request_delta(&base);
            assert_eq!(
                labels,
                SegmentEngine::serial().segment_rgb(&exact, &base),
                "{tiling:?} cold frame"
            );
            assert_eq!((hit, recomputed), (0, total), "{tiling:?} cold frame");
            pipeline.recycle(labels);
            // The identical frame again: every tile hits.
            let (labels, hit, recomputed) = pipeline.segment_request_delta(&base);
            assert_eq!(labels, SegmentEngine::serial().segment_rgb(&exact, &base));
            assert_eq!((hit, recomputed), (total, 0), "{tiling:?} repeat frame");
            pipeline.recycle(labels);
            // One changed pixel: exactly one tile recomputes, the rest stitch
            // from cache, and the output is still byte-identical to fresh.
            let (labels, hit, recomputed) = pipeline.segment_request_delta(&changed);
            assert_eq!(
                labels,
                SegmentEngine::serial().segment_rgb(&exact, &changed),
                "{tiling:?} delta frame"
            );
            assert_eq!((hit, recomputed), (total - 1, 1), "{tiling:?} delta frame");
            pipeline.recycle(labels);
        }
    }

    #[test]
    fn delta_without_a_cache_recomputes_everything_but_stays_correct() {
        let img = &test_images(1)[0];
        let pipeline = SegmentPipeline::new(SegmentEngine::serial(), PhaseTable::paper_default());
        let (labels, hit, recomputed) = pipeline.segment_request_delta(img);
        assert_eq!(labels, pipeline.segment_request(img));
        assert_eq!(hit, 0);
        let (tw, th) = pipeline.tiling().delta_shape();
        assert_eq!(recomputed as usize, img.tile_rects(tw, th).count());
    }

    #[test]
    fn delta_streams_report_tile_counters_and_recycle_buffers() {
        // A 3-frame "video": frame 0, an identical frame, then one changed
        // tile.
        let base = RgbImage::from_fn(64, 48, |x, y| Rgb::new(x as u8, y as u8, 0));
        let mut moved = base.clone();
        moved.set(5, 5, Rgb::new(255, 255, 255));
        let frames = vec![base.clone(), base.clone(), moved];
        let pipeline = SegmentPipeline::new(SegmentEngine::serial(), PhaseTable::paper_default())
            .with_config(PipelineConfig {
                tiling: seg_engine::Tiling::Tiles {
                    width: 16,
                    height: 16,
                },
                ..PipelineConfig::default()
            })
            .with_cache(CacheConfig::with_capacity_mb(4), "delta-stream-test");
        let tiles_per_frame = base.tile_rects(16, 16).count();
        let report = pipeline.run_stream_deltas(&frames, 2, |_, labels, _, _| {
            pipeline.recycle(labels);
        });
        assert_eq!(report.images(), 3);
        assert_eq!(
            report.delta_tiles_hit + report.delta_tiles_recomputed,
            tiles_per_frame * 3
        );
        assert_eq!(
            report.delta_tiles_recomputed,
            tiles_per_frame + 1,
            "first frame recomputes all, third frame exactly one: {report:?}"
        );
        assert!(report.delta_tile_hit_ratio() > 0.5, "{report:?}");
        assert_eq!(
            (report.cache_hits, report.cache_misses),
            (0, 0),
            "tile traffic stays out of the whole-image counters: {report:?}"
        );
        // A second pass over the same frames is all hits and allocation-free.
        let second = pipeline.run_stream_deltas(&frames, 2, |_, labels, _, _| {
            pipeline.recycle(labels);
        });
        assert_eq!(second.delta_tiles_recomputed, 0, "{second:?}");
        assert_eq!(second.arena_allocations, 0, "warm arena: {second:?}");
    }

    #[test]
    fn empty_batch_and_defaults_are_handled() {
        let pipeline =
            SegmentPipeline::new(SegmentEngine::with_threads(3), PhaseTable::paper_default());
        assert_eq!(pipeline.workers(), 3);
        assert_eq!(pipeline.queue_capacity(), 6);
        assert_eq!(pipeline.engine(), SegmentEngine::with_threads(3));
        let (labels, stats) = pipeline.run_batch(&[]);
        assert!(labels.is_empty());
        assert_eq!(stats.images, 0);
        let report = pipeline.run_stream(&[], 4, |_, _| panic!("no images"));
        assert_eq!(report.images(), 0);
    }
}
