//! A sharded, content-addressed cache of finished segmentations.
//!
//! Real segmentation traffic is highly repetitive — the same frames arrive
//! again and again with the same θ-parameters — yet every request used to pay
//! the full classification cost.  [`SegmentCache`] keys a finished label
//! buffer by the *content* of the request (a 128-bit hand-rolled hash over
//! the pixel bytes, the image dimensions, and a caller-provided salt such as
//! `SegmentPlan::to_spec()`), so a repeated image is answered with a memcpy
//! instead of a classification pass.
//!
//! Design points:
//!
//! * **Sharded locking** — the key space is split across N independent
//!   mutex-guarded shards, so concurrent connections rarely contend on the
//!   same lock.
//! * **Byte-budget LRU eviction** — every shard owns an equal slice of the
//!   configured byte budget and evicts its least-recently-used entries when
//!   an insert would overflow it.  An entry larger than a whole shard's
//!   budget is never stored (it would evict everything for one request).
//! * **Arena integration** — cached label buffers are checked out of the
//!   pipeline's existing [`LabelArena`] and evicted buffers go back to it,
//!   so a warm cache keeps the steady state allocation-free end to end.
//! * **Correctness over capacity** — a hit is produced by copying the cached
//!   labels into a fresh arena buffer; the cache never hands out a buffer it
//!   still owns, so eviction can never corrupt a reply already in flight.
//!   Keys are 128 bits (two independent 64-bit hashes) and carry the image
//!   dimensions, which makes an accidental collision between distinct
//!   requests astronomically unlikely and a dimension mix-up impossible.
//!
//! Hit results are byte-identical to a fresh segmentation by construction:
//! the cache only ever stores bytes produced by the pipeline itself, and
//! `tests/service_roundtrip.rs` plus the loadgen's default-on verification
//! enforce the identity end to end.

use crate::arena::LabelArena;
use imaging::{ImageView, LabelMap, LabelViewMut, Rgb, RgbImage};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default shard count when [`CacheConfig::shards`] is 0.
pub const DEFAULT_SHARDS: usize = 8;

/// Approximate per-entry bookkeeping overhead charged against the byte
/// budget (map nodes, LRU stamp, entry header) in addition to the label
/// bytes themselves.
pub const ENTRY_OVERHEAD_BYTES: usize = 96;

/// Tuning for a [`SegmentCache`].  `Default` (and `capacity_bytes == 0`)
/// means *no cache* — callers opt in, typically via the `--cache-mb` CLI
/// knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheConfig {
    /// Total byte budget across all shards (0 = caching disabled).
    pub capacity_bytes: usize,
    /// Number of mutex-sharded LRU shards (0 = [`DEFAULT_SHARDS`]).
    pub shards: usize,
}

impl CacheConfig {
    /// A config with an `mb`-megabyte budget and the default shard count
    /// (the shape the `--cache-mb N` flag builds).
    pub fn with_capacity_mb(mb: usize) -> Self {
        Self {
            capacity_bytes: mb.saturating_mul(1 << 20),
            shards: 0,
        }
    }

    /// Whether this config enables caching at all.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// The effective shard count.
    pub fn effective_shards(&self) -> usize {
        if self.shards == 0 {
            DEFAULT_SHARDS
        } else {
            self.shards
        }
    }
}

/// A 128-bit content address: two independent 64-bit hashes over the same
/// request bytes.  The pair (plus the dimensions stored in the entry) makes
/// accidental collisions between distinct images astronomically unlikely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    lo: u64,
    hi: u64,
}

impl CacheKey {
    /// The shard index this key maps to.
    fn shard(&self, shards: usize) -> usize {
        // The high hash picks the shard and the low hash addresses within
        // it, so shard choice and map lookup use independent bits.
        (self.hi % shards as u64) as usize
    }
}

const PRIME_A: u64 = 0xFF51_AFD7_ED55_8CCD;
const PRIME_B: u64 = 0xC4CE_B9FE_1A85_EC53;
const SEED_LO: u64 = 0x9E37_79B9_7F4A_7C15;
const SEED_HI: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// FNV-1a over a byte string — used to fold the caller's salt (e.g. the
/// plan spec) into the image-hash seeds.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut state = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// One multiply-rotate-multiply mixing step (xxHash-style).
#[inline]
fn mix(state: u64, word: u64) -> u64 {
    (state ^ word.wrapping_mul(PRIME_A))
        .rotate_left(27)
        .wrapping_mul(SEED_LO)
        .wrapping_add(0x2545_F491_4F6C_DD1D)
}

/// Final avalanche so every input bit affects every output bit.
#[inline]
fn finish(mut state: u64) -> u64 {
    state ^= state >> 33;
    state = state.wrapping_mul(PRIME_A);
    state ^= state >> 29;
    state = state.wrapping_mul(PRIME_B);
    state ^ (state >> 32)
}

/// Hashes an image's pixel bytes (plus dimensions) into a [`CacheKey`].
/// Pixels are packed 8 at a time into three 64-bit words, so the hot loop
/// costs a fraction of a mixing step per pixel — cheap next to even the
/// phase-table classifier's three lookups per pixel.
fn hash_image(img: &RgbImage, seed_lo: u64, seed_hi: u64) -> CacheKey {
    let dims = ((img.width() as u64) << 32) | img.height() as u64;
    let mut lo = mix(seed_lo, dims);
    let mut hi = mix(seed_hi, dims);
    let pixels = img.as_slice();
    let chunks = pixels.chunks_exact(8);
    let remainder = chunks.remainder();
    for chunk in chunks {
        let mut bytes = [0u8; 24];
        for (i, px) in chunk.iter().enumerate() {
            bytes[i * 3] = px.r();
            bytes[i * 3 + 1] = px.g();
            bytes[i * 3 + 2] = px.b();
        }
        for word_bytes in bytes.chunks_exact(8) {
            let word = u64::from_le_bytes(word_bytes.try_into().expect("8-byte chunk"));
            lo = mix(lo, word);
            hi = mix(hi, word.rotate_left(32));
        }
    }
    for px in remainder {
        let word = px.r() as u64 | (px.g() as u64) << 8 | (px.b() as u64) << 16;
        lo = mix(lo, word);
        hi = mix(hi, word.rotate_left(32));
    }
    CacheKey {
        lo: finish(lo),
        hi: finish(hi),
    }
}

/// Streaming variant of the packing loop in [`hash_image`]: pixels are
/// pushed one logical row at a time, packed 8-at-a-time into three 64-bit
/// words exactly as the whole-image hasher does, with any short tail mixed
/// pixel-by-pixel at `finish`.  Because it consumes *logical* pixels, the
/// result depends only on the pixel sequence — never on the view's offset
/// into (or the stride of) its parent buffer.
struct PixelHasher {
    lo: u64,
    hi: u64,
    buf: [u8; 24],
    filled: usize,
}

impl PixelHasher {
    fn new(seed_lo: u64, seed_hi: u64) -> Self {
        Self {
            lo: seed_lo,
            hi: seed_hi,
            buf: [0u8; 24],
            filled: 0,
        }
    }

    #[inline]
    fn mix_word(&mut self, word: u64) {
        self.lo = mix(self.lo, word);
        self.hi = mix(self.hi, word.rotate_left(32));
    }

    #[inline]
    fn push(&mut self, px: Rgb<u8>) {
        self.buf[self.filled] = px.r();
        self.buf[self.filled + 1] = px.g();
        self.buf[self.filled + 2] = px.b();
        self.filled += 3;
        if self.filled == 24 {
            for i in 0..3 {
                let word = u64::from_le_bytes(
                    self.buf[i * 8..(i + 1) * 8]
                        .try_into()
                        .expect("8-byte chunk"),
                );
                self.mix_word(word);
            }
            self.filled = 0;
        }
    }

    fn finish(mut self) -> CacheKey {
        let tail = std::mem::take(&mut self.buf);
        for chunk in tail[..self.filled].chunks_exact(3) {
            let word = chunk[0] as u64 | (chunk[1] as u64) << 8 | (chunk[2] as u64) << 16;
            self.mix_word(word);
        }
        CacheKey {
            lo: finish(self.lo),
            hi: finish(self.hi),
        }
    }
}

/// A stable 64-bit content hash of an image for *routing* (consistent-hash
/// placement across a fleet of daemons), using the same packed
/// multiply-rotate discipline as the cache keys but with the fixed, unsalted
/// seeds — every client computes the same route for the same pixels no
/// matter what plan its servers run.
pub fn route_hash(img: &RgbImage) -> u64 {
    hash_image(img, SEED_LO, SEED_HI).lo
}

/// Snapshot file magic: the first four bytes of a persisted cache.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"IQCS";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Fixed snapshot header size: magic, version, reserved, salt fingerprint,
/// entry count.
pub const SNAPSHOT_HEADER_LEN: usize = 24;
/// Hard upper bound on one snapshot entry record (matches the wire
/// protocol's 64 MiB frame bound): a record declaring more is rejected
/// before any allocation.
pub const SNAPSHOT_MAX_RECORD_BYTES: usize = 64 << 20;

/// Figures from a snapshot save or warm load: how many entries and how many
/// label bytes crossed the file boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotStats {
    /// Entries written (save) or resident after the load.
    pub entries: usize,
    /// Label payload bytes written or loaded (4 bytes per pixel label).
    pub label_bytes: usize,
}

/// Everything that can make a snapshot unusable.  Every variant means the
/// same thing operationally: start cold.  Loading never panics and never
/// installs a partially-validated snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The bytes do not form a valid snapshot (bad magic, truncation,
    /// inconsistent lengths, or a checksum mismatch).
    Corrupt(String),
    /// The snapshot declares an unsupported format version.
    BadVersion(u16),
    /// The snapshot was written under a different salt (plan spec), so its
    /// keys would never match this cache's lookups — loading it would be
    /// dead weight at best and a label-aliasing hazard at worst.
    SaltMismatch {
        /// The fingerprint this cache's salt produces.
        expected: u64,
        /// The fingerprint recorded in the snapshot.
        found: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot i/o error: {err}"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot is corrupt: {why}"),
            SnapshotError::BadVersion(v) => {
                write!(
                    f,
                    "snapshot format version {v} is not supported (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::SaltMismatch { expected, found } => write!(
                f,
                "snapshot salt fingerprint {found:#018x} does not match this \
                 cache's {expected:#018x} (different plan spec)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(err: io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// Incremental FNV-1a over the snapshot byte stream — the trailer checksum.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// One cached segmentation.
#[derive(Debug)]
struct Entry {
    labels: Vec<u32>,
    width: usize,
    height: usize,
    /// LRU stamp; also the entry's key in the shard's recency index.
    stamp: u64,
}

impl Entry {
    fn charged_bytes(&self) -> usize {
        self.labels.len() * 4 + ENTRY_OVERHEAD_BYTES
    }
}

/// Counters and live figures for one shard (or, summed, the whole cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that found nothing (the caller then segments and inserts).
    pub misses: usize,
    /// Entries stored.
    pub insertions: usize,
    /// Entries evicted to make room under the byte budget.
    pub evictions: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the budget (labels + overhead).
    pub bytes: usize,
    /// The configured total byte budget.
    pub capacity_bytes: usize,
    /// Delta-path tiles answered from the cache (whole-cache figure; not
    /// counted into [`CacheStats::hits`], which tracks whole-image lookups).
    pub tile_hits: usize,
    /// Delta-path tiles that missed and were re-classified.
    pub tile_recomputed: usize,
}

impl CacheStats {
    fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.entries += other.entries;
        self.bytes += other.bytes;
        self.tile_hits += other.tile_hits;
        self.tile_recomputed += other.tile_recomputed;
    }
}

/// One mutex-guarded slice of the key space: a content-addressed map plus a
/// recency index ordered by LRU stamp.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<CacheKey, Entry>,
    /// stamp → key, ordered oldest-first; eviction pops the first entry.
    recency: BTreeMap<u64, CacheKey>,
    bytes: usize,
    next_stamp: u64,
    hits: usize,
    misses: usize,
    insertions: usize,
    evictions: usize,
}

impl Shard {
    fn touch(&mut self, key: CacheKey) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            self.recency.remove(&entry.stamp);
            entry.stamp = stamp;
            self.recency.insert(stamp, key);
        }
    }

    /// Evicts least-recently-used entries until `needed` more bytes fit
    /// under `budget`, returning the freed buffers to `arena`.
    fn evict_for(&mut self, needed: usize, budget: usize, arena: &LabelArena) {
        while self.bytes + needed > budget {
            let Some((&stamp, &key)) = self.recency.iter().next() else {
                break;
            };
            self.recency.remove(&stamp);
            let entry = self
                .entries
                .remove(&key)
                .expect("recency index entries always exist in the map");
            self.bytes -= entry.charged_bytes();
            self.evictions += 1;
            arena.put(entry.labels);
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            entries: self.entries.len(),
            bytes: self.bytes,
            ..CacheStats::default()
        }
    }
}

/// A sharded, content-addressed, byte-budgeted LRU cache of segmentations.
///
/// See the [module docs](self) for the design; build one through
/// [`CacheConfig`] (usually via `SegmentPipeline::with_cache`).
#[derive(Debug)]
pub struct SegmentCache {
    shards: Vec<Mutex<Shard>>,
    /// Each shard owns an equal slice of the total budget.
    shard_budget: usize,
    capacity_bytes: usize,
    seed_lo: u64,
    seed_hi: u64,
    /// Delta-path tiles served from cache.  Kept outside the shard counters
    /// (and outside `hits`/`misses`) so tile traffic and whole-image traffic
    /// stay separately attributable in every report.
    tile_hits: AtomicU64,
    /// Delta-path tiles that missed and were re-classified.
    tile_recomputed: AtomicU64,
}

impl SegmentCache {
    /// Builds a cache for `config`, salting the content hash with `salt`
    /// (callers pass the serialized segmentation strategy, e.g.
    /// `SegmentPlan::to_spec()`, so caches built for different strategies
    /// can never alias even if their buffers were somehow shared).
    ///
    /// `config.capacity_bytes` must be non-zero; gate on
    /// [`CacheConfig::enabled`] first.
    pub fn new(config: CacheConfig, salt: &str) -> Self {
        assert!(config.enabled(), "SegmentCache requires a non-zero budget");
        let shards = config.effective_shards();
        let salt_hash = fnv1a_64(salt.as_bytes());
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: (config.capacity_bytes / shards).max(1),
            capacity_bytes: config.capacity_bytes,
            seed_lo: SEED_LO ^ salt_hash,
            seed_hi: SEED_HI ^ salt_hash.rotate_left(32),
            tile_hits: AtomicU64::new(0),
            tile_recomputed: AtomicU64::new(0),
        }
    }

    /// The content address of `img` under this cache's salt.
    pub fn key_for(&self, img: &RgbImage) -> CacheKey {
        hash_image(img, self.seed_lo, self.seed_hi)
    }

    /// The content address of one tile of an image under this cache's salt,
    /// for the per-tile delta path.
    ///
    /// `tile_w`/`tile_h` are the plan's *configured* tile geometry (edge
    /// tiles are smaller than this); the geometry is mixed into the seeds
    /// before any pixel, so tile keys from different tilings — and tile keys
    /// vs whole-image keys — can never alias even on identical pixel bytes.
    /// The view's own (clamped) dimensions are hashed next, then the pixels
    /// row by row, so the key depends only on the logical pixel sequence:
    /// the same tile content hashes identically wherever the view sits in
    /// its parent buffer and whatever that parent's stride is.  The tile's
    /// *position* is deliberately not part of the key — classification is
    /// per-pixel, so identical content segments identically anywhere in the
    /// frame, and content-only keys let a panning scene reuse tiles across
    /// positions.
    pub fn key_for_tile(
        &self,
        view: &ImageView<'_, Rgb<u8>>,
        tile_w: usize,
        tile_h: usize,
    ) -> CacheKey {
        let geometry = ((tile_w as u64) << 32) | tile_h as u64;
        let mut hasher = PixelHasher::new(mix(self.seed_lo, geometry), mix(self.seed_hi, geometry));
        let (width, height) = view.dimensions();
        hasher.mix_word(((width as u64) << 32) | height as u64);
        for row in view.rows() {
            for px in row {
                hasher.push(*px);
            }
        }
        hasher.finish()
    }

    /// Looks a tile key up and, on a hit, copies the cached labels straight
    /// into `dest` (a tile-shaped window over the caller's stitch buffer).
    /// Returns whether the copy happened.  An entry whose dimensions do not
    /// match `dest` is treated as a miss — the 128-bit key makes that
    /// practically impossible, but a dimension check costs nothing and keeps
    /// a collision from ever mis-stitching a frame.
    ///
    /// Counts into the cache-wide `tile_hits`/`tile_recomputed` figures, not
    /// the shard `hits`/`misses` (those track whole-image lookups).
    pub fn lookup_tile_into(&self, key: CacheKey, dest: &mut LabelViewMut<'_>) -> bool {
        let mut shard = self.shards[key.shard(self.shards.len())]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let hit = match shard.entries.get(&key) {
            Some(entry) if (entry.width, entry.height) == dest.dimensions() => {
                let width = entry.width;
                for y in 0..entry.height {
                    dest.row_mut(y)
                        .copy_from_slice(&entry.labels[y * width..(y + 1) * width]);
                }
                true
            }
            _ => false,
        };
        if hit {
            shard.touch(key);
        }
        drop(shard);
        if hit {
            self.tile_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.tile_recomputed.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Stores one re-classified tile's labels (row-major, `width × height`)
    /// under `key`.  Same byte-budget and arena rules as
    /// [`SegmentCache::insert`].
    pub fn insert_tile(
        &self,
        key: CacheKey,
        labels: &[u32],
        width: usize,
        height: usize,
        arena: &LabelArena,
    ) {
        debug_assert_eq!(labels.len(), width * height);
        let charged = labels.len() * 4 + ENTRY_OVERHEAD_BYTES;
        if charged > self.shard_budget {
            return;
        }
        let mut buf = arena.take();
        buf.clear();
        buf.extend_from_slice(labels);
        let mut shard = self.shards[key.shard(self.shards.len())]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = shard.entries.remove(&key) {
            shard.recency.remove(&existing.stamp);
            shard.bytes -= existing.charged_bytes();
            arena.put(existing.labels);
        }
        shard.evict_for(charged, self.shard_budget, arena);
        let stamp = shard.next_stamp;
        shard.next_stamp += 1;
        shard.recency.insert(stamp, key);
        shard.bytes += charged;
        shard.insertions += 1;
        shard.entries.insert(
            key,
            Entry {
                labels: buf,
                width,
                height,
                stamp,
            },
        );
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured total byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Looks `key` up; on a hit the cached labels are copied into a buffer
    /// taken from `arena` and returned as a fresh [`LabelMap`] — the cache
    /// keeps its own copy, so a later eviction can never touch the returned
    /// map.  Counts a hit or a miss either way.
    pub fn lookup(&self, key: CacheKey, arena: &LabelArena) -> Option<LabelMap> {
        let mut shard = self.shards[key.shard(self.shards.len())]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let Some(entry) = shard.entries.get(&key) else {
            shard.misses += 1;
            return None;
        };
        let (width, height) = (entry.width, entry.height);
        let mut buf = arena.take();
        buf.clear();
        buf.extend_from_slice(&entry.labels);
        shard.hits += 1;
        shard.touch(key);
        drop(shard);
        Some(LabelMap::from_vec(width, height, buf).expect("cached labels match their dimensions"))
    }

    /// Stores a finished segmentation under `key`.  The labels are copied
    /// into a buffer taken from `arena`; entries evicted to make room (and
    /// any replaced duplicate) return their buffers to `arena`.  An entry
    /// larger than one shard's whole budget is not stored.
    pub fn insert(&self, key: CacheKey, labels: &LabelMap, arena: &LabelArena) {
        let charged = labels.len() * 4 + ENTRY_OVERHEAD_BYTES;
        if charged > self.shard_budget {
            return;
        }
        // Copy the labels *before* taking the shard lock: the memcpy of a
        // multi-megapixel map is the expensive part and touches no shard
        // state, so concurrent misses on the same shard only serialise on
        // the cheap map/recency bookkeeping below.
        let mut buf = arena.take();
        buf.clear();
        buf.extend_from_slice(labels.as_slice());
        let mut shard = self.shards[key.shard(self.shards.len())]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = shard.entries.remove(&key) {
            // Two threads raced to segment the same image; keep one copy.
            shard.recency.remove(&existing.stamp);
            shard.bytes -= existing.charged_bytes();
            arena.put(existing.labels);
        }
        shard.evict_for(charged, self.shard_budget, arena);
        let stamp = shard.next_stamp;
        shard.next_stamp += 1;
        shard.recency.insert(stamp, key);
        shard.bytes += charged;
        shard.insertions += 1;
        let (width, height) = labels.dimensions();
        shard.entries.insert(
            key,
            Entry {
                labels: buf,
                width,
                height,
                stamp,
            },
        );
    }

    /// Aggregate counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats {
            capacity_bytes: self.capacity_bytes,
            tile_hits: self.tile_hits.load(Ordering::Relaxed) as usize,
            tile_recomputed: self.tile_recomputed.load(Ordering::Relaxed) as usize,
            ..CacheStats::default()
        };
        for stats in self.shard_stats() {
            total.absorb(&stats);
        }
        total
    }

    /// Per-shard counters, in shard order (each reports `capacity_bytes` 0;
    /// the budget is a whole-cache figure).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|shard| shard.lock().unwrap_or_else(|e| e.into_inner()).stats())
            .collect()
    }

    /// The fingerprint of this cache's salt as recorded in snapshots.  The
    /// seeds are `SEED_LO ^ fnv1a(salt)` by construction, so the salt hash
    /// is recoverable without retaining the salt string itself.
    fn salt_fingerprint(&self) -> u64 {
        self.seed_lo ^ SEED_LO
    }

    /// Writes a versioned, checksummed snapshot of every resident entry to
    /// `path`, using the same length-prefixed framing discipline as the wire
    /// protocol: a fixed header (magic, version, salt fingerprint, entry
    /// count), one length-prefixed record per entry (key, dimensions, label
    /// bytes, all little-endian), and a trailing FNV-1a checksum over every
    /// preceding byte.
    ///
    /// The snapshot is written to a `.tmp` sibling and renamed into place,
    /// so a crash mid-save leaves any previous snapshot intact and never a
    /// half-written file under `path`.
    pub fn save_to(&self, path: &Path) -> Result<SnapshotStats, SnapshotError> {
        let tmp = path.with_extension("tmp");
        let mut file = io::BufWriter::new(std::fs::File::create(&tmp)?);
        let mut sum = Fnv64::new();
        let mut put = |file: &mut io::BufWriter<std::fs::File>, bytes: &[u8]| -> io::Result<()> {
            sum.update(bytes);
            file.write_all(bytes)
        };

        // Header.  The entry count requires a pass over the shards first;
        // shard locks are taken one at a time, so a concurrent insert can
        // change the count between the two passes — snapshot under load is
        // best-effort, which is fine because saves run on the drain path
        // when traffic has already stopped.  To stay safe anyway, entries
        // are counted and serialized in one pass into a per-shard buffer.
        let mut body = Vec::new();
        let mut stats = SnapshotStats::default();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (key, entry) in &shard.entries {
                let record_len = 8 + 8 + 4 + 4 + entry.labels.len() * 4;
                body.extend_from_slice(&(record_len as u32).to_le_bytes());
                body.extend_from_slice(&key.lo.to_le_bytes());
                body.extend_from_slice(&key.hi.to_le_bytes());
                body.extend_from_slice(&(entry.width as u32).to_le_bytes());
                body.extend_from_slice(&(entry.height as u32).to_le_bytes());
                for label in &entry.labels {
                    body.extend_from_slice(&label.to_le_bytes());
                }
                stats.entries += 1;
                stats.label_bytes += entry.labels.len() * 4;
            }
        }
        let mut header = [0u8; SNAPSHOT_HEADER_LEN];
        header[0..4].copy_from_slice(&SNAPSHOT_MAGIC);
        header[4..6].copy_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        // Bytes 6..8 are reserved (zero).
        header[8..16].copy_from_slice(&self.salt_fingerprint().to_le_bytes());
        header[16..24].copy_from_slice(&(stats.entries as u64).to_le_bytes());
        put(&mut file, &header)?;
        put(&mut file, &body)?;
        let trailer = sum.0.to_le_bytes();
        file.write_all(&trailer)?;
        file.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(stats)
    }

    /// Warm-loads a snapshot previously written by [`SegmentCache::save_to`]
    /// into this cache.
    ///
    /// The whole file is validated — magic, version, salt fingerprint,
    /// per-record framing, and the trailing checksum — *before* a single
    /// entry is installed, so a truncated, corrupted, or wrong-salt snapshot
    /// is a typed error and a clean cold start, never a partially-loaded
    /// cache and never a wrong label.  Entries are installed through the
    /// normal insert path, so the byte budget and LRU rules apply: loading
    /// a big snapshot into a small cache keeps the budget's worth and drops
    /// the rest.
    pub fn load_from(
        &self,
        path: &Path,
        arena: &LabelArena,
    ) -> Result<SnapshotStats, SnapshotError> {
        let bytes = std::fs::read(path)?;
        let corrupt = |why: String| SnapshotError::Corrupt(why);
        if bytes.len() < SNAPSHOT_HEADER_LEN + 8 {
            return Err(corrupt(format!(
                "{} bytes is shorter than header plus checksum",
                bytes.len()
            )));
        }
        if bytes[0..4] != SNAPSHOT_MAGIC {
            return Err(corrupt(format!("bad magic {:?}", &bytes[0..4])));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let found = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        let expected = self.salt_fingerprint();
        if found != expected {
            return Err(SnapshotError::SaltMismatch { expected, found });
        }
        let declared = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));

        // Checksum covers everything up to the 8-byte trailer.
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let mut sum = Fnv64::new();
        sum.update(body);
        let recorded = u64::from_le_bytes(trailer.try_into().expect("8-byte slice"));
        if sum.0 != recorded {
            return Err(corrupt(format!(
                "checksum {recorded:#018x} does not match computed {:#018x}",
                sum.0
            )));
        }

        // Parse every record fully before touching the cache.
        let mut records: Vec<(CacheKey, usize, usize, &[u8])> = Vec::new();
        let mut cursor = &body[SNAPSHOT_HEADER_LEN..];
        while !cursor.is_empty() {
            if cursor.len() < 4 {
                return Err(corrupt("dangling record length prefix".to_string()));
            }
            let record_len =
                u32::from_le_bytes(cursor[0..4].try_into().expect("4-byte slice")) as usize;
            if record_len > SNAPSHOT_MAX_RECORD_BYTES {
                return Err(corrupt(format!(
                    "record of {record_len} bytes exceeds the \
                     {SNAPSHOT_MAX_RECORD_BYTES}-byte limit"
                )));
            }
            cursor = &cursor[4..];
            if cursor.len() < record_len {
                return Err(corrupt(format!(
                    "record declares {record_len} bytes, only {} remain",
                    cursor.len()
                )));
            }
            let (record, rest) = cursor.split_at(record_len);
            cursor = rest;
            if record.len() < 24 {
                return Err(corrupt(format!(
                    "record of {} bytes is shorter than its fixed fields",
                    record.len()
                )));
            }
            let key = CacheKey {
                lo: u64::from_le_bytes(record[0..8].try_into().expect("8-byte slice")),
                hi: u64::from_le_bytes(record[8..16].try_into().expect("8-byte slice")),
            };
            let width =
                u32::from_le_bytes(record[16..20].try_into().expect("4-byte slice")) as usize;
            let height =
                u32::from_le_bytes(record[20..24].try_into().expect("4-byte slice")) as usize;
            let label_bytes = &record[24..];
            let pixels = width
                .checked_mul(height)
                .ok_or_else(|| corrupt(format!("dimensions {width}x{height} overflow")))?;
            if label_bytes.len() != pixels * 4 {
                return Err(corrupt(format!(
                    "record carries {} label bytes for {width}x{height} \
                     (expected {})",
                    label_bytes.len(),
                    pixels * 4
                )));
            }
            records.push((key, width, height, label_bytes));
        }
        if records.len() as u64 != declared {
            return Err(corrupt(format!(
                "header declares {declared} entries, found {}",
                records.len()
            )));
        }

        // Everything checks out: install through the normal insert path so
        // budget and LRU rules hold.
        let mut stats = SnapshotStats::default();
        for (key, width, height, label_bytes) in records {
            let labels: Vec<u32> = label_bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            let map = LabelMap::from_vec(width, height, labels)
                .map_err(|_| corrupt(format!("bad dimensions {width}x{height}")))?;
            // Entries the budget would refuse (larger than one shard's whole
            // slice) are skipped by `insert` and not counted as loaded.
            if width * height * 4 + ENTRY_OVERHEAD_BYTES <= self.shard_budget {
                stats.entries += 1;
                stats.label_bytes += width * height * 4;
            }
            self.insert(key, &map, arena);
            arena.recycle(map);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::Rgb;

    fn image(seed: u8, w: usize, h: usize) -> RgbImage {
        RgbImage::from_fn(w, h, move |x, y| {
            Rgb::new(
                (x * 3 + seed as usize) as u8,
                (y * 5) as u8,
                ((x ^ y) * 7) as u8,
            )
        })
    }

    fn labels_for(img: &RgbImage, fill: u32) -> LabelMap {
        LabelMap::from_vec(img.width(), img.height(), vec![fill; img.len()]).unwrap()
    }

    fn small_cache(capacity: usize, shards: usize) -> SegmentCache {
        SegmentCache::new(
            CacheConfig {
                capacity_bytes: capacity,
                shards,
            },
            "classifier=table;tile=off;backend=serial",
        )
    }

    #[test]
    fn lookup_after_insert_returns_byte_identical_labels() {
        let arena = LabelArena::new();
        let cache = small_cache(1 << 20, 4);
        let img = image(1, 16, 12);
        let labels = labels_for(&img, 3);
        let key = cache.key_for(&img);
        assert!(cache.lookup(key, &arena).is_none(), "cold cache misses");
        cache.insert(key, &labels, &arena);
        let hit = cache.lookup(key, &arena).expect("warm cache hits");
        assert_eq!(hit, labels);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes >= img.len() * 4);
        assert_eq!(stats.capacity_bytes, 1 << 20);
    }

    #[test]
    fn keys_are_content_addressed_and_salted() {
        let cache = small_cache(1 << 20, 4);
        let img = image(1, 16, 12);
        assert_eq!(cache.key_for(&img), cache.key_for(&img.clone()));
        // A single-byte difference changes the key.
        let mut other = img.clone();
        other.set(3, 4, Rgb::new(255, 0, 0));
        assert_ne!(cache.key_for(&img), cache.key_for(&other));
        // Same pixel bytes, different dimensions → different key.
        let wide = RgbImage::from_vec(img.len(), 1, img.as_slice().to_vec()).unwrap();
        assert_ne!(cache.key_for(&img), cache.key_for(&wide));
        // Same content, different salt (plan spec) → different key.
        let other_salt = SegmentCache::new(
            CacheConfig {
                capacity_bytes: 1 << 20,
                shards: 4,
            },
            "classifier=exact;tile=off;backend=serial",
        );
        assert_ne!(cache.key_for(&img), other_salt.key_for(&img));
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_first() {
        let arena = LabelArena::new();
        let entry_bytes = 8 * 8 * 4 + ENTRY_OVERHEAD_BYTES;
        // One shard that fits exactly two entries.
        let cache = small_cache(entry_bytes * 2, 1);
        let imgs: Vec<RgbImage> = (0..3).map(|i| image(i as u8, 8, 8)).collect();
        let keys: Vec<CacheKey> = imgs.iter().map(|img| cache.key_for(img)).collect();
        cache.insert(keys[0], &labels_for(&imgs[0], 0), &arena);
        cache.insert(keys[1], &labels_for(&imgs[1], 1), &arena);
        assert_eq!(cache.stats().entries, 2);
        // Touch entry 0 so entry 1 is the LRU, then overflow the budget.
        assert!(cache.lookup(keys[0], &arena).is_some());
        cache.insert(keys[2], &labels_for(&imgs[2], 2), &arena);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= entry_bytes * 2, "{stats:?}");
        assert!(cache.lookup(keys[1], &arena).is_none(), "LRU entry evicted");
        assert!(
            cache.lookup(keys[0], &arena).is_some(),
            "touched entry kept"
        );
        assert!(
            cache.lookup(keys[2], &arena).is_some(),
            "new entry resident"
        );
        // Evicted and copied-out buffers flow through the arena.
        assert!(arena.pooled() + stats.entries > 0);
    }

    #[test]
    fn entries_larger_than_a_shard_budget_are_not_stored() {
        let arena = LabelArena::new();
        let cache = small_cache(256, 1);
        let img = image(0, 32, 32); // 4 KiB of labels ≫ 256-byte budget
        let key = cache.key_for(&img);
        cache.insert(key, &labels_for(&img, 1), &arena);
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.lookup(key, &arena).is_none());
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache = small_cache(8 << 20, 8);
        let arena = LabelArena::new();
        for i in 0..64u8 {
            let img = image(i, 8, 8);
            cache.insert(cache.key_for(&img), &labels_for(&img, i as u32), &arena);
        }
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 8);
        let populated = per_shard.iter().filter(|s| s.entries > 0).count();
        assert!(
            populated >= 6,
            "64 distinct keys should land in most of 8 shards, got {populated}: {per_shard:?}"
        );
        assert_eq!(
            per_shard.iter().map(|s| s.entries).sum::<usize>(),
            cache.stats().entries
        );
    }

    #[test]
    fn duplicate_insert_keeps_one_copy_and_recycles_the_other() {
        let arena = LabelArena::new();
        let cache = small_cache(1 << 20, 1);
        let img = image(3, 8, 8);
        let key = cache.key_for(&img);
        cache.insert(key, &labels_for(&img, 1), &arena);
        let bytes_before = cache.stats().bytes;
        cache.insert(key, &labels_for(&img, 1), &arena);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, bytes_before);
        assert_eq!(stats.insertions, 2);
        // The replaced duplicate's buffer went back to the arena pool (the
        // new copy's buffer is taken before the lock, so it cannot reuse
        // the one it replaces).
        assert!(arena.pooled() >= 1);
    }

    #[test]
    fn eviction_under_concurrency_never_corrupts_returned_maps() {
        // A tiny budget forces constant eviction while many threads hit the
        // same shard set; every returned map must still carry exactly the
        // bytes that were inserted for its image.
        let arena = LabelArena::new();
        let entry_bytes = 8 * 8 * 4 + ENTRY_OVERHEAD_BYTES;
        let cache = small_cache(entry_bytes * 4, 2);
        let imgs: Vec<RgbImage> = (0..16).map(|i| image(i as u8, 8, 8)).collect();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                let arena = &arena;
                let imgs = &imgs;
                scope.spawn(move || {
                    for round in 0..50 {
                        let img = &imgs[(t * 7 + round * 3) % imgs.len()];
                        let expected = ((t * 7 + round * 3) % imgs.len()) as u32;
                        let key = cache.key_for(img);
                        match cache.lookup(key, arena) {
                            Some(map) => {
                                assert_eq!(map.dimensions(), img.dimensions());
                                assert!(map.as_slice().iter().all(|&l| l == expected));
                                arena.recycle(map);
                            }
                            None => {
                                let labels = LabelMap::from_vec(
                                    img.width(),
                                    img.height(),
                                    vec![expected; img.len()],
                                )
                                .unwrap();
                                cache.insert(key, &labels, arena);
                            }
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(
            stats.evictions > 0,
            "tiny budget must have evicted: {stats:?}"
        );
        assert!(stats.bytes <= entry_bytes * 4);
    }

    #[test]
    fn tile_keys_depend_only_on_logical_pixel_content() {
        use imaging::TileRect;
        let cache = small_cache(1 << 20, 4);
        // The same 6x4 pixel content planted at two different offsets in two
        // differently-sized parents (different strides).
        let content = |x: usize, y: usize| Rgb::new((x * 11) as u8, (y * 13) as u8, (x ^ y) as u8);
        let a = RgbImage::from_fn(40, 30, |x, y| {
            if (3..9).contains(&x) && (5..9).contains(&y) {
                content(x - 3, y - 5)
            } else {
                Rgb::new(255, 255, 255)
            }
        });
        let b = RgbImage::from_fn(17, 21, |x, y| {
            if (10..16).contains(&x) && (2..6).contains(&y) {
                content(x - 10, y - 2)
            } else {
                Rgb::new(0, 0, 0)
            }
        });
        let va = a.view(TileRect::new(3, 5, 6, 4)).unwrap();
        let vb = b.view(TileRect::new(10, 2, 6, 4)).unwrap();
        let key = cache.key_for_tile(&va, 8, 8);
        assert_eq!(
            key,
            cache.key_for_tile(&vb, 8, 8),
            "same content, different offset/stride → same key"
        );
        // A one-pixel difference changes the key.
        let mut c = a.clone();
        c.set(4, 6, Rgb::new(99, 99, 99));
        let vc = c.view(TileRect::new(3, 5, 6, 4)).unwrap();
        assert_ne!(key, cache.key_for_tile(&vc, 8, 8));
        // Distinct configured tile geometry → distinct key for identical
        // content, and a tile key never aliases the whole-image key.
        assert_ne!(key, cache.key_for_tile(&va, 16, 16));
        assert_ne!(key, cache.key_for_tile(&va, 8, 16));
        let tile_img = RgbImage::from_fn(6, 4, content);
        let whole_view = tile_img.view(TileRect::new(0, 0, 6, 4)).unwrap();
        assert_eq!(key, cache.key_for_tile(&whole_view, 8, 8));
        assert_ne!(
            cache.key_for(&tile_img),
            key,
            "geometry salt separates tile keys from whole-image keys"
        );
        // Distinct plan salt → distinct tile key.
        let other_salt = small_cache(1 << 20, 4);
        let other_plan = SegmentCache::new(
            CacheConfig {
                capacity_bytes: 1 << 20,
                shards: 4,
            },
            "classifier=simd;tile=off;backend=serial",
        );
        assert_eq!(key, other_salt.key_for_tile(&va, 8, 8));
        assert_ne!(key, other_plan.key_for_tile(&va, 8, 8));
    }

    #[test]
    fn tile_lookup_stitches_into_a_window_and_counts_separately() {
        use imaging::TileRect;
        let arena = LabelArena::new();
        let cache = small_cache(1 << 20, 2);
        let img = image(7, 20, 10);
        let rect = TileRect::new(8, 4, 6, 5);
        let view = img.view(rect).unwrap();
        let key = cache.key_for_tile(&view, 8, 8);
        let tile_labels: Vec<u32> = (0..30).collect();

        let mut stitch = vec![u32::MAX; img.len()];
        let mut dest = LabelViewMut::new(&mut stitch, img.width(), rect).unwrap();
        assert!(!cache.lookup_tile_into(key, &mut dest), "cold tile misses");
        cache.insert_tile(key, &tile_labels, 6, 5, &arena);
        let mut dest = LabelViewMut::new(&mut stitch, img.width(), rect).unwrap();
        assert!(cache.lookup_tile_into(key, &mut dest), "warm tile hits");
        // The copy landed exactly inside the window.
        for y in 0..5 {
            for x in 0..6 {
                assert_eq!(stitch[(4 + y) * img.width() + 8 + x], (y * 6 + x) as u32);
            }
        }
        assert_eq!(
            stitch.iter().filter(|&&l| l == u32::MAX).count(),
            img.len() - 30,
            "labels outside the window untouched"
        );
        let stats = cache.stats();
        assert_eq!((stats.tile_hits, stats.tile_recomputed), (1, 1));
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 0),
            "tile traffic stays out of the whole-image counters"
        );
        assert_eq!(stats.insertions, 1);

        // A dimension mismatch is a (counted) miss, never a mis-stitch.
        let mut wrong = vec![0u32; 36];
        let mut wrong_dest = LabelViewMut::contiguous(&mut wrong, 6, 6).unwrap();
        assert!(!cache.lookup_tile_into(key, &mut wrong_dest));
        assert_eq!(cache.stats().tile_recomputed, 2);
    }

    #[test]
    fn config_helpers() {
        assert!(!CacheConfig::default().enabled());
        let config = CacheConfig::with_capacity_mb(64);
        assert!(config.enabled());
        assert_eq!(config.capacity_bytes, 64 << 20);
        assert_eq!(config.effective_shards(), DEFAULT_SHARDS);
        assert_eq!(
            CacheConfig {
                shards: 3,
                ..config
            }
            .effective_shards(),
            3
        );
    }

    #[test]
    #[should_panic(expected = "non-zero budget")]
    fn zero_budget_cache_is_a_construction_error() {
        let _ = SegmentCache::new(CacheConfig::default(), "");
    }

    /// A scratch path under the target-adjacent temp dir, unique per test.
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("iqft-cache-snapshot-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.snap", std::process::id()))
    }

    #[test]
    fn snapshot_round_trips_byte_identical_labels() {
        let arena = LabelArena::new();
        let cache = small_cache(1 << 20, 4);
        let imgs: Vec<RgbImage> = (0..10).map(|i| image(i as u8, 12, 9)).collect();
        for (i, img) in imgs.iter().enumerate() {
            cache.insert(cache.key_for(img), &labels_for(img, i as u32), &arena);
        }
        let path = scratch("round-trip");
        let saved = cache.save_to(&path).unwrap();
        assert_eq!(saved.entries, 10);
        assert_eq!(saved.label_bytes, 10 * 12 * 9 * 4);

        let warm = small_cache(1 << 20, 2); // different shard count is fine
        let loaded = warm.load_from(&path, &arena).unwrap();
        assert_eq!(loaded, saved);
        for (i, img) in imgs.iter().enumerate() {
            let hit = warm
                .lookup(warm.key_for(img), &arena)
                .expect("warm-loaded entry hits");
            assert_eq!(hit, labels_for(img, i as u32), "image {i}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_and_corrupted_snapshots_are_a_clean_cold_start() {
        let arena = LabelArena::new();
        let cache = small_cache(1 << 20, 4);
        let img = image(5, 16, 16);
        cache.insert(cache.key_for(&img), &labels_for(&img, 9), &arena);
        let path = scratch("corrupt");
        cache.save_to(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Every truncation point — including mid-header and mid-record —
        // yields a typed error and an empty cache, never a panic.
        for cut in [
            0,
            3,
            SNAPSHOT_HEADER_LEN - 1,
            SNAPSHOT_HEADER_LEN + 10,
            good.len() - 1,
        ] {
            std::fs::write(&path, &good[..cut]).unwrap();
            let warm = small_cache(1 << 20, 4);
            assert!(
                warm.load_from(&path, &arena).is_err(),
                "cut at {cut} must fail"
            );
            assert_eq!(warm.stats().entries, 0, "cut at {cut} must load nothing");
        }

        // A single flipped payload byte fails the checksum before any entry
        // is installed.
        let mut flipped = good.clone();
        let mid = SNAPSHOT_HEADER_LEN + 30;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let warm = small_cache(1 << 20, 4);
        match warm.load_from(&path, &arena) {
            Err(SnapshotError::Corrupt(why)) => assert!(why.contains("checksum"), "{why}"),
            other => panic!("expected checksum corruption, got {other:?}"),
        }
        assert_eq!(warm.stats().entries, 0);

        // Bad magic and future versions are typed errors too.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            warm.load_from(&path, &arena),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut bad_version = good.clone();
        bad_version[4..6].copy_from_slice(&9u16.to_le_bytes());
        std::fs::write(&path, &bad_version).unwrap();
        assert!(matches!(
            warm.load_from(&path, &arena),
            Err(SnapshotError::BadVersion(9))
        ));
        // A missing file is an i/o error, not a panic.
        assert!(matches!(
            warm.load_from(Path::new("/nonexistent/iqft.snap"), &arena),
            Err(SnapshotError::Io(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salt_mismatched_snapshot_refuses_to_load() {
        let arena = LabelArena::new();
        let cache = small_cache(1 << 20, 4);
        let img = image(2, 8, 8);
        cache.insert(cache.key_for(&img), &labels_for(&img, 4), &arena);
        let path = scratch("salt");
        cache.save_to(&path).unwrap();

        // A cache built for a different plan spec must start cold: its salted
        // keys would never match the snapshot's anyway, and loading foreign
        // keys would waste the budget on unreachable entries.
        let other = SegmentCache::new(
            CacheConfig {
                capacity_bytes: 1 << 20,
                shards: 4,
            },
            "classifier=simd;tile=32x32;backend=threads:4",
        );
        assert!(matches!(
            other.load_from(&path, &arena),
            Err(SnapshotError::SaltMismatch { .. })
        ));
        assert_eq!(other.stats().entries, 0);
        // The matching salt still loads.
        let same = small_cache(1 << 20, 4);
        assert_eq!(same.load_from(&path, &arena).unwrap().entries, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loading_into_a_smaller_cache_respects_the_byte_budget() {
        let arena = LabelArena::new();
        let big = small_cache(1 << 20, 1);
        let imgs: Vec<RgbImage> = (0..8).map(|i| image(i as u8, 8, 8)).collect();
        for (i, img) in imgs.iter().enumerate() {
            big.insert(big.key_for(img), &labels_for(img, i as u32), &arena);
        }
        let path = scratch("budget");
        assert_eq!(big.save_to(&path).unwrap().entries, 8);

        // Room for exactly two entries: the load keeps the budget's worth.
        let entry_bytes = 8 * 8 * 4 + ENTRY_OVERHEAD_BYTES;
        let tiny = small_cache(entry_bytes * 2, 1);
        let loaded = tiny.load_from(&path, &arena).unwrap();
        assert_eq!(loaded.entries, 8, "all records fit one-at-a-time");
        let stats = tiny.stats();
        assert_eq!(stats.entries, 2, "budget holds only two");
        assert!(stats.bytes <= entry_bytes * 2);
        assert!(stats.evictions >= 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn route_hash_is_content_addressed_and_salt_free() {
        let img = image(1, 16, 12);
        assert_eq!(route_hash(&img), route_hash(&img.clone()));
        let mut other = img.clone();
        other.set(3, 4, Rgb::new(255, 0, 0));
        assert_ne!(route_hash(&img), route_hash(&other));
        // Routing ignores the plan salt entirely — both ends of a fleet
        // agree on placement regardless of the plan each daemon runs.
        let a = small_cache(1 << 20, 4);
        let b = SegmentCache::new(
            CacheConfig {
                capacity_bytes: 1 << 20,
                shards: 4,
            },
            "classifier=exact;tile=off;backend=serial",
        );
        assert_ne!(a.key_for(&img), b.key_for(&img));
        assert_eq!(route_hash(&img), route_hash(&img));
    }
}
