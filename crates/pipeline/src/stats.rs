//! Per-batch and per-run throughput/latency accounting.
//!
//! Workers tick an [`xpar::Progress`] as images complete; the pipeline turns
//! the counter plus its wall clock into a [`BatchStats`] per batch and a
//! [`PipelineReport`] per run.  The report also surfaces the label arena's
//! allocation-vs-reuse counters, making the "zero per-image allocation in
//! steady state" property observable from the CLI.

/// Throughput/latency figures for one completed batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Zero-based index of the batch within the run.
    pub batch: usize,
    /// Images segmented in this batch.
    pub images: usize,
    /// Total pixels classified in this batch.
    pub pixels: usize,
    /// Wall-clock seconds the batch took end to end.
    pub elapsed_secs: f64,
}

impl BatchStats {
    /// Images per wall-clock second (0 for an instantaneous/empty batch).
    pub fn images_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.images as f64 / self.elapsed_secs
        }
    }

    /// Megapixels classified per wall-clock second.
    pub fn mpixels_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.pixels as f64 / self.elapsed_secs / 1e6
        }
    }

    /// Mean wall-clock latency per image, in milliseconds.
    ///
    /// This is batch latency divided by batch size — the figure a caller
    /// waiting on the whole batch observes per image, not the service time of
    /// one worker.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.images == 0 {
            0.0
        } else {
            self.elapsed_secs * 1e3 / self.images as f64
        }
    }
}

use crate::hist::LatencySummary;

/// Aggregated statistics for a whole pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Per-batch figures, in execution order.
    pub batches: Vec<BatchStats>,
    /// Per-operation service-latency percentiles for the run, recorded into
    /// a [`crate::LatencyHistogram`]: one sample per image on the whole-image
    /// paths, one per tile job on the tiled batch path.
    pub latency: LatencySummary,
    /// Worker threads the pipeline ran with.
    pub workers: usize,
    /// Fresh label-buffer allocations the arena performed during this run.
    pub arena_allocations: usize,
    /// Label buffers the arena served from its pool during this run.
    pub arena_reuses: usize,
    /// Buffers sitting idle in the arena pool when the run finished.
    pub arena_pooled: usize,
    /// Result-cache hits during this run (0 when no cache is attached).
    pub cache_hits: usize,
    /// Result-cache misses during this run (0 when no cache is attached).
    pub cache_misses: usize,
    /// Result-cache evictions during this run (0 when no cache is attached).
    pub cache_evictions: usize,
    /// Entries resident in the result cache when the run finished.
    pub cache_entries: usize,
    /// Bytes charged against the result cache's budget when the run finished.
    pub cache_bytes: usize,
    /// Delta-path tiles answered from the cache during this run (0 when no
    /// cache is attached or the delta path was not used).
    pub delta_tiles_hit: usize,
    /// Delta-path tiles re-classified during this run.
    pub delta_tiles_recomputed: usize,
}

impl PipelineReport {
    /// Total images across all batches.
    pub fn images(&self) -> usize {
        self.batches.iter().map(|b| b.images).sum()
    }

    /// Total pixels across all batches.
    pub fn pixels(&self) -> usize {
        self.batches.iter().map(|b| b.pixels).sum()
    }

    /// Total wall-clock seconds across all batches.
    pub fn elapsed_secs(&self) -> f64 {
        self.batches.iter().map(|b| b.elapsed_secs).sum()
    }

    /// Overall images per second across the run.
    pub fn images_per_sec(&self) -> f64 {
        let secs = self.elapsed_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.images() as f64 / secs
        }
    }

    /// Overall megapixels per second across the run.
    pub fn mpixels_per_sec(&self) -> f64 {
        let secs = self.elapsed_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.pixels() as f64 / secs / 1e6
        }
    }

    /// Fraction of delta-path tiles answered from the cache (0.0 when the
    /// delta path saw no tiles).
    pub fn delta_tile_hit_ratio(&self) -> f64 {
        let total = self.delta_tiles_hit + self.delta_tiles_recomputed;
        if total == 0 {
            0.0
        } else {
            self.delta_tiles_hit as f64 / total as f64
        }
    }

    /// Steady-state throughput: overall rate excluding the first batch
    /// (which pays arena warm-up and cache-fill costs).  Falls back to the
    /// overall rate for single-batch runs.
    pub fn steady_state_images_per_sec(&self) -> f64 {
        if self.batches.len() < 2 {
            return self.images_per_sec();
        }
        let images: usize = self.batches[1..].iter().map(|b| b.images).sum();
        let secs: f64 = self.batches[1..].iter().map(|b| b.elapsed_secs).sum();
        if secs <= 0.0 {
            0.0
        } else {
            images as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(batch: usize, images: usize, pixels: usize, secs: f64) -> BatchStats {
        BatchStats {
            batch,
            images,
            pixels,
            elapsed_secs: secs,
        }
    }

    #[test]
    fn batch_rates_and_latency() {
        let b = batch(0, 10, 1_000_000, 0.5);
        assert!((b.images_per_sec() - 20.0).abs() < 1e-9);
        assert!((b.mpixels_per_sec() - 2.0).abs() < 1e-9);
        assert!((b.mean_latency_ms() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_batches_report_zero_rates() {
        let b = batch(0, 0, 0, 0.0);
        assert_eq!(b.images_per_sec(), 0.0);
        assert_eq!(b.mpixels_per_sec(), 0.0);
        assert_eq!(b.mean_latency_ms(), 0.0);
    }

    #[test]
    fn delta_tile_hit_ratio_handles_empty_and_mixed_runs() {
        assert_eq!(PipelineReport::default().delta_tile_hit_ratio(), 0.0);
        let report = PipelineReport {
            delta_tiles_hit: 3,
            delta_tiles_recomputed: 1,
            ..PipelineReport::default()
        };
        assert!((report.delta_tile_hit_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn report_aggregates_and_excludes_warmup_from_steady_state() {
        let report = PipelineReport {
            batches: vec![
                batch(0, 4, 400, 2.0), // slow warm-up batch
                batch(1, 4, 400, 0.5),
                batch(2, 4, 400, 0.5),
            ],
            workers: 2,
            arena_allocations: 4,
            arena_reuses: 8,
            arena_pooled: 4,
            ..PipelineReport::default()
        };
        assert_eq!(report.images(), 12);
        assert_eq!(report.pixels(), 1200);
        assert!((report.elapsed_secs() - 3.0).abs() < 1e-9);
        assert!((report.images_per_sec() - 4.0).abs() < 1e-9);
        assert!((report.steady_state_images_per_sec() - 8.0).abs() < 1e-9);
        // Single-batch runs fall back to the overall rate.
        let single = PipelineReport {
            batches: vec![batch(0, 4, 400, 2.0)],
            ..PipelineReport::default()
        };
        assert_eq!(
            single.steady_state_images_per_sec(),
            single.images_per_sec()
        );
    }
}
