//! A bounded multi-producer multi-consumer job queue with explicit shutdown.
//!
//! The pipeline feeds segmentation jobs to its workers through a
//! [`JobQueue`]: producers block in [`JobQueue::push`] once `capacity` items
//! are in flight (backpressure — a fast producer cannot buffer an unbounded
//! number of decoded images), and consumers block in [`JobQueue::pop`] until
//! work arrives.  [`JobQueue::close`] initiates shutdown: pushes start
//! failing immediately, while pops continue to *drain* every item already
//! queued and only then return `None`.  That drain-then-stop contract is what
//! lets a batch finish cleanly: close the queue after the last job and every
//! worker exits exactly when the queue is empty.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item is queued or the queue is closed.
    not_empty: Condvar,
    /// Signalled when an item is taken or the queue is closed.
    not_full: Condvar,
    capacity: usize,
}

/// A bounded MPMC queue; clones share the same underlying channel.
pub struct JobQueue<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for JobQueue<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> std::fmt::Debug for JobQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn bounded(capacity: usize) -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    items: VecDeque::new(),
                    closed: false,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `job`, blocking while the queue is full.
    ///
    /// Returns `Err(job)` if the queue is (or becomes, while waiting) closed
    /// — the job is handed back so the producer can report or retry it.
    pub fn push(&self, job: T) -> Result<(), T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(job);
            }
            if state.items.len() < self.shared.capacity {
                state.items.push_back(job);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Attempts to enqueue without blocking; `Err(job)` when full or closed.
    pub fn try_push(&self, job: T) -> Result<(), T> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.shared.capacity {
            return Err(job);
        }
        state.items.push_back(job);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues a job, blocking while the queue is empty and open.
    ///
    /// Returns `None` only when the queue is closed **and** fully drained, so
    /// consumers process every accepted job before shutting down.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Attempts to dequeue without blocking; `None` when currently empty.
    pub fn try_pop(&self) -> Option<T> {
        let job = self.lock().items.pop_front();
        if job.is_some() {
            self.shared.not_full.notify_one();
        }
        job
    }

    /// Closes the queue: subsequent pushes fail, queued items keep draining,
    /// and blocked producers/consumers are woken.
    pub fn close(&self) {
        self.lock().closed = true;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn fifo_through_a_single_consumer() {
        let q = JobQueue::bounded(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_is_enforced_without_blocking_via_try_push() {
        let q = JobQueue::bounded(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.try_pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = JobQueue::bounded(0);
        assert_eq!(q.capacity(), 1);
        q.push(7u8).unwrap();
        assert_eq!(q.try_push(8), Err(8));
    }

    #[test]
    fn close_drains_queued_items_then_stops() {
        let q = JobQueue::bounded(8);
        q.push('a').unwrap();
        q.push('b').unwrap();
        q.close();
        assert!(q.is_closed());
        // Pushes fail immediately after close…
        assert_eq!(q.push('c'), Err('c'));
        assert_eq!(q.try_push('c'), Err('c'));
        // …but already-accepted work still drains, in order.
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_consumers_blocked_on_an_empty_queue() {
        let q: JobQueue<u32> = JobQueue::bounded(4);
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer time to block, then close.
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn blocked_producer_resumes_when_space_frees() {
        let q = JobQueue::bounded(1);
        q.push(0u32).unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.push(1))
        };
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.pop(), Some(0)); // frees a slot; producer unblocks
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn many_producers_many_consumers_deliver_every_job_once() {
        let q = JobQueue::bounded(4);
        let seen = Arc::new(AtomicUsize::new(0));
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            let seen = Arc::clone(&seen);
            consumers.push(std::thread::spawn(move || {
                while q.pop().is_some() {
                    seen.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        let mut producers = Vec::new();
        for p in 0..4 {
            let q = q.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    q.push(p * 100 + i).unwrap();
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(seen.load(Ordering::Relaxed), 200);
    }
}
