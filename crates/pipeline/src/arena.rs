//! A recycling arena for label buffers.
//!
//! Segmenting an image needs one `u32` per pixel; allocating that buffer
//! fresh for every image puts an allocator round-trip on the hot path and, at
//! production frame rates, real pressure on the allocator.  [`LabelArena`]
//! keeps returned buffers and hands them back out: once the pool has warmed
//! up (one buffer per in-flight image), the steady-state pipeline performs
//! **zero per-image allocations** — [`LabelArena::reuses`] vs
//! [`LabelArena::allocations`] make that observable, and the pipeline's
//! report prints both.

use imaging::LabelMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A thread-safe pool of reusable `Vec<u32>` label buffers.
#[derive(Debug, Default)]
pub struct LabelArena {
    free: Mutex<Vec<Vec<u32>>>,
    allocations: AtomicUsize,
    reuses: AtomicUsize,
}

impl LabelArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena pre-warmed with `count` buffers of `capacity` labels each, so
    /// even the first batch allocates nothing on the hot path.
    pub fn with_warm_buffers(count: usize, capacity: usize) -> Self {
        let arena = Self::new();
        {
            let mut free = arena.free.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..count {
                free.push(Vec::with_capacity(capacity));
            }
        }
        arena
    }

    /// Takes a buffer from the pool, or allocates an empty one if the pool is
    /// dry.  The buffer's previous contents are unspecified; callers fill it
    /// via `SegmentEngine::segment_rgb_into` (which clears first).
    pub fn take(&self) -> Vec<u32> {
        let recycled = self.free.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match recycled {
            Some(buf) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.allocations.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&self, buf: Vec<u32>) {
        self.free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(buf);
    }

    /// Recycles a finished [`LabelMap`]'s backing storage into the pool.
    pub fn recycle(&self, map: LabelMap) {
        self.put(map.into_vec());
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// How many [`LabelArena::take`] calls had to allocate a fresh buffer.
    pub fn allocations(&self) -> usize {
        self.allocations.load(Ordering::Relaxed)
    }

    /// How many [`LabelArena::take`] calls were served from the pool.
    pub fn reuses(&self) -> usize {
        self.reuses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_cycle_reuses_storage() {
        let arena = LabelArena::new();
        let mut buf = arena.take();
        assert_eq!(arena.allocations(), 1);
        buf.resize(1024, 7);
        let ptr = buf.as_ptr();
        arena.put(buf);
        assert_eq!(arena.pooled(), 1);
        let again = arena.take();
        assert_eq!(again.as_ptr(), ptr, "same backing storage came back");
        assert_eq!(arena.reuses(), 1);
        assert_eq!(arena.allocations(), 1);
    }

    #[test]
    fn recycle_reclaims_a_label_maps_storage() {
        let arena = LabelArena::new();
        let map = LabelMap::from_vec(4, 2, vec![1; 8]).unwrap();
        arena.recycle(map);
        assert_eq!(arena.pooled(), 1);
        let buf = arena.take();
        assert!(buf.capacity() >= 8);
        assert_eq!(arena.reuses(), 1);
        assert_eq!(arena.allocations(), 0);
    }

    #[test]
    fn warm_buffers_avoid_first_batch_allocations() {
        let arena = LabelArena::with_warm_buffers(3, 64);
        assert_eq!(arena.pooled(), 3);
        for _ in 0..3 {
            let buf = arena.take();
            assert!(buf.capacity() >= 64);
        }
        assert_eq!(arena.allocations(), 0);
        assert_eq!(arena.reuses(), 3);
        // Pool is dry now; the next take allocates.
        let _ = arena.take();
        assert_eq!(arena.allocations(), 1);
    }
}
