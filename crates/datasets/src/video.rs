//! Synthetic streaming-video generator for the per-tile delta-cache path.
//!
//! Real video traffic is frame-coherent: consecutive frames share most of
//! their pixels and differ in a few moving regions.  [`synthetic_video`]
//! reproduces exactly that statistic with a controllable knob — each frame
//! copies its predecessor and mutates a chosen *fraction of the frame's
//! blocks* ([`VideoConfig::change_rate`]), drawing a seeded moving ball into
//! each mutated block and shifting every pixel byte in it so the change is
//! guaranteed to be visible to a content hash.  Untouched blocks are
//! byte-identical to the previous frame by construction, which is what lets
//! the delta cache's hit ratio be asserted exactly in tests and benches.
//!
//! Like every generator in this crate the stream is fully deterministic:
//! the same [`VideoConfig`] always produces the same frames.

use imaging::draw;
use imaging::{Rgb, RgbImage};

/// Default mutation-block edge in pixels.  Matches the delta cache's default
/// tile edge (`seg_engine::Tiling::DEFAULT_DELTA_TILE`) so a default-config
/// video stresses the default-config delta path one block per tile.
pub const DEFAULT_BLOCK: usize = 64;

/// Parameters for [`synthetic_video`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoConfig {
    /// Number of frames in the stream.
    pub frames: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Fraction of the frame's blocks mutated per frame, clamped to
    /// `0.0..=1.0`.  `0.0` repeats the first frame verbatim; `1.0` changes
    /// every block of every frame.
    pub change_rate: f64,
    /// Mutation-block edge in pixels (0 = [`DEFAULT_BLOCK`]).  Edge blocks
    /// are clamped to the frame, mirroring tile clamping.
    pub block: usize,
    /// RNG seed; the stream is a pure function of the whole config.
    pub seed: u64,
}

impl Default for VideoConfig {
    fn default() -> Self {
        Self {
            frames: 8,
            width: 256,
            height: 192,
            change_rate: 0.1,
            block: 0,
            seed: 42,
        }
    }
}

impl VideoConfig {
    /// The effective mutation-block edge.
    pub fn effective_block(&self) -> usize {
        if self.block == 0 {
            DEFAULT_BLOCK
        } else {
            self.block
        }
    }

    /// Number of mutation blocks per frame (edge blocks clamped, so this is
    /// `ceil(w/b) × ceil(h/b)`).
    pub fn blocks_per_frame(&self) -> usize {
        let b = self.effective_block();
        self.width.div_ceil(b) * self.height.div_ceil(b)
    }

    /// Exact number of blocks mutated in each frame after the first:
    /// `ceil(change_rate × blocks_per_frame)`, so any non-zero rate changes
    /// at least one block.
    pub fn changed_blocks_per_frame(&self) -> usize {
        let rate = self.change_rate.clamp(0.0, 1.0);
        let blocks = self.blocks_per_frame();
        ((rate * blocks as f64).ceil() as usize).min(blocks)
    }
}

/// The xorshift64* generator the experiments harness also uses for traffic
/// shaping — small, seedable, and good enough for scene placement.
struct FrameRng(u64);

impl FrameRng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// The first frame: a deterministic "scene" of smooth gradients with a few
/// seeded balls, so every intensity band the classifiers care about is
/// populated.
fn base_frame(config: &VideoConfig, rng: &mut FrameRng) -> RgbImage {
    let seed = config.seed;
    let mut frame = RgbImage::from_fn(config.width, config.height, move |x, y| {
        Rgb::new(
            ((x * 5 + y) as u64 + seed) as u8,
            ((y * 3 + x / 2) as u64 + seed / 3) as u8,
            (((x + y) * 2) as u64 + seed / 7) as u8,
        )
    });
    let radius = ((config.width.min(config.height) / 8).max(2)) as i64;
    for _ in 0..6 {
        let cx = rng.below(config.width) as i64;
        let cy = rng.below(config.height) as i64;
        let color = Rgb::new(
            rng.next_u64() as u8,
            rng.next_u64() as u8,
            rng.next_u64() as u8,
        );
        draw::fill_circle(&mut frame, cx, cy, radius, color);
    }
    frame
}

/// Mutates one block of `frame` in place: draws a seeded ball into it, then
/// shifts every pixel's red channel by an odd constant so *every* byte row
/// of the block differs from the previous frame regardless of where the
/// ball landed.
fn mutate_block(frame: &mut RgbImage, bx: usize, by: usize, block: usize, rng: &mut FrameRng) {
    let x0 = bx * block;
    let y0 = by * block;
    let x1 = (x0 + block).min(frame.width());
    let y1 = (y0 + block).min(frame.height());
    let w = x1 - x0;
    let h = y1 - y0;
    // The ball must stay strictly inside the block — a mutation that bled
    // into a neighbouring block would change more blocks than configured.
    if w >= 3 && h >= 3 {
        let radius = (w.min(h) / 4).max(1);
        let cx = (x0 + radius + rng.below(w - 2 * radius)) as i64;
        let cy = (y0 + radius + rng.below(h - 2 * radius)) as i64;
        let color = Rgb::new(
            rng.next_u64() as u8,
            rng.next_u64() as u8,
            rng.next_u64() as u8,
        );
        draw::fill_circle(frame, cx, cy, radius as i64, color);
    }
    let shift = (rng.next_u64() as u8) | 1;
    for y in y0..y1 {
        for x in x0..x1 {
            let px = frame.get(x, y);
            frame.set(x, y, Rgb::new(px.r().wrapping_add(shift), px.g(), px.b()));
        }
    }
}

/// Generates a deterministic video stream per `config`.
///
/// Frame 0 is a seeded scene; each later frame copies its predecessor and
/// mutates exactly [`VideoConfig::changed_blocks_per_frame`] *distinct*
/// blocks.  All other pixels are byte-identical to the previous frame.
pub fn synthetic_video(config: &VideoConfig) -> Vec<RgbImage> {
    let mut rng = FrameRng::new(config.seed ^ 0x5EED_F00D_CAFE_D00D);
    let mut frames = Vec::with_capacity(config.frames);
    if config.frames == 0 {
        return frames;
    }
    frames.push(base_frame(config, &mut rng));
    let block = config.effective_block();
    let cols = config.width.div_ceil(block);
    let changes = config.changed_blocks_per_frame();
    let total = config.blocks_per_frame();
    let mut block_ids: Vec<usize> = (0..total).collect();
    for _ in 1..config.frames {
        let mut frame = frames.last().expect("frame 0 exists").clone();
        // Partial Fisher-Yates: the first `changes` entries become a
        // uniformly-chosen set of distinct block indices.
        for i in 0..changes {
            let j = i + rng.below(total - i);
            block_ids.swap(i, j);
        }
        for &id in &block_ids[..changes] {
            mutate_block(&mut frame, id % cols, id / cols, block, &mut rng);
        }
        frames.push(frame);
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_changed_blocks(a: &RgbImage, b: &RgbImage, block: usize) -> usize {
        let cols = a.width().div_ceil(block);
        let rows = a.height().div_ceil(block);
        (0..cols * rows)
            .filter(|id| {
                let x0 = (id % cols) * block;
                let y0 = (id / cols) * block;
                let x1 = (x0 + block).min(a.width());
                let y1 = (y0 + block).min(a.height());
                (y0..y1).any(|y| (x0..x1).any(|x| a.get(x, y) != b.get(x, y)))
            })
            .count()
    }

    #[test]
    fn streams_are_deterministic() {
        let config = VideoConfig {
            frames: 4,
            width: 96,
            height: 64,
            change_rate: 0.25,
            block: 32,
            seed: 7,
        };
        assert_eq!(synthetic_video(&config), synthetic_video(&config));
        let other = VideoConfig { seed: 8, ..config };
        assert_ne!(synthetic_video(&config)[0], synthetic_video(&other)[0]);
    }

    #[test]
    fn change_rate_mutates_exactly_the_configured_block_count() {
        for (rate, expected) in [(0.0, 0usize), (0.25, 2), (0.5, 3), (1.0, 6)] {
            let config = VideoConfig {
                frames: 5,
                width: 96,  // 3 columns of 32-px blocks
                height: 64, // 2 rows
                change_rate: rate,
                block: 32,
                seed: 11,
            };
            assert_eq!(config.blocks_per_frame(), 6);
            assert_eq!(config.changed_blocks_per_frame(), expected, "rate={rate}");
            let frames = synthetic_video(&config);
            for pair in frames.windows(2) {
                assert_eq!(
                    count_changed_blocks(&pair[0], &pair[1], 32),
                    expected,
                    "rate={rate}"
                );
            }
        }
    }

    #[test]
    fn zero_rate_repeats_the_first_frame_byte_identically() {
        let config = VideoConfig {
            frames: 3,
            width: 80,
            height: 50,
            change_rate: 0.0,
            block: 0,
            seed: 3,
        };
        let frames = synthetic_video(&config);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], frames[1]);
        assert_eq!(frames[0], frames[2]);
    }

    #[test]
    fn tiny_nonzero_rates_still_change_at_least_one_block() {
        let config = VideoConfig {
            frames: 2,
            width: 128,
            height: 128,
            change_rate: 0.001,
            block: 32,
            seed: 5,
        };
        assert_eq!(config.changed_blocks_per_frame(), 1);
        let frames = synthetic_video(&config);
        assert_ne!(frames[0], frames[1]);
        assert_eq!(count_changed_blocks(&frames[0], &frames[1], 32), 1);
    }

    #[test]
    fn non_divisible_frames_clamp_edge_blocks() {
        let config = VideoConfig {
            frames: 3,
            width: 53,
            height: 37,
            change_rate: 1.0,
            block: 32,
            seed: 9,
        };
        assert_eq!(config.blocks_per_frame(), 4);
        let frames = synthetic_video(&config);
        for frame in &frames {
            assert_eq!(frame.dimensions(), (53, 37));
        }
        assert_eq!(count_changed_blocks(&frames[0], &frames[1], 32), 4);
    }

    #[test]
    fn config_helpers_cover_defaults() {
        let config = VideoConfig::default();
        assert_eq!(config.effective_block(), DEFAULT_BLOCK);
        assert!(config.blocks_per_frame() > 0);
        assert_eq!(
            synthetic_video(&VideoConfig {
                frames: 0,
                ..config
            })
            .len(),
            0
        );
    }
}
