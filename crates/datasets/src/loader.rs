//! On-disk dataset loading.
//!
//! Users who have real imagery (e.g. PASCAL VOC frames converted to PPM and
//! masks converted to PGM) can evaluate on it by pointing the loader at a
//! directory laid out as:
//!
//! ```text
//! dataset/
//!   images/<name>.ppm
//!   masks/<name>.pgm      # 0 = background, 255 (or any non-zero) = foreground,
//!                         # value 128 = void
//! ```

use crate::sample::LabeledImage;
use imaging::{io, ImagingError, LabelMap, Result, VOID_LABEL};
use std::path::{Path, PathBuf};

/// Grayscale mask value interpreted as "void" when loading PGM masks.
pub const VOID_MASK_VALUE: u8 = 128;

/// Loads every `<stem>.ppm` / `<stem>.pgm` pair under `root/images` and
/// `root/masks`, sorted by stem.  Pairs with mismatched dimensions produce an
/// error; images without a mask are skipped.
pub fn load_directory(root: &Path) -> Result<Vec<LabeledImage>> {
    let images_dir = root.join("images");
    let masks_dir = root.join("masks");
    let mut stems: Vec<(String, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(&images_dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("ppm") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                stems.push((stem.to_string(), path.clone()));
            }
        }
    }
    stems.sort();
    let mut samples = Vec::new();
    for (stem, image_path) in stems {
        let mask_path = masks_dir.join(format!("{stem}.pgm"));
        if !mask_path.exists() {
            continue;
        }
        let image = io::load_ppm(&image_path)?;
        let mask_gray = io::load_pgm(&mask_path)?;
        if image.dimensions() != mask_gray.dimensions() {
            return Err(ImagingError::ShapeMismatch {
                left: image.dimensions(),
                right: mask_gray.dimensions(),
            });
        }
        let mask: LabelMap = mask_gray.map(|p| match p.value() {
            0 => 0u32,
            VOID_MASK_VALUE => VOID_LABEL,
            _ => 1u32,
        });
        samples.push(LabeledImage::new(stem, image, mask));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::{GrayImage, Luma, Rgb, RgbImage};

    fn write_sample(root: &Path, stem: &str, w: usize, h: usize) {
        let image = RgbImage::from_fn(w, h, |x, _| Rgb::new((x * 20) as u8, 10, 200));
        let mask = GrayImage::from_fn(w, h, |x, y| {
            Luma(if x == 0 && y == 0 {
                VOID_MASK_VALUE
            } else if x < w / 2 {
                0
            } else {
                255
            })
        });
        io::save_ppm(&image, root.join("images").join(format!("{stem}.ppm"))).unwrap();
        io::save_pgm(&mask, root.join("masks").join(format!("{stem}.pgm"))).unwrap();
    }

    fn temp_root(name: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("datasets-loader-{name}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("images")).unwrap();
        std::fs::create_dir_all(root.join("masks")).unwrap();
        root
    }

    #[test]
    fn loads_image_mask_pairs_sorted_by_stem() {
        let root = temp_root("pairs");
        write_sample(&root, "b-frame", 8, 6);
        write_sample(&root, "a-frame", 8, 6);
        let samples = load_directory(&root).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].id, "a-frame");
        assert_eq!(samples[1].id, "b-frame");
        assert_eq!(samples[0].dimensions(), (8, 6));
        // Void pixel and binary labels decoded as expected.
        assert_eq!(samples[0].ground_truth.get(0, 0), VOID_LABEL);
        assert_eq!(samples[0].ground_truth.get(1, 0), 0);
        assert_eq!(samples[0].ground_truth.get(7, 5), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn images_without_masks_are_skipped() {
        let root = temp_root("skip");
        write_sample(&root, "kept", 4, 4);
        let orphan = RgbImage::new(4, 4, Rgb::BLACK);
        io::save_ppm(&orphan, root.join("images").join("orphan.ppm")).unwrap();
        let samples = load_directory(&root).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].id, "kept");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn mismatched_dimensions_are_an_error() {
        let root = temp_root("mismatch");
        let image = RgbImage::new(4, 4, Rgb::BLACK);
        let mask = GrayImage::new(5, 4, Luma(0));
        io::save_ppm(&image, root.join("images").join("x.ppm")).unwrap();
        io::save_pgm(&mask, root.join("masks").join("x.pgm")).unwrap();
        assert!(load_directory(&root).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let missing = std::env::temp_dir().join("datasets-loader-definitely-missing");
        assert!(load_directory(&missing).is_err());
    }
}
