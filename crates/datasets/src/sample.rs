//! The labelled-image sample type shared by all dataset sources.

use imaging::{LabelMap, RgbImage, VOID_LABEL};

/// One dataset sample: an RGB image plus its binary ground-truth mask
/// (1 = foreground, 0 = background, [`VOID_LABEL`] = ignored).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledImage {
    /// A stable identifier (index or file stem).
    pub id: String,
    /// The RGB image.
    pub image: RgbImage,
    /// The ground-truth mask.
    pub ground_truth: LabelMap,
}

impl LabeledImage {
    /// Creates a sample, checking that image and mask dimensions agree.
    pub fn new(id: impl Into<String>, image: RgbImage, ground_truth: LabelMap) -> Self {
        image
            .check_same_shape(&ground_truth)
            .expect("image and ground truth must share dimensions");
        Self {
            id: id.into(),
            image,
            ground_truth,
        }
    }

    /// Fraction of non-void pixels labelled foreground.
    pub fn foreground_fraction(&self) -> f64 {
        let mut fg = 0usize;
        let mut valid = 0usize;
        for &l in self.ground_truth.pixels() {
            if l == VOID_LABEL {
                continue;
            }
            valid += 1;
            if l != 0 {
                fg += 1;
            }
        }
        if valid == 0 {
            0.0
        } else {
            fg as f64 / valid as f64
        }
    }

    /// Fraction of pixels marked void.
    pub fn void_fraction(&self) -> f64 {
        if self.ground_truth.is_empty() {
            return 0.0;
        }
        let void = self
            .ground_truth
            .pixels()
            .filter(|&&l| l == VOID_LABEL)
            .count();
        void as f64 / self.ground_truth.len() as f64
    }

    /// Image dimensions.
    pub fn dimensions(&self) -> (usize, usize) {
        self.image.dimensions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::Rgb;

    #[test]
    fn fractions_are_computed_over_non_void_pixels() {
        let image = RgbImage::new(4, 1, Rgb::BLACK);
        let gt = LabelMap::from_vec(4, 1, vec![1, 0, VOID_LABEL, 1]).unwrap();
        let sample = LabeledImage::new("s0", image, gt);
        assert_eq!(sample.dimensions(), (4, 1));
        assert!((sample.foreground_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((sample.void_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_void_mask_has_zero_foreground() {
        let image = RgbImage::new(2, 2, Rgb::BLACK);
        let gt = LabelMap::new(2, 2, VOID_LABEL);
        let sample = LabeledImage::new("v", image, gt);
        assert_eq!(sample.foreground_fraction(), 0.0);
        assert_eq!(sample.void_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn mismatched_shapes_panic() {
        let _ = LabeledImage::new(
            "bad",
            RgbImage::new(2, 2, Rgb::BLACK),
            LabelMap::new(3, 2, 0),
        );
    }
}
