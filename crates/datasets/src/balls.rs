//! The "coloured balls" scene of the paper's Fig. 4.
//!
//! The figure demonstrates single-parameter multiple thresholding: θ = 4π
//! installs the four thresholds ⅛, ⅜, ⅝, ⅞ at once (eq. 16), so the mid-
//! intensity balls are carved away from both the darker and the brighter
//! balls with a single parameter, which a single Otsu threshold cannot do.
//! The ground truth marks the balls that fall in the θ = 4π *selected* bands
//! (⅛–⅜ and ⅝–⅞): the red and lemon balls.  Selecting this non-contiguous
//! pair of intensity bands is exactly the task a single threshold cannot
//! solve and the IQFT grayscale segmenter solves with one parameter.

use crate::sample::LabeledImage;
use imaging::draw;
use imaging::{LabelMap, Rgb, RgbImage};

/// A ball description: centre grid position, colour, and whether it belongs
/// to the target (foreground) group of Fig. 4.
struct Ball {
    color: Rgb<u8>,
    target: bool,
}

/// Generates the Fig. 4 balls scene.
///
/// Returns a [`LabeledImage`] whose ground truth marks the balls inside the
/// θ = 4π selected bands (red and lemon) as foreground.  The scene is
/// deterministic — there is nothing random in the figure.
pub fn balls_scene(width: usize, height: usize) -> LabeledImage {
    // Luma (eq. 17 weights) of the chosen colours, normalised:
    //   dark navy    ≈ 0.07   (below 1/8)            → background
    //   dark maroon  ≈ 0.10   (below 1/8)            → background
    //   red          ≈ 0.28   (between 1/8 and 3/8)  → target
    //   green        ≈ 0.52   (between 3/8 and 5/8)  → background (unselected band)
    //   lemon        ≈ 0.78   (between 5/8 and 7/8)  → target
    //   white-ish    ≈ 0.95   (above 7/8)            → background
    let balls = [
        Ball {
            color: Rgb::new(15, 15, 60),
            target: false,
        },
        Ball {
            color: Rgb::new(60, 15, 20),
            target: false,
        },
        Ball {
            color: Rgb::new(230, 40, 40),
            target: true,
        },
        Ball {
            color: Rgb::new(60, 170, 60),
            target: false,
        },
        Ball {
            color: Rgb::new(230, 220, 60),
            target: true,
        },
        Ball {
            color: Rgb::new(245, 245, 240),
            target: false,
        },
    ];
    let background = Rgb::new(5, 5, 5); // near-black backdrop (luma ≈ 0.02)
    let mut image = RgbImage::new(width, height, background);
    let mut mask = LabelMap::new(width, height, 0u32);
    let cols = 3usize;
    let rows = 2usize;
    let cell_w = width / cols;
    let cell_h = height / rows;
    let radius = (cell_w.min(cell_h) as i64 / 2) - (cell_w.min(cell_h) as i64 / 8).max(2);
    for (i, ball) in balls.iter().enumerate() {
        let col = i % cols;
        let row = i / cols;
        let cx = (col * cell_w + cell_w / 2) as i64;
        let cy = (row * cell_h + cell_h / 2) as i64;
        draw::fill_circle(&mut image, cx, cy, radius, ball.color);
        if ball.target {
            draw::fill_circle(&mut mask, cx, cy, radius, 1u32);
        }
    }
    LabeledImage::new("balls-fig4", image, mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::color::luma_of;

    /// True if `luma` lies in one of the two bands selected by θ = 4π
    /// ((1/8, 3/8) or (5/8, 7/8)).
    fn in_selected_band(luma: f64) -> bool {
        (0.125..0.375).contains(&luma) || (0.625..0.875).contains(&luma)
    }

    #[test]
    fn scene_has_six_balls_two_of_which_are_targets() {
        let scene = balls_scene(120, 80);
        assert_eq!(scene.dimensions(), (120, 80));
        // Ball census through connected components of the mask.
        let (components, n) = imaging::labels::connected_components(&scene.ground_truth);
        // foreground components + the single background component
        assert_eq!(n, 3, "expected 2 target balls + background, got {n}");
        drop(components);
        let fg = scene.foreground_fraction();
        assert!(fg > 0.05 && fg < 0.5, "fg fraction {fg}");
    }

    #[test]
    fn target_balls_sit_in_the_selected_intensity_bands() {
        let scene = balls_scene(120, 80);
        for (x, y, label) in scene.ground_truth.enumerate_pixels() {
            let luma = luma_of(scene.image.get(x, y));
            if label == 1 {
                assert!(
                    in_selected_band(luma),
                    "target pixel at ({x},{y}) has luma {luma}"
                );
            }
        }
    }

    #[test]
    fn non_target_balls_and_backdrop_sit_outside_the_selected_bands() {
        let scene = balls_scene(120, 80);
        let mut outside = 0usize;
        let mut background_pixels = 0usize;
        for (x, y, label) in scene.ground_truth.enumerate_pixels() {
            if label == 0 {
                background_pixels += 1;
                let luma = luma_of(scene.image.get(x, y));
                if !in_selected_band(luma) {
                    outside += 1;
                }
            }
        }
        // Every non-target pixel lies outside the selected bands.
        assert_eq!(outside, background_pixels);
    }

    #[test]
    fn scene_is_deterministic() {
        assert_eq!(balls_scene(90, 60), balls_scene(90, 60));
    }
}
