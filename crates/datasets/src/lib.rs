//! `datasets` — synthetic dataset generators standing in for the paper's two
//! evaluation datasets, plus an on-disk loader for real imagery.
//!
//! The paper evaluates on PASCAL VOC 2012 (2913 natural images with
//! foreground/background masks and void borders) and on the 148 pre-disaster
//! satellite tiles of the xVIEW2 "joplin-tornado" split.  Neither dataset can
//! be redistributed inside this repository, so this crate provides *seeded
//! synthetic generators* that reproduce the statistical properties those
//! experiments actually exercise:
//!
//! * [`pascal`] — "natural scene" images: 1–3 coloured objects of varied
//!   shape and brightness on textured / gradient backgrounds, Gaussian
//!   noise, and a void border around every object (the VOC annotation
//!   convention).  Difficulty is spread from well-separated to
//!   overlapping-intensity scenes so method crossovers can appear.
//! * [`xview`] — "satellite tile" images: ground texture, roads, vegetation
//!   patches and rectangular buildings with bright roofs as the foreground
//!   class; foreground occupies a small fraction of the frame, mirroring the
//!   class imbalance of the real tiles.
//! * [`balls`] — the multi-band "coloured balls" scene of the paper's Fig. 4,
//!   used to demonstrate single-parameter multiple thresholding.
//! * [`video`] — deterministic streaming-video frames with a controllable
//!   per-frame change rate, for the per-tile delta-cache workload.
//! * [`loader`] — loads a directory of PPM images + PGM masks for users who
//!   have the real datasets on disk.
//!
//! Every generator takes an explicit seed and is deterministic, so the
//! experiment harness and the benchmarks always see the same data.
//!
//! # Example
//!
//! ```
//! use datasets::{PascalVocLikeConfig, PascalVocLikeDataset};
//!
//! let config = PascalVocLikeConfig {
//!     len: 2,
//!     width: 32,
//!     height: 24,
//!     seed: 7,
//!     ..PascalVocLikeConfig::default()
//! };
//! let samples: Vec<_> = PascalVocLikeDataset::new(config.clone()).iter().collect();
//! assert_eq!(samples.len(), 2);
//! assert_eq!(samples[0].image.dimensions(), (32, 24));
//! // Deterministic: the same seed regenerates identical imagery.
//! let again = PascalVocLikeDataset::new(config).iter().next().unwrap();
//! assert_eq!(again.image, samples[0].image);
//! ```

pub mod balls;
pub mod loader;
pub mod pascal;
pub mod sample;
pub mod video;
pub mod xview;

pub use balls::balls_scene;
pub use pascal::{PascalVocLikeConfig, PascalVocLikeDataset};
pub use sample::LabeledImage;
pub use video::{synthetic_video, VideoConfig};
pub use xview::{XViewLikeConfig, XViewLikeDataset};
