//! PASCAL-VOC-like synthetic natural scenes.
//!
//! Each scene contains one to three foreground objects (ellipses, rectangles
//! or circles) whose colours are drawn from a palette that ranges from
//! clearly separated to overlapping with the background intensity, on a
//! background that is a gradient or checkerboard texture with Gaussian noise.
//! A few-pixel "void" band is drawn around every object in the ground truth,
//! mirroring the VOC annotation convention (and exercising the void-masking
//! path of the mIOU implementation).

use crate::sample::LabeledImage;
use imaging::draw::{self, Rect};
use imaging::filter;
use imaging::{LabelMap, Rgb, RgbImage, VOID_LABEL};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of the VOC-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PascalVocLikeConfig {
    /// Number of images in the dataset.
    pub len: usize,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Base RNG seed; image `i` uses `seed + i`.
    pub seed: u64,
    /// Standard deviation of the additive Gaussian noise (0–255 units).
    pub noise_sigma: f64,
    /// Width in pixels of the void band drawn around object boundaries.
    pub void_border: usize,
    /// Gaussian blur applied to the rendered image (softens edges).
    pub blur_sigma: f64,
}

impl Default for PascalVocLikeConfig {
    fn default() -> Self {
        Self {
            len: 200,
            width: 160,
            height: 120,
            seed: 2012,
            noise_sigma: 6.0,
            void_border: 2,
            blur_sigma: 0.8,
        }
    }
}

/// The VOC-like synthetic dataset (an indexable, lazily generated collection).
#[derive(Debug, Clone)]
pub struct PascalVocLikeDataset {
    config: PascalVocLikeConfig,
}

impl PascalVocLikeDataset {
    /// Creates a dataset with the given configuration.
    pub fn new(config: PascalVocLikeConfig) -> Self {
        Self { config }
    }

    /// A small default instance (200 images of 160×120).
    pub fn default_split() -> Self {
        Self::new(PascalVocLikeConfig::default())
    }

    /// Dataset length.
    pub fn len(&self) -> usize {
        self.config.len
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.config.len == 0
    }

    /// The configuration in use.
    pub fn config(&self) -> &PascalVocLikeConfig {
        &self.config
    }

    /// Generates sample `index` (deterministic in `seed + index`).
    pub fn sample(&self, index: usize) -> LabeledImage {
        assert!(index < self.config.len, "sample index out of range");
        generate_scene(&self.config, index)
    }

    /// Iterator over all samples.
    pub fn iter(&self) -> impl Iterator<Item = LabeledImage> + '_ {
        (0..self.len()).map(move |i| self.sample(i))
    }
}

fn generate_scene(config: &PascalVocLikeConfig, index: usize) -> LabeledImage {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(index as u64));
    let (w, h) = (config.width, config.height);
    let mut image = RgbImage::new(w, h, Rgb::BLACK);
    let mut mask = LabelMap::new(w, h, 0u32);

    // --- Background -------------------------------------------------------
    let bg_dark = rng.gen_range(20..100) as u8;
    let bg_bright = (bg_dark as u16 + rng.gen_range(30u16..120)).min(255) as u8;
    let bg_a = Rgb::new(
        jitter(bg_dark, 20, &mut rng),
        jitter(bg_dark, 20, &mut rng),
        jitter(bg_dark, 20, &mut rng),
    );
    let bg_b = Rgb::new(
        jitter(bg_bright, 20, &mut rng),
        jitter(bg_bright, 20, &mut rng),
        jitter(bg_bright, 20, &mut rng),
    );
    match rng.gen_range(0..3) {
        0 => draw::vertical_gradient(&mut image, bg_a, bg_b),
        1 => draw::horizontal_gradient(&mut image, bg_a, bg_b),
        _ => draw::checkerboard(&mut image, rng.gen_range(8..20), bg_a, bg_b),
    }

    // --- Foreground objects ------------------------------------------------
    let n_objects = rng.gen_range(1..=3);
    // Object brightness ranges from "well separated" to "close to background",
    // spreading scene difficulty across the dataset.
    for _ in 0..n_objects {
        let difficulty: f64 = rng.gen();
        let base = if difficulty < 0.6 {
            // Easy: clearly brighter than the background.
            rng.gen_range(170..=250) as u8
        } else {
            // Hard: brightness overlaps the background's bright end.
            (bg_bright as i32 + rng.gen_range(-25i32..=35)).clamp(40, 255) as u8
        };
        let color = Rgb::new(
            jitter(base, 40, &mut rng),
            jitter(base, 40, &mut rng),
            jitter(base, 40, &mut rng),
        );
        let cx = rng.gen_range(w / 6..w * 5 / 6) as i64;
        let cy = rng.gen_range(h / 6..h * 5 / 6) as i64;
        match rng.gen_range(0..3) {
            0 => {
                let r = rng.gen_range((h / 10).max(4)..h / 3) as i64;
                draw::fill_circle(&mut image, cx, cy, r, color);
                draw::fill_circle(&mut mask, cx, cy, r, 1u32);
            }
            1 => {
                let rx = rng.gen_range((w / 10).max(4)..w / 3) as i64;
                let ry = rng.gen_range((h / 10).max(4)..h / 3) as i64;
                draw::fill_ellipse(&mut image, cx, cy, rx, ry, color);
                draw::fill_ellipse(&mut mask, cx, cy, rx, ry, 1u32);
            }
            _ => {
                let rw = rng.gen_range(w / 8..w / 3);
                let rh = rng.gen_range(h / 8..h / 3);
                let rect = Rect::new(
                    (cx as usize).saturating_sub(rw / 2),
                    (cy as usize).saturating_sub(rh / 2),
                    rw,
                    rh,
                );
                draw::fill_rect(&mut image, rect, color);
                draw::fill_rect(&mut mask, rect, 1u32);
            }
        }
    }

    // --- Post-processing ----------------------------------------------------
    let image = filter::gaussian_blur_rgb(&image, config.blur_sigma);
    let mut image = image;
    filter::add_gaussian_noise_rgb(&mut image, config.noise_sigma, &mut rng);
    let mask = add_void_border(&mask, config.void_border);

    LabeledImage::new(format!("voc-like-{index:05}"), image, mask)
}

fn jitter(base: u8, spread: i32, rng: &mut impl Rng) -> u8 {
    (base as i32 + rng.gen_range(-spread..=spread)).clamp(0, 255) as u8
}

/// Marks a band of `border` pixels around every foreground/background
/// boundary as void, mirroring the VOC annotation convention.
pub fn add_void_border(mask: &LabelMap, border: usize) -> LabelMap {
    if border == 0 {
        return mask.clone();
    }
    let (w, h) = mask.dimensions();
    let border = border as i64;
    LabelMap::from_fn(w, h, |x, y| {
        let own = mask.get(x, y);
        // A pixel is void if any pixel within the Chebyshev radius `border`
        // carries a different (non-void) label.
        for dy in -border..=border {
            for dx in -border..=border {
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                    continue;
                }
                let neighbour = mask.get(nx as usize, ny as usize);
                if neighbour != own {
                    return VOID_LABEL;
                }
            }
        }
        own
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PascalVocLikeConfig {
        PascalVocLikeConfig {
            len: 8,
            width: 64,
            height: 48,
            seed: 7,
            ..PascalVocLikeConfig::default()
        }
    }

    #[test]
    fn dataset_has_requested_length_and_dimensions() {
        let ds = PascalVocLikeDataset::new(small_config());
        assert_eq!(ds.len(), 8);
        assert!(!ds.is_empty());
        for sample in ds.iter() {
            assert_eq!(sample.dimensions(), (64, 48));
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let ds = PascalVocLikeDataset::new(small_config());
        let a = ds.sample(3);
        let b = ds.sample(3);
        assert_eq!(a.image, b.image);
        assert_eq!(a.ground_truth, b.ground_truth);
        // A different seed produces different content.
        let other = PascalVocLikeDataset::new(PascalVocLikeConfig {
            seed: 8,
            ..small_config()
        });
        assert_ne!(ds.sample(3).image, other.sample(3).image);
    }

    #[test]
    fn every_scene_contains_foreground_background_and_void() {
        let ds = PascalVocLikeDataset::new(small_config());
        for sample in ds.iter() {
            let fg = sample.foreground_fraction();
            assert!(fg > 0.005, "{}: fg fraction {fg}", sample.id);
            assert!(fg < 0.95, "{}: fg fraction {fg}", sample.id);
            assert!(sample.void_fraction() > 0.0, "{}", sample.id);
            assert!(sample.void_fraction() < 0.5, "{}", sample.id);
        }
    }

    #[test]
    fn ids_are_unique_and_stable() {
        let ds = PascalVocLikeDataset::new(small_config());
        let ids: Vec<String> = ds.iter().map(|s| s.id).collect();
        let mut deduped = ids.clone();
        deduped.dedup();
        assert_eq!(ids, deduped);
        assert_eq!(ids[0], "voc-like-00000");
    }

    #[test]
    fn void_border_surrounds_objects() {
        let mut mask = LabelMap::new(20, 20, 0);
        draw::fill_rect(&mut mask, Rect::new(8, 8, 4, 4), 1);
        let with_void = add_void_border(&mask, 1);
        // Just outside the object: void.  Far away: background.  Centre: fg.
        assert_eq!(with_void.get(7, 8), VOID_LABEL);
        assert_eq!(with_void.get(8, 8), VOID_LABEL); // object boundary pixel
        assert_eq!(with_void.get(10, 10), 1);
        assert_eq!(with_void.get(0, 0), 0);
        // Zero border is the identity.
        assert_eq!(add_void_border(&mask, 0), mask);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_sample_panics() {
        let ds = PascalVocLikeDataset::new(small_config());
        let _ = ds.sample(100);
    }

    #[test]
    fn default_split_matches_paper_scale_settings() {
        let ds = PascalVocLikeDataset::default_split();
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.config().width, 160);
    }
}
