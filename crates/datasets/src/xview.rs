//! xVIEW2-like synthetic satellite tiles.
//!
//! The paper's second evaluation set is the 148 pre-disaster RGB satellite
//! tiles of the xVIEW2 "joplin-tornado" split, where the (implicit)
//! foreground class is building footprints.  The generator reproduces the
//! properties that drive the relative ranking of the methods there:
//!
//! * small foreground fraction (buildings cover a minority of each tile),
//! * bright, compact roofs against darker, textured terrain,
//! * elongated road structures and irregular vegetation patches that tempt
//!   intensity-based methods into false positives,
//! * sensor noise.

use crate::sample::LabeledImage;
use imaging::draw::{self, Rect};
use imaging::filter;
use imaging::{LabelMap, Rgb, RgbImage};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of the xVIEW2-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XViewLikeConfig {
    /// Number of tiles (the real split has 148).
    pub len: usize,
    /// Tile width.
    pub width: usize,
    /// Tile height.
    pub height: usize,
    /// Base RNG seed; tile `i` uses `seed + i`.
    pub seed: u64,
    /// Standard deviation of the additive Gaussian noise (0–255 units).
    pub noise_sigma: f64,
}

impl Default for XViewLikeConfig {
    fn default() -> Self {
        Self {
            len: 148,
            width: 160,
            height: 160,
            seed: 1480,
            noise_sigma: 5.0,
        }
    }
}

/// The xVIEW2-like synthetic dataset.
#[derive(Debug, Clone)]
pub struct XViewLikeDataset {
    config: XViewLikeConfig,
}

impl XViewLikeDataset {
    /// Creates a dataset with the given configuration.
    pub fn new(config: XViewLikeConfig) -> Self {
        Self { config }
    }

    /// The default 148-tile split (mirroring the size of the real split).
    pub fn default_split() -> Self {
        Self::new(XViewLikeConfig::default())
    }

    /// Dataset length.
    pub fn len(&self) -> usize {
        self.config.len
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.config.len == 0
    }

    /// The configuration in use.
    pub fn config(&self) -> &XViewLikeConfig {
        &self.config
    }

    /// Generates tile `index` (deterministic in `seed + index`).
    pub fn sample(&self, index: usize) -> LabeledImage {
        assert!(index < self.config.len, "sample index out of range");
        generate_tile(&self.config, index)
    }

    /// Iterator over all tiles.
    pub fn iter(&self) -> impl Iterator<Item = LabeledImage> + '_ {
        (0..self.len()).map(move |i| self.sample(i))
    }
}

fn generate_tile(config: &XViewLikeConfig, index: usize) -> LabeledImage {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(index as u64));
    let (w, h) = (config.width, config.height);

    // --- Terrain ------------------------------------------------------------
    // Earthy base colour with low-frequency variation (simple value noise via
    // bilinear interpolation of a coarse random grid).
    let base_r = rng.gen_range(70..110) as f64;
    let base_g = rng.gen_range(80..120) as f64;
    let base_b = rng.gen_range(55..90) as f64;
    let coarse = 8usize;
    let gw = w / coarse + 2;
    let gh = h / coarse + 2;
    let grid: Vec<f64> = (0..gw * gh).map(|_| rng.gen_range(-18.0..18.0)).collect();
    let mut image = RgbImage::from_fn(w, h, |x, y| {
        let gx = x as f64 / coarse as f64;
        let gy = y as f64 / coarse as f64;
        let x0 = gx.floor() as usize;
        let y0 = gy.floor() as usize;
        let fx = gx - x0 as f64;
        let fy = gy - y0 as f64;
        let v00 = grid[y0 * gw + x0];
        let v10 = grid[y0 * gw + x0 + 1];
        let v01 = grid[(y0 + 1) * gw + x0];
        let v11 = grid[(y0 + 1) * gw + x0 + 1];
        let v = v00 * (1.0 - fx) * (1.0 - fy)
            + v10 * fx * (1.0 - fy)
            + v01 * (1.0 - fx) * fy
            + v11 * fx * fy;
        Rgb::new(
            (base_r + v).clamp(0.0, 255.0) as u8,
            (base_g + v).clamp(0.0, 255.0) as u8,
            (base_b + v * 0.7).clamp(0.0, 255.0) as u8,
        )
    });
    let mut mask = LabelMap::new(w, h, 0u32);

    // --- Vegetation patches (background, darker green) -----------------------
    for _ in 0..rng.gen_range(2..6) {
        let cx = rng.gen_range(0..w) as i64;
        let cy = rng.gen_range(0..h) as i64;
        let rx = rng.gen_range(6..w as i64 / 4);
        let ry = rng.gen_range(6..h as i64 / 4);
        let green = Rgb::new(
            rng.gen_range(30..60),
            rng.gen_range(70..110),
            rng.gen_range(30..55),
        );
        draw::fill_ellipse(&mut image, cx, cy, rx, ry, green);
    }

    // --- Roads (background, mid-gray stripes) --------------------------------
    for _ in 0..rng.gen_range(1..3) {
        let gray_v = rng.gen_range(120..160);
        let gray = Rgb::new(gray_v, gray_v, gray_v);
        let thickness = rng.gen_range(3..6);
        if rng.gen_bool(0.5) {
            let y = rng.gen_range(0..h) as i64;
            draw::draw_line(&mut image, (0, y), (w as i64 - 1, y), thickness, gray);
        } else {
            let x = rng.gen_range(0..w) as i64;
            draw::draw_line(&mut image, (x, 0), (x, h as i64 - 1), thickness, gray);
        }
    }

    // --- Buildings (foreground: bright roofs) --------------------------------
    let n_buildings = rng.gen_range(4..14);
    for _ in 0..n_buildings {
        let bw = rng.gen_range(8..w / 5);
        let bh = rng.gen_range(8..h / 5);
        let x = rng.gen_range(0..w.saturating_sub(bw).max(1));
        let y = rng.gen_range(0..h.saturating_sub(bh).max(1));
        let roof_base = rng.gen_range(170..=245) as u8;
        let roof = Rgb::new(
            roof_base,
            roof_base.saturating_sub(rng.gen_range(0..25)),
            roof_base.saturating_sub(rng.gen_range(0..40)),
        );
        let rect = Rect::new(x, y, bw, bh);
        draw::fill_rect(&mut image, rect, roof);
        draw::fill_rect(&mut mask, rect, 1u32);
        // A darker shadow edge on one side of the building.
        let shadow = draw::scale_brightness(roof, 0.35);
        let shadow_rect = Rect::new(x, (y + bh).min(h.saturating_sub(1)), bw, 2);
        draw::fill_rect(&mut image, shadow_rect, shadow);
    }

    filter::add_gaussian_noise_rgb(&mut image, config.noise_sigma, &mut rng);

    LabeledImage::new(format!("xview-like-{index:05}"), image, mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> XViewLikeConfig {
        XViewLikeConfig {
            len: 6,
            width: 96,
            height: 96,
            seed: 3,
            ..XViewLikeConfig::default()
        }
    }

    #[test]
    fn dataset_shape_and_determinism() {
        let ds = XViewLikeDataset::new(small_config());
        assert_eq!(ds.len(), 6);
        assert!(!ds.is_empty());
        let a = ds.sample(2);
        let b = ds.sample(2);
        assert_eq!(a.image, b.image);
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_eq!(a.dimensions(), (96, 96));
    }

    #[test]
    fn buildings_are_a_minority_class() {
        let ds = XViewLikeDataset::new(small_config());
        for sample in ds.iter() {
            let fg = sample.foreground_fraction();
            assert!(fg > 0.01, "{}: fg {fg}", sample.id);
            assert!(fg < 0.55, "{}: fg {fg}", sample.id);
            // No void pixels in this dataset's annotation style.
            assert_eq!(sample.void_fraction(), 0.0);
        }
    }

    #[test]
    fn roofs_are_brighter_than_terrain_on_average() {
        let ds = XViewLikeDataset::new(small_config());
        let sample = ds.sample(0);
        let mut roof_luma = 0.0;
        let mut roof_n = 0usize;
        let mut ground_luma = 0.0;
        let mut ground_n = 0usize;
        for (x, y, label) in sample.ground_truth.enumerate_pixels() {
            let l = imaging::color::luma_of(sample.image.get(x, y));
            if label == 1 {
                roof_luma += l;
                roof_n += 1;
            } else {
                ground_luma += l;
                ground_n += 1;
            }
        }
        assert!(roof_luma / roof_n as f64 > ground_luma / ground_n as f64 + 0.1);
    }

    #[test]
    fn default_split_has_148_tiles() {
        let ds = XViewLikeDataset::default_split();
        assert_eq!(ds.len(), 148);
        assert_eq!(ds.config().width, 160);
    }

    #[test]
    fn different_tiles_differ() {
        let ds = XViewLikeDataset::new(small_config());
        assert_ne!(ds.sample(0).image, ds.sample(1).image);
        assert_eq!(ds.sample(0).id, "xview-like-00000");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tile_panics() {
        let ds = XViewLikeDataset::new(small_config());
        let _ = ds.sample(6);
    }
}
