//! `check_baselines` — schema guard for the `BENCH_*.json` baseline files.
//!
//! The repository keeps recorded benchmark baselines as JSON-lines files at
//! the workspace root (one flat object per line, written by the criterion
//! shim).  Nothing used to read them back, so a hand edit or a format drift
//! in the shim could silently break every future comparison.  This tool —
//! run by the CI `bench-compile` job — parses every record with a small
//! hand-rolled JSON reader (the workspace is offline: no serde) and checks
//! that each carries the expected fields with sane values.
//!
//! ```text
//! cargo run --release -p bench --bin check_baselines [FILES...]
//! ```
//!
//! With no arguments it scans the current directory for `BENCH_*.json`.
//! Exits non-zero (after printing every problem) if any record is invalid,
//! any file is empty, or the no-argument scan finds no baseline files.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A flat JSON value: every baseline record is one object of these.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

/// Minimal parser for one flat JSON object (`{"key": value, ...}` with
/// string/number/bool/null values — exactly what the criterion shim emits).
/// Nested containers are rejected; this is a schema guard, not a JSON
/// library.
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut chars = line.char_indices().peekable();
    let mut object = BTreeMap::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected '\"', found {other:?}")),
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, other)) => return Err(format!("unsupported escape '\\{other}'")),
                    None => return Err("unterminated escape".to_string()),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        other => return Err(format!("expected '{{', found {other:?}")),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ':')) => {}
                other => return Err(format!("expected ':' after key '{key}', found {other:?}")),
            }
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some((_, '"')) => Value::String(parse_string(&mut chars)?),
                Some((_, '{')) | Some((_, '[')) => {
                    return Err(format!("key '{key}': nested containers are not expected"));
                }
                Some((start, _)) => {
                    let start = *start;
                    let mut end = start;
                    while let Some((i, c)) = chars.peek() {
                        if matches!(c, ',' | '}') || c.is_ascii_whitespace() {
                            break;
                        }
                        end = i + c.len_utf8();
                        chars.next();
                    }
                    let token = &line[start..end];
                    match token {
                        "true" => Value::Bool(true),
                        "false" => Value::Bool(false),
                        "null" => Value::Null,
                        number => Value::Number(
                            number
                                .parse::<f64>()
                                .map_err(|_| format!("key '{key}': bad literal '{number}'"))?,
                        ),
                    }
                }
                None => return Err(format!("key '{key}': missing value")),
            };
            if object.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key '{key}'"));
            }
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some((_, trailing)) = chars.next() {
        return Err(format!("trailing content starting at '{trailing}'"));
    }
    Ok(object)
}

/// The fields every baseline record must carry, with their value checks.
fn check_record(record: &BTreeMap<String, Value>) -> Result<(), String> {
    let string = |key: &str| match record.get(key) {
        Some(Value::String(s)) if !s.is_empty() => Ok(s.clone()),
        Some(other) => Err(format!(
            "field '{key}' must be a non-empty string, got {other:?}"
        )),
        None => Err(format!("missing field '{key}'")),
    };
    let number = |key: &str| match record.get(key) {
        Some(Value::Number(n)) if n.is_finite() => Ok(*n),
        Some(other) => Err(format!(
            "field '{key}' must be a finite number, got {other:?}"
        )),
        None => Err(format!("missing field '{key}'")),
    };
    string("group")?;
    string("bench")?;
    let mean = number("mean_ns")?;
    let min = number("min_ns")?;
    let iters = number("iters")?;
    if mean <= 0.0 || min <= 0.0 {
        return Err(format!(
            "timings must be positive (mean_ns={mean}, min_ns={min})"
        ));
    }
    if min > mean {
        return Err(format!("min_ns {min} exceeds mean_ns {mean}"));
    }
    if iters < 1.0 || iters.fract() != 0.0 {
        return Err(format!("iters must be a positive integer, got {iters}"));
    }
    // The criterion shim emits the throughput pair only for benches that
    // declare a `.throughput()`, so the pair is optional — but when present
    // it must be complete, positive, and consistent with the timings.
    match (
        record.contains_key("throughput_elems"),
        record.contains_key("elems_per_sec"),
    ) {
        (false, false) => {}
        (true, true) => {
            let elems = number("throughput_elems")?;
            let rate = number("elems_per_sec")?;
            if elems <= 0.0 || rate <= 0.0 {
                return Err(format!(
                    "throughput must be positive (throughput_elems={elems}, elems_per_sec={rate})"
                ));
            }
            // The rate column is derived as elems / mean seconds; allow 1%
            // slack for rounding.
            let derived = elems / (mean / 1e9);
            if (derived - rate).abs() / derived > 0.01 {
                return Err(format!(
                    "elems_per_sec {rate} disagrees with throughput_elems/mean_ns \
                     (expected ~{derived:.1})"
                ));
            }
        }
        _ => {
            return Err(
                "throughput_elems and elems_per_sec must appear together or not at all".to_string(),
            );
        }
    }
    Ok(())
}

/// Extracts a record's `elems_per_sec` when its `bench` id contains
/// `needle`.
fn rate_of(records: &[BTreeMap<String, Value>], needle: &str) -> Option<f64> {
    records.iter().find_map(
        |record| match (record.get("bench"), record.get("elems_per_sec")) {
            (Some(Value::String(bench)), Some(Value::Number(rate))) if bench.contains(needle) => {
                Some(*rate)
            }
            _ => None,
        },
    )
}

/// Extracts a record's `throughput_elems` when its `bench` id contains
/// `needle`.  The serve-scaling baseline rides per-connection RSS bytes in
/// this column.
fn elems_of(records: &[BTreeMap<String, Value>], needle: &str) -> Option<f64> {
    records.iter().find_map(
        |record| match (record.get("bench"), record.get("throughput_elems")) {
            (Some(Value::String(bench)), Some(Value::Number(elems))) if bench.contains(needle) => {
                Some(*elems)
            }
            _ => None,
        },
    )
}

/// File-specific semantic checks on top of the generic schema: the cache
/// baseline must demonstrate the cache's reason to exist — the hit path
/// beating the uncached phase-table classifier on repeated traffic.
fn check_file_semantics(path: &Path, records: &[BTreeMap<String, Value>]) -> Result<(), String> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name == "BENCH_cache.json" {
        let hit = rate_of(records, "hit_path")
            .ok_or("missing a 'hit_path' record with a throughput pair")?;
        let table = rate_of(records, "table_no_cache")
            .ok_or("missing a 'table_no_cache' record with a throughput pair")?;
        if hit <= table {
            return Err(format!(
                "cache hit path ({hit:.0} elem/s) does not beat the uncached \
                 phase-table classifier ({table:.0} elem/s)"
            ));
        }
    }
    if name == "BENCH_simd.json" {
        // The quantized/SIMD hot path's reason to exist: the recorded
        // dispatch kernel must beat the f64 phase table by at least the
        // advertised 2× (the real margin on the recording host was ~4×, so
        // this bound leaves room for noise without ever accepting a
        // regression to parity).
        let simd = rate_of(records, "simd_dispatch")
            .ok_or("missing a 'simd_dispatch' record with a throughput pair")?;
        let scalar = rate_of(records, "quant_scalar")
            .ok_or("missing a 'quant_scalar' record with a throughput pair")?;
        let table = rate_of(records, "phase_table")
            .ok_or("missing a 'phase_table' record with a throughput pair")?;
        if simd < 2.0 * table {
            return Err(format!(
                "SIMD dispatch ({simd:.0} elem/s) is below 2x the f64 \
                 phase-table classifier ({table:.0} elem/s)"
            ));
        }
        if scalar <= table {
            return Err(format!(
                "quantized scalar kernel ({scalar:.0} elem/s) does not beat \
                 the f64 phase-table classifier ({table:.0} elem/s)"
            ));
        }
    }
    if name == "BENCH_serve_scaling.json" {
        // The evented core's reason to exist: per-connection memory
        // (recorded as RSS bytes per connection in the throughput column)
        // must stay flat from 64 to 1024 held connections.  A
        // thread-per-connection core faults in tens of kilobytes of stack
        // per peer; the reactor's slab entry is a few hundred bytes.
        let per_conn = |needle: &str| {
            elems_of(records, needle)
                .ok_or_else(|| format!("missing an '{needle}' record with a throughput pair"))
        };
        let small = per_conn("evented_64")?;
        per_conn("evented_256")?;
        let large = per_conn("evented_1024")?;
        const PER_CONN_BYTES_CAP: f64 = 256.0 * 1024.0;
        if large > PER_CONN_BYTES_CAP {
            return Err(format!(
                "per-connection memory at 1024 connections is {large:.0} bytes, \
                 over the {PER_CONN_BYTES_CAP:.0}-byte cap"
            ));
        }
        // Flat means the 1024-connection cost does not balloon relative to
        // the 64-connection cost; the 4 KiB floor keeps page-granularity
        // noise on tiny absolute deltas from tripping the ratio.
        let floor = small.max(4096.0);
        if large > 8.0 * floor {
            return Err(format!(
                "per-connection memory grows from {small:.0} bytes at 64 \
                 connections to {large:.0} at 1024 — not flat"
            ));
        }
    }
    if name == "BENCH_calibration.json" {
        // Startup calibration's reason to exist: the plan the probe sweep
        // picks must not lose to the fixed default plan on the same frame
        // stream.  Calibration probes the default plan first, so by
        // construction the winner is at least as fast as the default on the
        // probe frame; the 0.9 factor leaves room for bench noise between
        // the probe frame and the recorded stream without ever accepting a
        // plan that actually regresses.
        let fixed = rate_of(records, "fixed_default")
            .ok_or("missing a 'fixed_default' record with a throughput pair")?;
        let calibrated = rate_of(records, "calibrated[")
            .ok_or("missing a 'calibrated[<spec>]' record with a throughput pair")?;
        if calibrated < 0.9 * fixed {
            return Err(format!(
                "calibrated plan ({calibrated:.0} elem/s) loses to the fixed \
                 default plan ({fixed:.0} elem/s)"
            ));
        }
        // The winning spec is embedded in the bench id
        // (`.../calibrated[classifier=...;tile=...;backend=...]`) and must
        // parse back through the unified `PlanSpec` vocabulary, so the
        // recorded choice is auditable and never drifts from the real
        // plan grammar.
        let bench_id = records
            .iter()
            .find_map(|record| match record.get("bench") {
                Some(Value::String(bench)) if bench.contains("calibrated[") => Some(bench.clone()),
                _ => None,
            })
            .expect("checked above");
        let spec = bench_id
            .split_once("calibrated[")
            .and_then(|(_, rest)| rest.strip_suffix(']'))
            .ok_or_else(|| format!("bench id '{bench_id}' does not end its plan spec with ']'"))?;
        spec.parse::<seg_engine::SegmentPlan>().map_err(|err| {
            format!("bench id '{bench_id}' carries an unparsable plan spec: {err}")
        })?;
    }
    if name == "BENCH_fleet.json" {
        // The fleet's reason to exist: two daemons own twice the cache
        // capacity, so a working set that thrashes one daemon's LRU budget
        // is fully resident across two and serves from the hit path.  The
        // recorded margin is several-fold (a thrashing daemon pays an
        // exact-classifier pass per request); 1.5x leaves room for noise
        // without ever accepting a fleet that fails to scale.
        let single = rate_of(records, "fleet_1")
            .ok_or("missing a 'fleet_1' record with a throughput pair")?;
        let pair = rate_of(records, "fleet_2")
            .ok_or("missing a 'fleet_2' record with a throughput pair")?;
        rate_of(records, "fleet_4").ok_or("missing a 'fleet_4' record with a throughput pair")?;
        if pair < 1.5 * single {
            return Err(format!(
                "2-daemon aggregate hit throughput ({pair:.0} elem/s) is below \
                 1.5x the single daemon's ({single:.0} elem/s)"
            ));
        }
    }
    if name == "BENCH_video.json" {
        // The per-tile delta path's reason to exist: on a streaming-video
        // workload where only part of each frame changes, stitching cached
        // label tiles must beat both re-classifying every frame and the
        // whole-image result cache (which misses on every changed frame).
        let low = rate_of(records, "delta_cr5")
            .ok_or("missing a 'delta_cr5' record with a throughput pair")?;
        let quarter = rate_of(records, "delta_cr25")
            .ok_or("missing a 'delta_cr25' record with a throughput pair")?;
        let uncached = rate_of(records, "uncached")
            .ok_or("missing an 'uncached' record with a throughput pair")?;
        let whole = rate_of(records, "whole_cache")
            .ok_or("missing a 'whole_cache' record with a throughput pair")?;
        if low <= uncached {
            return Err(format!(
                "delta path at 5% change ({low:.0} elem/s) does not beat the \
                 uncached classifier ({uncached:.0} elem/s)"
            ));
        }
        if quarter <= uncached {
            return Err(format!(
                "delta path at 25% change ({quarter:.0} elem/s) does not beat \
                 the uncached classifier ({uncached:.0} elem/s)"
            ));
        }
        if quarter <= whole {
            return Err(format!(
                "delta path at 25% change ({quarter:.0} elem/s) does not beat \
                 the whole-image cache path ({whole:.0} elem/s)"
            ));
        }
    }
    Ok(())
}

fn check_file(path: &Path) -> Result<usize, Vec<String>> {
    let content = match std::fs::read_to_string(path) {
        Ok(content) => content,
        Err(e) => return Err(vec![format!("{}: unreadable: {e}", path.display())]),
    };
    let mut problems = Vec::new();
    let mut records = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let located = |err: String| format!("{}:{}: {err}", path.display(), lineno + 1);
        match parse_flat_object(line) {
            Ok(record) => match check_record(&record) {
                Ok(()) => records.push(record),
                Err(err) => problems.push(located(err)),
            },
            Err(err) => problems.push(located(err)),
        }
    }
    if records.is_empty() && problems.is_empty() {
        problems.push(format!("{}: no baseline records", path.display()));
    }
    if let Err(err) = check_file_semantics(path, &records) {
        problems.push(format!("{}: {err}", path.display()));
    }
    if problems.is_empty() {
        Ok(records.len())
    } else {
        Err(problems)
    }
}

fn default_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(".")
        .into_iter()
        .flatten()
        .flatten()
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

fn main() {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let files = if args.is_empty() {
        default_files()
    } else {
        args
    };
    if files.is_empty() {
        eprintln!("check_baselines: no BENCH_*.json files found in the current directory");
        std::process::exit(1);
    }
    let mut total = 0usize;
    let mut failed = false;
    for path in &files {
        match check_file(path) {
            Ok(records) => {
                println!("{}: {records} records ok", path.display());
                total += records;
            }
            Err(problems) => {
                failed = true;
                for problem in problems {
                    eprintln!("check_baselines: {problem}");
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "check_baselines: {total} records across {} files parse and carry the expected fields",
        files.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    // 5000 elems in 1000 ns -> 5e9 elems/sec.
    const GOOD: &str = r#"{"group":"g","bench":"b/one","mean_ns":1000.0,"min_ns":900.0,"iters":10,"throughput_elems":5000,"elems_per_sec":5000000000.0}"#;

    #[test]
    fn a_real_baseline_record_passes() {
        let record = parse_flat_object(GOOD).unwrap();
        assert!(check_record(&record).is_ok());
    }

    #[test]
    fn missing_and_malformed_fields_are_reported() {
        let record = parse_flat_object(r#"{"group":"g"}"#).unwrap();
        assert!(check_record(&record).unwrap_err().contains("bench"));
        let record = parse_flat_object(GOOD.replace("900.0", "2000.0").as_str()).unwrap();
        assert!(check_record(&record).unwrap_err().contains("min_ns"));
        let record = parse_flat_object(GOOD.replace("5000000000.0", "1.0").as_str()).unwrap();
        assert!(check_record(&record).unwrap_err().contains("disagrees"));
        let record = parse_flat_object(GOOD.replace(":10,", ":10.5,").as_str()).unwrap();
        assert!(check_record(&record).unwrap_err().contains("iters"));
    }

    #[test]
    fn throughput_pair_is_optional_but_must_be_complete() {
        // The shim omits the pair for benches without a .throughput() call.
        let record = parse_flat_object(
            r#"{"group":"g","bench":"b/one","mean_ns":1000.0,"min_ns":900.0,"iters":10}"#,
        )
        .unwrap();
        assert!(check_record(&record).is_ok());
        // Half a pair is a schema violation.
        let record = parse_flat_object(
            r#"{"group":"g","bench":"b","mean_ns":1000.0,"min_ns":900.0,"iters":10,"throughput_elems":5000}"#,
        )
        .unwrap();
        assert!(check_record(&record).unwrap_err().contains("together"));
    }

    #[test]
    fn cache_baseline_semantics_require_the_hit_path_to_win() {
        let record = |bench: &str, rate: f64| {
            parse_flat_object(&format!(
                r#"{{"group":"ablation_cache","bench":"{bench}","mean_ns":1000.0,"min_ns":900.0,"iters":10,"throughput_elems":1000,"elems_per_sec":{rate}}}"#
            ))
            .unwrap()
        };
        let path = Path::new("BENCH_cache.json");
        let good = vec![
            record("repeat32_96px/hit_path", 1e9),
            record("repeat32_96px/table_no_cache", 1e8),
        ];
        assert!(check_file_semantics(path, &good).is_ok());
        let losing = vec![
            record("repeat32_96px/hit_path", 1e8),
            record("repeat32_96px/table_no_cache", 1e9),
        ];
        assert!(check_file_semantics(path, &losing)
            .unwrap_err()
            .contains("does not beat"));
        let incomplete = vec![record("repeat32_96px/hit_path", 1e9)];
        assert!(check_file_semantics(path, &incomplete)
            .unwrap_err()
            .contains("table_no_cache"));
        // Other baseline files carry no cache-specific requirements.
        assert!(check_file_semantics(Path::new("BENCH_throughput.json"), &incomplete).is_ok());
    }

    #[test]
    fn fleet_baseline_semantics_require_the_2_daemon_scaling_win() {
        let record = |bench: &str, rate: f64| {
            parse_flat_object(&format!(
                r#"{{"group":"ablation_fleet","bench":"{bench}","mean_ns":1000.0,"min_ns":900.0,"iters":10,"throughput_elems":24,"elems_per_sec":{rate}}}"#
            ))
            .unwrap()
        };
        let path = Path::new("BENCH_fleet.json");
        let good = vec![
            record("daemons/fleet_1", 700.0),
            record("daemons/fleet_2", 13000.0),
            record("daemons/fleet_4", 12000.0),
        ];
        assert!(check_file_semantics(path, &good).is_ok());
        // 1.4x is under the 1.5x bar.
        let flat = vec![
            record("daemons/fleet_1", 1000.0),
            record("daemons/fleet_2", 1400.0),
            record("daemons/fleet_4", 1400.0),
        ];
        assert!(check_file_semantics(path, &flat)
            .unwrap_err()
            .contains("below"));
        let incomplete = vec![
            record("daemons/fleet_1", 700.0),
            record("daemons/fleet_2", 13000.0),
        ];
        assert!(check_file_semantics(path, &incomplete)
            .unwrap_err()
            .contains("fleet_4"));
        // Other baseline files carry no fleet-specific requirements.
        assert!(check_file_semantics(Path::new("BENCH_throughput.json"), &incomplete).is_ok());
    }

    #[test]
    fn simd_baseline_semantics_require_the_recorded_2x_win() {
        let record = |bench: &str, rate: f64| {
            parse_flat_object(&format!(
                r#"{{"group":"ablation_simd","bench":"{bench}","mean_ns":1000.0,"min_ns":900.0,"iters":10,"throughput_elems":1000,"elems_per_sec":{rate}}}"#
            ))
            .unwrap()
        };
        let path = Path::new("BENCH_simd.json");
        let good = vec![
            record("classify_rgb/phase_table", 1e8),
            record("classify_rgb/quant_scalar", 1.5e8),
            record("classify_rgb/simd_dispatch", 4e8),
        ];
        assert!(check_file_semantics(path, &good).is_ok());
        // A SIMD rate under 2x the table is a regression even if it still wins.
        let narrow = vec![
            record("classify_rgb/phase_table", 1e8),
            record("classify_rgb/quant_scalar", 1.5e8),
            record("classify_rgb/simd_dispatch", 1.9e8),
        ];
        assert!(check_file_semantics(path, &narrow)
            .unwrap_err()
            .contains("below 2x"));
        // The scalar quantized kernel must at least beat the f64 table.
        let scalar_loses = vec![
            record("classify_rgb/phase_table", 1e8),
            record("classify_rgb/quant_scalar", 9e7),
            record("classify_rgb/simd_dispatch", 4e8),
        ];
        assert!(check_file_semantics(path, &scalar_loses)
            .unwrap_err()
            .contains("does not beat"));
        let incomplete = vec![record("classify_rgb/simd_dispatch", 4e8)];
        assert!(check_file_semantics(path, &incomplete)
            .unwrap_err()
            .contains("quant_scalar"));
        // Other baseline files carry no SIMD-specific requirements.
        assert!(check_file_semantics(Path::new("BENCH_tiling.json"), &incomplete).is_ok());
    }

    #[test]
    fn serve_scaling_semantics_require_flat_per_connection_memory() {
        // elems carries RSS bytes per connection in this baseline; mean_ns
        // only has to keep the generic rate-consistency check happy.
        let record = |bench: &str, per_conn_bytes: f64| {
            let rate = per_conn_bytes / (1000.0 / 1e9);
            parse_flat_object(&format!(
                r#"{{"group":"ablation_serve_scaling","bench":"{bench}","mean_ns":1000.0,"min_ns":900.0,"iters":10,"throughput_elems":{per_conn_bytes},"elems_per_sec":{rate}}}"#
            ))
            .unwrap()
        };
        let path = Path::new("BENCH_serve_scaling.json");
        let flat = vec![
            record("connections/evented_64", 4800.0),
            record("connections/evented_256", 1300.0),
            record("connections/evented_1024", 500.0),
        ];
        assert!(check_file_semantics(path, &flat).is_ok());
        // Ballooning per-connection memory at 1024 connections fails, both
        // in absolute terms and relative to the 64-connection leg.
        let over_cap = vec![
            record("connections/evented_64", 4800.0),
            record("connections/evented_256", 64.0 * 1024.0),
            record("connections/evented_1024", 512.0 * 1024.0),
        ];
        assert!(check_file_semantics(path, &over_cap)
            .unwrap_err()
            .contains("cap"));
        let not_flat = vec![
            record("connections/evented_64", 4800.0),
            record("connections/evented_256", 16.0 * 1024.0),
            record("connections/evented_1024", 64.0 * 1024.0),
        ];
        assert!(check_file_semantics(path, &not_flat)
            .unwrap_err()
            .contains("not flat"));
        // Page-granularity noise on tiny deltas stays under the 4 KiB floor.
        let tiny = vec![
            record("connections/evented_64", 1.0),
            record("connections/evented_256", 1.0),
            record("connections/evented_1024", 3000.0),
        ];
        assert!(check_file_semantics(path, &tiny).is_ok());
        let incomplete = vec![record("connections/evented_1024", 500.0)];
        assert!(check_file_semantics(path, &incomplete)
            .unwrap_err()
            .contains("evented_64"));
        // Other baseline files carry no scaling-specific requirements.
        assert!(check_file_semantics(Path::new("BENCH_cache2.json"), &incomplete).is_ok());
    }

    #[test]
    fn video_baseline_semantics_require_the_delta_path_to_win() {
        let record = |bench: &str, rate: f64| {
            parse_flat_object(&format!(
                r#"{{"group":"ablation_video","bench":"{bench}","mean_ns":1000.0,"min_ns":900.0,"iters":10,"throughput_elems":1000,"elems_per_sec":{rate}}}"#
            ))
            .unwrap()
        };
        let path = Path::new("BENCH_video.json");
        let good = vec![
            record("video8_256px/delta_cr5", 2.5e8),
            record("video8_256px/delta_cr25", 1.4e8),
            record("video8_256px/uncached", 9e7),
            record("video8_256px/whole_cache", 8.7e7),
        ];
        assert!(check_file_semantics(path, &good).is_ok());
        // The delta path losing to the uncached classifier at a partial
        // change rate defeats its purpose.
        let slow_delta = vec![
            record("video8_256px/delta_cr5", 2.5e8),
            record("video8_256px/delta_cr25", 8e7),
            record("video8_256px/uncached", 9e7),
            record("video8_256px/whole_cache", 8.7e7),
        ];
        assert!(check_file_semantics(path, &slow_delta)
            .unwrap_err()
            .contains("uncached classifier"));
        // ... as does losing to the whole-image cache on the same stream.
        let slow_vs_whole = vec![
            record("video8_256px/delta_cr5", 2.5e8),
            record("video8_256px/delta_cr25", 1e8),
            record("video8_256px/uncached", 9e7),
            record("video8_256px/whole_cache", 1.2e8),
        ];
        assert!(check_file_semantics(path, &slow_vs_whole)
            .unwrap_err()
            .contains("whole-image cache"));
        let incomplete = vec![record("video8_256px/delta_cr25", 1.4e8)];
        assert!(check_file_semantics(path, &incomplete)
            .unwrap_err()
            .contains("delta_cr5"));
        // Other baseline files carry no video-specific requirements.
        assert!(check_file_semantics(Path::new("BENCH_cache.json"), &incomplete).is_err());
        assert!(check_file_semantics(Path::new("BENCH_tiling.json"), &incomplete).is_ok());
    }

    #[test]
    fn calibration_baseline_semantics_require_the_probed_plan_to_hold_up() {
        let record = |bench: &str, rate: f64| {
            parse_flat_object(&format!(
                r#"{{"group":"ablation_calibration","bench":"{bench}","mean_ns":1000.0,"min_ns":900.0,"iters":10,"throughput_elems":1000,"elems_per_sec":{rate}}}"#
            ))
            .unwrap()
        };
        let path = Path::new("BENCH_calibration.json");
        let spec = "calibrated[classifier=simd;tile=32x32;backend=threads:4]";
        let good = vec![
            record("stream8_192px/fixed_default", 1e8),
            record(&format!("stream8_192px/{spec}"), 3e8),
        ];
        assert!(check_file_semantics(path, &good).is_ok());
        // Within the 0.9 noise band is fine; a real regression is not.
        let noisy = vec![
            record("stream8_192px/fixed_default", 1e8),
            record(&format!("stream8_192px/{spec}"), 9.5e7),
        ];
        assert!(check_file_semantics(path, &noisy).is_ok());
        let regressed = vec![
            record("stream8_192px/fixed_default", 1e8),
            record(&format!("stream8_192px/{spec}"), 5e7),
        ];
        assert!(check_file_semantics(path, &regressed)
            .unwrap_err()
            .contains("loses to"));
        // The embedded spec must parse through the real plan grammar.
        let junk_spec = vec![
            record("stream8_192px/fixed_default", 1e8),
            record("stream8_192px/calibrated[classifier=warp]", 3e8),
        ];
        assert!(check_file_semantics(path, &junk_spec)
            .unwrap_err()
            .contains("unparsable plan spec"));
        let unterminated = vec![
            record("stream8_192px/fixed_default", 1e8),
            record("stream8_192px/calibrated[classifier=table", 3e8),
        ];
        assert!(check_file_semantics(path, &unterminated)
            .unwrap_err()
            .contains("']'"));
        let incomplete = vec![record(&format!("stream8_192px/{spec}"), 3e8)];
        assert!(check_file_semantics(path, &incomplete)
            .unwrap_err()
            .contains("fixed_default"));
        // Other baseline files carry no calibration-specific requirements.
        assert!(check_file_semantics(Path::new("BENCH_tiling.json"), &incomplete).is_ok());
    }

    #[test]
    fn parser_rejects_broken_json_without_panicking() {
        for bad in [
            "",
            "{",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,"#,
            r#"{"a":1} extra"#,
            r#"{"a":{"nested":1}}"#,
            r#"{"a":[1]}"#,
            r#"{"a":1,"a":2}"#,
            r#"{"a":frue}"#,
            r#"{"a":"unterminated}"#,
        ] {
            assert!(parse_flat_object(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn parser_handles_strings_escapes_bools_and_null() {
        let object =
            parse_flat_object(r#"{ "s" : "a\"b\\c" , "t" : true , "f" : false , "n" : null }"#)
                .unwrap();
        assert_eq!(object["s"], Value::String("a\"b\\c".to_string()));
        assert_eq!(object["t"], Value::Bool(true));
        assert_eq!(object["f"], Value::Bool(false));
        assert_eq!(object["n"], Value::Null);
        assert_eq!(parse_flat_object("{}").unwrap().len(), 0);
    }
}
