//! Shared fixtures for the benchmark harness.
//!
//! Every bench target regenerates one of the paper's tables or figures (or a
//! design ablation from DESIGN.md §A1–A3).  The helpers here build the small,
//! deterministic workloads the benches run on, so the measured code is always
//! the library code itself rather than dataset generation.
//!
//! # Example
//!
//! ```
//! use bench::synthetic_rgb;
//!
//! let img = synthetic_rgb(16, 8, 1);
//! assert_eq!(img.dimensions(), (16, 8));
//! assert_eq!(img, synthetic_rgb(16, 8, 1)); // deterministic in the seed
//! ```

use datasets::{
    LabeledImage, PascalVocLikeConfig, PascalVocLikeDataset, XViewLikeConfig, XViewLikeDataset,
};
use imaging::{Rgb, RgbImage};

/// A deterministic pseudo-random RGB image of the given size (no external RNG,
/// so benches do not pay generator setup costs).
pub fn synthetic_rgb(width: usize, height: usize, seed: u64) -> RgbImage {
    RgbImage::from_fn(width, height, |x, y| {
        let v = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((x as u64) << 24)
            .wrapping_add((y as u64) << 8)
            .wrapping_mul(0xD134_2543_DE82_EF95);
        Rgb::new(
            (v % 256) as u8,
            ((v >> 16) % 256) as u8,
            ((v >> 32) % 256) as u8,
        )
    })
}

/// A small VOC-like evaluation split used by the Table III / figure benches.
pub fn voc_split(len: usize, size: usize, seed: u64) -> Vec<LabeledImage> {
    PascalVocLikeDataset::new(PascalVocLikeConfig {
        len,
        width: size,
        height: size * 3 / 4,
        seed,
        ..PascalVocLikeConfig::default()
    })
    .iter()
    .collect()
}

/// A small xVIEW2-like evaluation split.
pub fn xview_split(len: usize, size: usize, seed: u64) -> Vec<LabeledImage> {
    XViewLikeDataset::new(XViewLikeConfig {
        len,
        width: size,
        height: size,
        seed,
        ..XViewLikeConfig::default()
    })
    .iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_and_sized() {
        let a = synthetic_rgb(32, 16, 5);
        let b = synthetic_rgb(32, 16, 5);
        assert_eq!(a, b);
        assert_eq!(a.dimensions(), (32, 16));
        assert_ne!(a, synthetic_rgb(32, 16, 6));
        assert_eq!(voc_split(2, 48, 1).len(), 2);
        assert_eq!(xview_split(2, 48, 1).len(), 2);
    }
}
