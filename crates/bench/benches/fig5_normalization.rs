//! Fig. 5 bench: the normalisation ablation.  Prints the segment /
//! connected-component comparison and measures whether skipping the `/255`
//! normalisation changes the per-image cost (it should not — the ablation is
//! about quality, not speed).

use bench::synthetic_rgb;
use criterion::{criterion_group, criterion_main, Criterion};
use imaging::Segmenter;
use iqft_seg::IqftRgbSegmenter;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::figures::fig5_report(&experiments::SegmentEngine::default(), None)
    );
    let img = synthetic_rgb(128, 96, 55);
    let mut group = c.benchmark_group("fig5_normalization");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("with_normalization", |b| {
        let seg = IqftRgbSegmenter::paper_default();
        b.iter(|| seg.segment_rgb(&img))
    });
    group.bench_function("without_normalization", |b| {
        let seg = IqftRgbSegmenter::paper_default().with_normalization(false);
        b.iter(|| seg.segment_rgb(&img))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
