//! Ablation A9: startup plan calibration vs. the workspace's fixed default
//! plan — does a short probe sweep at boot actually buy throughput on the
//! host it runs on?
//!
//! Every other recorded baseline is a one-container artifact; the fixed
//! `SegmentPlan::default()` is tuned for nothing in particular.  This
//! ablation runs `seg_engine::calibrate` once in setup (its cost is *not*
//! measured — it is a boot-time expense) and then drives the same synthetic
//! frame stream through both plans:
//!
//! * `fixed_default` — `SegmentPlan::default()`, the plan a server boots
//!   with when nobody passes `--plan`;
//! * `calibrated[<spec>]` — the plan `--plan auto` would pick here, with
//!   the winning spec embedded in the bench id so `check_baselines` can
//!   parse it back through the `PlanSpec` vocabulary and a reader can see
//!   *which* plan won on the recording host.
//!
//! The setup asserts both plans produce byte-identical labels before any
//! measurement runs, mirroring the repo's determinism discipline: the
//! calibrated plan must be a pure performance change.
//!
//! Snapshot a baseline with
//! `CRITERION_JSON=BENCH_calibration.json cargo bench --bench ablation_calibration`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imaging::RgbImage;
use iqft_seg::IqftClassifier;
use seg_engine::calibrate::{calibrate, synthetic_frame, CalibrationConfig};
use seg_engine::SegmentPlan;
use std::time::Duration;

const FRAMES: usize = 8;
const SIZE: usize = 192;

/// The measured workload: a stream of distinct synthetic frames (seeded off
/// the calibration frame generator, so the bench input is as deterministic
/// as the probe input).
fn frame_stream() -> Vec<RgbImage> {
    (0..FRAMES)
        .map(|i| synthetic_frame(SIZE, SIZE, 0xA911 + i as u64))
        .collect()
}

/// Segments every frame in the stream with `plan`, reusing one label buffer
/// the way the serving pipeline's arena does.
fn drive(plan: &SegmentPlan, classifier: &IqftClassifier, frames: &[RgbImage]) {
    let mut labels = Vec::new();
    for frame in frames {
        plan.segment_rgb_into(classifier, frame, &mut labels);
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_calibration");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let frames = frame_stream();
    group.throughput(Throughput::Elements(
        frames.iter().map(|f| f.len() as u64).sum(),
    ));

    // Boot-time calibration, outside the measurement loop.
    let report = calibrate(&CalibrationConfig::default(), IqftClassifier::paper_default);
    let fixed = SegmentPlan::default();
    let calibrated = report.plan;
    eprintln!(
        "ablation_calibration: {} -> [{calibrated}]",
        report.summary()
    );

    let fixed_classifier = IqftClassifier::for_plan(&fixed);
    let calibrated_classifier = IqftClassifier::for_plan(&calibrated);

    // Determinism discipline: the calibrated plan must change only cost,
    // never labels.
    for frame in &frames {
        assert_eq!(
            calibrated.segment_rgb(&calibrated_classifier, frame),
            fixed.segment_rgb(&fixed_classifier, frame),
            "calibrated plan [{calibrated}] diverges from the default plan"
        );
    }

    group.bench_with_input(
        BenchmarkId::new("stream8_192px", "fixed_default"),
        &frames,
        |b, frames| {
            drive(&fixed, &fixed_classifier, frames);
            b.iter(|| drive(&fixed, &fixed_classifier, frames))
        },
    );

    // The winning spec rides in the bench id: `check_baselines` parses it
    // back out and a future reader can tell which plan this container chose.
    group.bench_with_input(
        BenchmarkId::new("stream8_192px", format!("calibrated[{calibrated}]")),
        &frames,
        |b, frames| {
            drive(&calibrated, &calibrated_classifier, frames);
            b.iter(|| drive(&calibrated, &calibrated_classifier, frames))
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
