//! Table III bench: the four-method mIOU / runtime comparison on both
//! synthetic datasets.  Prints a reduced-size reproduction of the table
//! (12 VOC-like scenes + 12 xVIEW2-like tiles at 96 px) and measures the
//! per-image segmentation cost of every method — the quantity behind the
//! paper's "Runtime (sec.)" rows.

use bench::{voc_split, xview_split};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::tables::{table3_run, table3_text, Table3Config};
use experiments::Method;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let config = Table3Config {
        voc_images: 12,
        xview_images: 12,
        image_size: 96,
        seed: 42,
        ..Table3Config::default()
    };
    let summaries = table3_run(&config);
    println!("{}", table3_text(&summaries));

    let voc = voc_split(1, 128, 3);
    let xview = xview_split(1, 128, 4);
    let mut group = c.benchmark_group("table3_runtime_per_image");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for method in Method::table3_methods(42) {
        let segmenter = method.build();
        group.bench_with_input(
            BenchmarkId::new("voc_like_128px", method.name()),
            &voc[0],
            |b, sample| b.iter(|| segmenter.segment_rgb(&sample.image)),
        );
        group.bench_with_input(
            BenchmarkId::new("xview_like_128px", method.name()),
            &xview[0],
            |b, sample| b.iter(|| segmenter.segment_rgb(&sample.image)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
