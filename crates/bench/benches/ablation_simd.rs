//! Ablation A6: the quantized / SIMD classification hot path against the
//! eager f64 `PhaseTable`, measured on the bare row kernel.
//!
//! Every bench calls `PixelClassifier::classify_rgb_slice_into` on one flat
//! pixel buffer — no pipeline, no tiling, no buffer management — so the
//! numbers isolate the per-pixel classification cost the quantization is
//! meant to cut.  Three headline rows feed the recorded baseline:
//!
//! * `phase_table`   — the eager f64 table (the previous fast path),
//! * `quant_scalar`  — the i16 quantized kernel pinned to portable scalar,
//! * `simd_dispatch` — the quantized kernel at the runtime-detected level.
//!
//! The remaining `kernel_*` rows pin each supported `std::arch` level for
//! diagnosis.  Setup asserts all paths produce byte-identical labels — the
//! exactness-oracle contract — so a recorded throughput win can never come
//! from a kernel that quietly diverges.
//!
//! Snapshot a baseline with
//! `CRITERION_JSON=BENCH_simd.json cargo bench --bench ablation_simd`;
//! `check_baselines` then enforces that `simd_dispatch` beats `phase_table`
//! by the recorded margin.

use bench::synthetic_rgb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imaging::{PixelClassifier, Rgb};
use iqft_seg::{IqftClassifier, QuantizedPhaseTable, SimdLevel};
use seg_engine::ClassifierKind;
use std::time::Duration;

const IMAGES: usize = 16;
const SIZE: usize = 96;

/// One flat buffer holding the same 16-image synthetic batch the pipeline
/// ablations stream, so per-pixel rates are comparable across baselines.
fn flat_pixels() -> Vec<Rgb<u8>> {
    (0..IMAGES)
        .flat_map(|i| {
            synthetic_rgb(SIZE, SIZE * 3 / 4, 100 + i as u64)
                .as_slice()
                .to_vec()
        })
        .collect()
}

fn labels_of(classifier: &dyn PixelClassifier, pixels: &[Rgb<u8>]) -> Vec<u32> {
    let mut out = vec![0u32; pixels.len()];
    classifier.classify_rgb_slice_into(pixels, &mut out);
    out
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_simd");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let pixels = flat_pixels();
    group.throughput(Throughput::Elements(pixels.len() as u64));

    let table = IqftClassifier::paper_default(ClassifierKind::Table);
    let quant = IqftClassifier::paper_default(ClassifierKind::Quant);
    let simd = IqftClassifier::paper_default(ClassifierKind::Simd);
    let levels: Vec<QuantizedPhaseTable> = SimdLevel::ALL
        .iter()
        .filter(|level| level.is_supported())
        .map(|&level| QuantizedPhaseTable::paper_default().with_simd(level))
        .collect();

    // The exactness contract, asserted before anything is timed: every
    // quantized path must label the bench buffer byte-identically to the
    // f64 table, so a recorded win cannot come from a divergent kernel.
    let reference = labels_of(&table, &pixels);
    assert_eq!(labels_of(&quant, &pixels), reference);
    assert_eq!(labels_of(&simd, &pixels), reference);
    for kernel in &levels {
        assert_eq!(labels_of(kernel, &pixels), reference);
    }

    let mut run = |label: &str, classifier: &dyn PixelClassifier| {
        let mut out = vec![0u32; pixels.len()];
        group.bench_with_input(
            BenchmarkId::new("classify_rgb", label),
            &pixels,
            |b, pixels| b.iter(|| classifier.classify_rgb_slice_into(pixels, &mut out)),
        );
    };
    run("phase_table", &table);
    run("quant_scalar", &quant);
    run("simd_dispatch", &simd);
    for kernel in &levels {
        if kernel.simd_level() != SimdLevel::Scalar {
            run(&format!("kernel_{}", kernel.simd_level().name()), kernel);
        }
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
