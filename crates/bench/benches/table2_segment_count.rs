//! Table II bench: the random-input segment-count sweep.  Prints the
//! reproduced table (at 20k samples) and measures the per-configuration cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iqft_seg::analysis::max_segments_for_theta;
use iqft_seg::ThetaParams;
use std::f64::consts::PI;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::tables::table2_text(20_000, 7));
    let mut group = c.benchmark_group("table2_segment_count");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (label, theta) in [("pi_over_2", PI / 2.0), ("pi", PI), ("2pi", 2.0 * PI)] {
        group.bench_with_input(
            BenchmarkId::new("occupancy_10k_samples", label),
            &theta,
            |b, &theta| b.iter(|| max_segments_for_theta(ThetaParams::uniform(theta), 10_000, 7)),
        );
    }
    group.bench_function("occupancy_mixed_10k_samples", |b| {
        b.iter(|| max_segments_for_theta(ThetaParams::mixed(), 10_000, 7))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
