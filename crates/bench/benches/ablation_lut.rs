//! Ablation A2: lookup-table acceleration (DESIGN.md §4).  Compares the
//! direct per-pixel classifier with the colour-memoising LUT wrapper on
//! images with few vs many distinct colours.

use bench::{synthetic_rgb, voc_split};
use criterion::{criterion_group, criterion_main, Criterion};
use imaging::Segmenter;
use iqft_seg::{IqftRgbSegmenter, LutRgbSegmenter};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    // A dataset-style image (hundreds of distinct colours after blur+noise)
    // and a worst-case image (essentially all-distinct colours).
    let natural = voc_split(1, 128, 17)[0].image.clone();
    let adversarial = synthetic_rgb(128, 96, 23);
    let mut group = c.benchmark_group("ablation_lut");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("direct_natural_image", |b| {
        let seg = IqftRgbSegmenter::paper_default();
        b.iter(|| seg.segment_rgb(&natural))
    });
    group.bench_function("lut_natural_image", |b| {
        let seg = LutRgbSegmenter::paper_default();
        b.iter(|| seg.segment_rgb(&natural))
    });
    group.bench_function("direct_adversarial_image", |b| {
        let seg = IqftRgbSegmenter::paper_default();
        b.iter(|| seg.segment_rgb(&adversarial))
    });
    group.bench_function("lut_adversarial_image", |b| {
        let seg = LutRgbSegmenter::paper_default();
        b.iter(|| seg.segment_rgb(&adversarial))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
