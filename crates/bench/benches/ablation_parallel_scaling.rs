//! Ablation A1: parallel scaling of the RGB segmenter (DESIGN.md §4).
//! Measures per-image segmentation across image sizes and execution backends
//! (serial, scoped threads, Rayon) — the design knob exposed by `xpar`.

use bench::synthetic_rgb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imaging::Segmenter;
use iqft_seg::IqftRgbSegmenter;
use std::time::Duration;
use xpar::Backend;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in [128usize, 256] {
        let img = synthetic_rgb(size, size, 9);
        group.throughput(Throughput::Elements((size * size) as u64));
        let backends: Vec<(&str, Backend)> = vec![
            ("serial", Backend::Serial),
            ("threads_2", Backend::Threads(2)),
            ("threads_all", Backend::Threads(0)),
            ("rayon", Backend::Rayon),
        ];
        for (name, backend) in backends {
            group.bench_with_input(
                BenchmarkId::new(format!("{size}x{size}"), name),
                &img,
                |b, img| {
                    let seg = IqftRgbSegmenter::paper_default().with_backend(backend);
                    b.iter(|| seg.segment_rgb(img))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
