//! Ablation A1: parallel scaling of the RGB segmenter (DESIGN.md §4).
//!
//! Exercises the `SegmentEngine` across image sizes and execution policies —
//! serial, the scoped-thread backend at 1/2/4/8 threads and with one worker
//! per core, and the Rayon policy (which falls back to scoped threads when
//! the `rayon-backend` feature of `xpar` is off).  `BENCH_parallel_scaling
//! .json` at the repo root snapshots a baseline of this target (see the
//! criterion shim's `CRITERION_JSON` export).

use bench::synthetic_rgb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iqft_seg::{IqftRgbSegmenter, SegmentEngine};
use std::time::Duration;
use xpar::Backend;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in [128usize, 256] {
        let img = synthetic_rgb(size, size, 9);
        group.throughput(Throughput::Elements((size * size) as u64));
        let mut engines: Vec<(String, SegmentEngine)> =
            vec![("serial".to_string(), SegmentEngine::serial())];
        for threads in [1usize, 2, 4, 8] {
            engines.push((
                format!("threads_{threads}"),
                SegmentEngine::with_threads(threads),
            ));
        }
        engines.push(("threads_all".to_string(), SegmentEngine::with_threads(0)));
        engines.push(("rayon".to_string(), SegmentEngine::new(Backend::Rayon)));
        for (name, engine) in engines {
            group.bench_with_input(
                BenchmarkId::new(format!("{size}x{size}"), name),
                &img,
                |b, img| {
                    let seg = IqftRgbSegmenter::paper_default();
                    b.iter(|| engine.segment_rgb(&seg, img))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
