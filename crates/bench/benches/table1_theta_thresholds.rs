//! Table I bench: θ ↔ threshold conversion (eq. 15) and the full table
//! regeneration.  Prints the reproduced table once so `cargo bench` output
//! doubles as an experiment log.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::tables::table1_text());
    let mut group = c.benchmark_group("table1_theta_thresholds");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("thresholds_for_theta_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 1..=64 {
                let theta = i as f64 * std::f64::consts::PI / 8.0;
                for t in iqft_seg::theta::thresholds_for_theta(black_box(theta)) {
                    acc += t;
                }
            }
            acc
        })
    });
    group.bench_function("table1_rows", |b| b.iter(iqft_seg::theta::table1_rows));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
