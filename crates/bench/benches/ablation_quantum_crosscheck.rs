//! Ablation A3: quantum cross-check (DESIGN.md §4, eqs. 1–11).  Measures the
//! cost of the genuine state-vector IQFT against the classical closed form
//! used by Algorithm 1, and of building the QFT/IQFT unitaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iqft_seg::IqftRgbSegmenter;
use quantum::{phase_product_state, Circuit};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!(
        "QFT circuit vs DFT matrix max deviation (3 qubits): {:.2e}",
        quantum::circuit::qft_circuit_deviation(3)
    );
    let mut group = c.benchmark_group("ablation_quantum_crosscheck");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("classical_probabilities_per_pixel", |b| {
        let seg = IqftRgbSegmenter::paper_default();
        b.iter(|| seg.probabilities_from_phases(black_box(0.9), black_box(1.7), black_box(2.4)))
    });
    group.bench_function("statevector_iqft_per_pixel", |b| {
        let circuit = Circuit::iqft(3);
        b.iter(|| {
            let mut state = phase_product_state(&[black_box(2.4), 1.7, 0.9]);
            circuit.apply(&mut state);
            state.probabilities()
        })
    });
    for n in [3usize, 6, 10] {
        group.bench_with_input(BenchmarkId::new("iqft_circuit_apply", n), &n, |b, &n| {
            let circuit = Circuit::iqft(n);
            let state = quantum::StateVector::zero_state(n);
            b.iter(|| {
                let mut s = state.clone();
                circuit.apply(&mut s);
                s
            })
        });
    }
    group.bench_function("idft_matrix_8x8_construction", |b| {
        b.iter(|| quantum::idft_matrix(black_box(8)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
