//! Ablation A6: per-tile delta caching on a streaming-video workload — the
//! stitched delta path against re-classifying every frame and against the
//! whole-image result cache, swept over the fraction of the frame that
//! changes between consecutive frames.
//!
//! The workload is a deterministic synthetic video: 8 frames of 256x192,
//! where each frame mutates a change-rate-controlled subset of 64px blocks
//! relative to its predecessor.  Pipelines tile at 32x32, so one mutated
//! block dirties at most 4 of the 48 tiles.  Configurations:
//!
//! * `delta_cr0` / `delta_cr5` / `delta_cr25` / `delta_cr100` — the
//!   per-tile delta path at ~0/5/25/100% of blocks mutated per frame;
//! * `uncached` — no cache, every frame re-classifies every pixel (the
//!   phase-table fast path);
//! * `whole_cache` — the whole-image result cache on the same 25% stream:
//!   every frame's content differs from its predecessor, so the image-level
//!   hash misses every time and the cache only adds overhead.
//!
//! Both caches are deliberately small (two frames' worth of label bytes,
//! one shard) so cycling the stream inside `b.iter` stays honest: a frame's
//! *changed* tile variants are evicted before the loop wraps around, while
//! tiles that are stable across the stream are re-touched every frame and
//! stay resident — exactly the steady state of a live camera.  The setup
//! asserts every stitched delta result is byte-identical to fresh
//! whole-image segmentation before anything is measured.
//!
//! Snapshot a baseline with
//! `CRITERION_JSON=BENCH_video.json cargo bench --bench ablation_video`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datasets::{synthetic_video, VideoConfig};
use imaging::RgbImage;
use iqft_pipeline::{CacheConfig, PipelineConfig, SegmentPipeline};
use iqft_seg::PhaseTable;
use seg_engine::{SegmentEngine, SegmentPlan, Tiling};
use std::time::Duration;

const FRAMES: usize = 8;
const WIDTH: usize = 256;
const HEIGHT: usize = 192;
const TILE: usize = 32;

/// A deterministic video stream at the given per-frame block change rate.
fn stream(change_rate: f64) -> Vec<RgbImage> {
    synthetic_video(&VideoConfig {
        frames: FRAMES,
        width: WIDTH,
        height: HEIGHT,
        change_rate,
        block: 0,
        seed: 600,
    })
}

/// Two frames' worth of label bytes: big enough that every stable tile
/// stays resident, small enough that stale changed-tile variants (and, for
/// the whole-image configuration, stale frames) are evicted before the
/// bench loop cycles back to the first frame.
fn small_cache() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 2 * WIDTH * HEIGHT * 4,
        shards: 1,
    }
}

fn delta_pipeline() -> SegmentPipeline<PhaseTable> {
    SegmentPipeline::new(SegmentEngine::with_threads(1), PhaseTable::paper_default())
        .with_config(PipelineConfig {
            tiling: Tiling::Tiles {
                width: TILE,
                height: TILE,
            },
            ..PipelineConfig::default()
        })
        .with_cache(small_cache(), &SegmentPlan::default().to_spec())
}

fn drive_delta(pipeline: &SegmentPipeline<PhaseTable>, frames: &[RgbImage]) {
    for frame in frames {
        let (labels, _hit, _recomputed) = pipeline.segment_request_delta(frame);
        pipeline.recycle(labels);
    }
}

fn drive_fresh(pipeline: &SegmentPipeline<PhaseTable>, frames: &[RgbImage]) {
    for frame in frames {
        let labels = pipeline.segment_request(frame);
        pipeline.recycle(labels);
    }
}

fn drive_whole_cached(pipeline: &SegmentPipeline<PhaseTable>, frames: &[RgbImage]) {
    for frame in frames {
        let (labels, _hit) = pipeline.segment_request_cached(frame, false);
        pipeline.recycle(labels);
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_video");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements((FRAMES * WIDTH * HEIGHT) as u64));

    // The delta path at each change rate.  The setup replays every stream
    // through a cold delta pipeline and asserts each stitched result is
    // byte-identical to fresh whole-image segmentation.
    for (variant, change_rate) in [
        ("delta_cr0", 0.0),
        ("delta_cr5", 0.05),
        ("delta_cr25", 0.25),
        ("delta_cr100", 1.0),
    ] {
        let frames = stream(change_rate);
        let checker = delta_pipeline();
        for frame in &frames {
            let fresh = checker.segment_request(frame);
            let (stitched, _hit, _recomputed) = checker.segment_request_delta(frame);
            assert_eq!(
                stitched, fresh,
                "{variant}: stitched delta differs from fresh segmentation"
            );
            checker.recycle(fresh);
            checker.recycle(stitched);
        }
        let pipeline = delta_pipeline();
        group.bench_with_input(
            BenchmarkId::new("video8_256px", variant),
            &frames,
            |b, frames| {
                drive_delta(&pipeline, frames);
                b.iter(|| drive_delta(&pipeline, frames))
            },
        );
    }

    // Baselines share the 25% stream with `delta_cr25`, so the three rates
    // on that stream are directly comparable.
    let frames = stream(0.25);

    // No cache: every frame pays full phase-table classification.
    let uncached =
        SegmentPipeline::new(SegmentEngine::with_threads(1), PhaseTable::paper_default())
            .with_config(PipelineConfig {
                tiling: Tiling::Tiles {
                    width: TILE,
                    height: TILE,
                },
                ..PipelineConfig::default()
            });
    group.bench_with_input(
        BenchmarkId::new("video8_256px", "uncached"),
        &frames,
        |b, frames| {
            drive_fresh(&uncached, frames);
            b.iter(|| drive_fresh(&uncached, frames))
        },
    );

    // Whole-image result cache: consecutive frames never hash alike on a
    // changing stream, so every request is a miss plus insert overhead.
    let whole = delta_pipeline();
    group.bench_with_input(
        BenchmarkId::new("video8_256px", "whole_cache"),
        &frames,
        |b, frames| {
            drive_whole_cached(&whole, frames);
            b.iter(|| drive_whole_cached(&whole, frames))
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
