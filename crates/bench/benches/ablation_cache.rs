//! Ablation A5: the content-addressed segmentation cache on repeated
//! traffic — the cache hit path (hash + memcpy) vs. re-classifying every
//! request with the phase-table fast path, and the miss overhead the cache
//! adds on top of it.
//!
//! The workload is Zipf-ish repeated traffic distilled to its essence: a
//! sequence of 32 requests cycling over 4 unique frames, the shape
//! `loadgen --repeat-ratio` drives at a live server.  Three configurations:
//!
//! * `hit_path` — warm cache, every request answered from it;
//! * `table_no_cache` — no cache, every request pays the phase-table
//!   classification (the previous steady-state winner);
//! * `miss_bypass` — cache attached but bypassed, measuring that an
//!   attached-but-unused cache costs nothing on the classification path.
//!
//! The setup asserts cache hits are byte-identical to fresh segmentation
//! before any measurement runs, mirroring the repo's determinism
//! discipline.
//!
//! Snapshot a baseline with
//! `CRITERION_JSON=BENCH_cache.json cargo bench --bench ablation_cache`.

use bench::synthetic_rgb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imaging::RgbImage;
use iqft_pipeline::{CacheConfig, SegmentPipeline};
use iqft_seg::PhaseTable;
use seg_engine::{SegmentEngine, SegmentPlan};
use std::time::Duration;

const UNIQUE: usize = 4;
const REQUESTS: usize = 32;
const SIZE: usize = 96;

fn unique_frames() -> Vec<RgbImage> {
    (0..UNIQUE)
        .map(|i| synthetic_rgb(SIZE, SIZE * 3 / 4, 500 + i as u64))
        .collect()
}

/// The repeated-traffic request sequence: 32 requests cycling over the
/// unique frames.
fn request_sequence(frames: &[RgbImage]) -> Vec<&RgbImage> {
    (0..REQUESTS).map(|i| &frames[i % frames.len()]).collect()
}

fn drive<C: imaging::PixelClassifier + Sync>(
    pipeline: &SegmentPipeline<C>,
    requests: &[&RgbImage],
    bypass: bool,
) {
    for img in requests {
        let (labels, _hit) = pipeline.segment_request_cached(img, bypass);
        pipeline.recycle(labels);
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cache");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let frames = unique_frames();
    let requests = request_sequence(&frames);
    group.throughput(Throughput::Elements(
        requests.iter().map(|img| img.len() as u64).sum(),
    ));

    let engine = SegmentEngine::with_threads(1);
    let salt = SegmentPlan::default().to_spec();

    // Warm cache: after the first cycle every request is a hit.  The setup
    // asserts hit results are byte-identical to fresh segmentation before
    // anything is measured.
    let cached = SegmentPipeline::new(engine, PhaseTable::paper_default())
        .with_cache(CacheConfig::with_capacity_mb(64), &salt);
    for img in &frames {
        let fresh = cached.segment_request(img);
        let (first, hit) = cached.segment_request_cached(img, false);
        assert!(!hit, "cold cache must miss");
        let (second, hit) = cached.segment_request_cached(img, false);
        assert!(hit, "warm cache must hit");
        assert_eq!(first, fresh, "miss result differs from fresh segmentation");
        assert_eq!(second, fresh, "hit result differs from fresh segmentation");
        cached.recycle(fresh);
        cached.recycle(first);
        cached.recycle(second);
    }
    group.bench_with_input(
        BenchmarkId::new("repeat32_96px", "hit_path"),
        &requests,
        |b, requests| {
            drive(&cached, requests, false);
            b.iter(|| drive(&cached, requests, false))
        },
    );

    // No cache: every request re-classifies through the phase table.
    let uncached = SegmentPipeline::new(engine, PhaseTable::paper_default());
    group.bench_with_input(
        BenchmarkId::new("repeat32_96px", "table_no_cache"),
        &requests,
        |b, requests| {
            drive(&uncached, requests, false);
            b.iter(|| drive(&uncached, requests, false))
        },
    );

    // Cache attached but bypassed: the flag must cost nothing measurable.
    group.bench_with_input(
        BenchmarkId::new("repeat32_96px", "miss_bypass"),
        &requests,
        |b, requests| {
            drive(&cached, requests, true);
            b.iter(|| drive(&cached, requests, true))
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
