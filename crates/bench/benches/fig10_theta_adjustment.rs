//! Fig. 10 bench: per-image θ adjustment.  Prints the before/after mIOU of
//! the adjustment on the worst fixed-θ scene and measures the cost of the
//! θ-grid search (both the oracle and the unsupervised variant).

use bench::voc_split;
use criterion::{criterion_group, criterion_main, Criterion};
use iqft_seg::AutoThetaSearch;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::figures::fig10_report(&experiments::SegmentEngine::default(), 8)
    );
    let sample = &voc_split(1, 96, 1010)[0];
    let mut group = c.benchmark_group("fig10_theta_adjustment");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("unsupervised_search_7_candidates", |b| {
        let search = AutoThetaSearch::default();
        b.iter(|| search.best_unsupervised(&sample.image))
    });
    group.bench_function("oracle_search_7_candidates", |b| {
        let search = AutoThetaSearch::default();
        let gt = sample.ground_truth.clone();
        let img = sample.image.clone();
        b.iter(|| {
            search.best_by(&sample.image, |_, seg| {
                let binary = iqft_seg::reduce_to_foreground(
                    seg,
                    iqft_seg::ForegroundPolicy::LargestIsBackground,
                    Some(&img),
                    Some(&gt),
                );
                metrics::mean_iou(&binary, &gt)
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
