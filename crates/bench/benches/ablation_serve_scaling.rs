//! Ablation A6: evented serving-core connection scaling — the reactor's
//! reason to exist is holding a thousand-plus connections on two threads
//! with flat per-connection memory, where a thread-per-connection core pays
//! a stack per peer.
//!
//! For each sweep point `n` in {64, 256, 1024} the setup boots one evented
//! server in-process, dials `n` persistent connections (each completes a
//! ping so it is fully registered with a reactor), and measures the
//! process-wide RSS growth the connections cost, from `/proc/self/status`
//! `VmRSS`.  The measured loop then round-trips a ping on every one of the
//! `n` held connections — one full sweep of the reactor's registration
//! table per iteration, so a connection the reactor lost would hang the
//! bench rather than silently pass.
//!
//! The per-connection RSS delta rides in the record's throughput column
//! (`Throughput::Elements(bytes_per_connection)`), which is what the
//! `check_baselines` flat-memory check reads back: the 1024-connection leg
//! must stay bounded in absolute terms and close to the 64-connection leg.
//!
//! Snapshot a baseline with `CRITERION_JSON=BENCH_serve_scaling.json
//! cargo bench --bench ablation_serve_scaling`.

use bench::synthetic_rgb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iqft_pipeline::CacheConfig;
use iqft_serve::{Client, ClientConfig, ServeMode, Server, ServerConfig};
use seg_engine::SegmentPlan;
use std::time::Duration;

const SWEEP: [usize; 3] = [64, 256, 1024];

/// Resident set size of this process in bytes (`VmRSS`), or 0 where
/// `/proc/self/status` does not exist (non-Linux).  The sweep still runs
/// there; only the memory column degenerates.
fn rss_bytes() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| {
            let rest = line.strip_prefix("VmRSS:")?;
            let kb: usize = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            Some(kb * 1024)
        })
        .unwrap_or(0)
}

fn bench(c: &mut Criterion) {
    // 1024 clients plus their server-side halves far exceed the common 1024
    // soft descriptor limit.
    #[cfg(unix)]
    iqft_serve::poll::raise_nofile_limit(8192);

    let mut group = c.benchmark_group("ablation_serve_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let image = synthetic_rgb(64, 48, 4100);
    for n in SWEEP {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                plan: SegmentPlan::default(),
                max_inflight: 2,
                cache: CacheConfig::with_capacity_mb(16),
                mode: ServeMode::Evented,
                ..ServerConfig::default()
            },
        )
        .expect("bind evented server");
        let addr = server.local_addr();

        // Dial the held connections and settle them (one ping each) before
        // sampling RSS, so the delta reflects steady-state registered
        // connections, not half-dialed sockets.
        let before = rss_bytes();
        let mut conns: Vec<Client> = (0..n)
            .map(|i| {
                let config = ClientConfig::new(addr.to_string())
                    .with_connect_deadline(Duration::from_secs(10));
                let mut client = Client::open(&config)
                    .unwrap_or_else(|e| panic!("dial connection {i}/{n}: {e}"));
                client.ping().expect("settle ping");
                client
            })
            .collect();
        // One request with a real payload proves the data path works at this
        // connection count (and faults in the pipeline's arenas exactly once
        // per sweep point, keeping them out of the per-connection delta).
        conns[0]
            .segment_cached(&image, false)
            .expect("segment")
            .unwrap_done();
        let after = rss_bytes();
        let per_conn = after.saturating_sub(before) / n;

        group.throughput(Throughput::Elements(per_conn.max(1) as u64));
        group.bench_with_input(
            BenchmarkId::new("connections", format!("evented_{n}")),
            &n,
            {
                let conns = &mut conns;
                move |b, _| {
                    b.iter(|| {
                        for conn in conns.iter_mut() {
                            conn.ping().expect("swept ping");
                        }
                    })
                }
            },
        );

        conns[0].shutdown().expect("shutdown");
        drop(conns);
        server.join();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
