//! Fig. 7 bench: the Otsu ↔ θ equivalence.  Prints the identical-mask check
//! and compares the cost of Otsu (histogram + threshold) with the IQFT
//! grayscale segmenter at the equivalent θ.

use bench::voc_split;
use criterion::{criterion_group, criterion_main, Criterion};
use imaging::hist::Histogram;
use imaging::{color, Segmenter};
use iqft_seg::theta::theta_for_threshold;
use iqft_seg::IqftGraySegmenter;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::figures::fig7_report(&experiments::SegmentEngine::default(), None)
    );
    let sample = &voc_split(1, 128, 707)[0];
    let gray = color::rgb_to_gray_u8(&sample.image);
    let threshold = baselines::otsu_threshold(&Histogram::of_gray(&gray)).max(0.34);
    let theta = theta_for_threshold(threshold);
    let mut group = c.benchmark_group("fig7_otsu_equivalence");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("otsu_fit_and_segment", |b| {
        let seg = baselines::OtsuSegmenter::new();
        b.iter(|| seg.segment_gray(&gray))
    });
    group.bench_function("iqft_gray_equivalent_theta", |b| {
        let seg = IqftGraySegmenter::new(theta);
        b.iter(|| seg.segment_gray(&gray))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
