//! Ablation A5: tile-size sweep for the zero-copy tiled segmentation path.
//!
//! A fixed 512×384 synthetic frame is segmented with the `PhaseTable` fast
//! path through a `SegmentPlan`, sweeping the tile edge length from 16 px to
//! 256 px plus the whole-image baseline.  Small tiles maximise scheduling
//! freedom (no single worker owns a big frame) but pay more per-tile
//! overhead; the sweep locates the knee.  Before any timing, every tiled
//! configuration is asserted byte-identical to the whole-image pass — the
//! tiling acceptance criterion, enforced in the bench itself.
//!
//! Snapshot a baseline with
//! `CRITERION_JSON=BENCH_tiling.json cargo bench --bench ablation_tiling`.

use bench::synthetic_rgb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iqft_seg::PhaseTable;
use seg_engine::{SegmentPlan, Tiling};
use std::time::Duration;

const WIDTH: usize = 512;
const HEIGHT: usize = 384;
const TILE_EDGES: [usize; 5] = [16, 32, 64, 128, 256];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tiling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let img = synthetic_rgb(WIDTH, HEIGHT, 7);
    group.throughput(Throughput::Elements(img.len() as u64));

    let table = PhaseTable::paper_default();
    let plan = SegmentPlan::default().with_backend(xpar::Backend::Threads(2));
    let whole = plan.segment_rgb(&table, &img);

    let mut buf = Vec::new();
    group.bench_with_input(
        BenchmarkId::new("phase_table_512x384", "whole"),
        &img,
        |b, img| {
            plan.segment_rgb_into(&table, img, &mut buf); // warm the buffer
            b.iter(|| plan.segment_rgb_into(&table, img, &mut buf))
        },
    );

    for edge in TILE_EDGES {
        let tiled = plan.with_tiling(Tiling::Tiles {
            width: edge,
            height: edge,
        });
        // Tiled output must be byte-identical to the whole-image pass —
        // asserted here so the bench doubles as an acceptance check.
        assert_eq!(tiled.segment_rgb(&table, &img), whole, "tile {edge}x{edge}");
        group.bench_with_input(
            BenchmarkId::new("phase_table_512x384", format!("tile_{edge}x{edge}")),
            &img,
            |b, img| {
                tiled.segment_rgb_into(&table, img, &mut buf);
                b.iter(|| tiled.segment_rgb_into(&table, img, &mut buf))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
