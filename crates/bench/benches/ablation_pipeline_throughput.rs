//! Ablation A4: steady-state throughput of the batched `iqft-pipeline`
//! service, exact statevector math vs. the lazy colour LUT vs. the eager
//! `PhaseTable` fast path.
//!
//! Each iteration streams a fixed 16-image synthetic batch through a warmed
//! pipeline with buffer recycling, so the measurement captures the
//! steady-state regime the pipeline is designed for (no arena warm-up, no
//! first-touch page faults, LUT cache already populated).  The `workers_*`
//! axis sweeps the worker-thread count for the winning classifier.
//!
//! Snapshot a baseline with
//! `CRITERION_JSON=BENCH_throughput.json cargo bench --bench ablation_pipeline_throughput`.

use bench::synthetic_rgb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imaging::{PixelClassifier, RgbImage};
use iqft_pipeline::{PipelineConfig, SegmentPipeline};
use iqft_seg::{IqftClassifier, PhaseTable};
use seg_engine::{ClassifierKind, SegmentEngine};
use std::time::Duration;

const IMAGES: usize = 16;
const SIZE: usize = 96;

fn stream() -> Vec<RgbImage> {
    (0..IMAGES)
        .map(|i| synthetic_rgb(SIZE, SIZE * 3 / 4, 100 + i as u64))
        .collect()
}

fn run_stream<C: PixelClassifier + Sync>(pipeline: &SegmentPipeline<C>, images: &[RgbImage]) {
    let report = pipeline.run_stream(images, IMAGES, |_, labels| pipeline.recycle(labels));
    assert_eq!(report.images(), images.len());
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pipeline_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let images = stream();
    group.throughput(Throughput::Elements(
        images.iter().map(|img| img.len() as u64).sum(),
    ));

    let engine = SegmentEngine::with_threads(1);
    let single = PipelineConfig {
        workers: 1,
        queue_capacity: 4,
        ..PipelineConfig::default()
    };

    // Classifier axis at one worker: isolates the per-pixel classification
    // cost from scheduling effects.  The classifier set and its construction
    // come from `ClassifierKind::ALL` / `IqftClassifier` — the same single
    // source of truth the CLI parses `--classifier` with — so the bench
    // cannot drift from the harness vocabulary.
    for kind in ClassifierKind::ALL {
        // The phase-table kind was recorded as "phase_table" in
        // BENCH_throughput.json; keep that id for baseline continuity.
        let label = match kind {
            ClassifierKind::Table => "phase_table",
            other => other.flag(),
        };
        let pipeline =
            SegmentPipeline::new(engine, IqftClassifier::paper_default(kind)).with_config(single);
        group.bench_with_input(
            BenchmarkId::new("voc16_96px", label),
            &images,
            |b, images| {
                run_stream(&pipeline, images); // warm the arena (and any colour cache)
                b.iter(|| run_stream(&pipeline, images))
            },
        );
    }

    // Worker-count axis for the fast path.
    for workers in [1usize, 2, 4, 8] {
        let pipeline = SegmentPipeline::new(
            SegmentEngine::with_threads(workers),
            PhaseTable::paper_default(),
        )
        .with_config(PipelineConfig {
            workers,
            queue_capacity: workers * 2,
            ..PipelineConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("voc16_96px_phase_table", format!("workers_{workers}")),
            &images,
            |b, images| {
                run_stream(&pipeline, images);
                b.iter(|| run_stream(&pipeline, images))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
