//! Ablation A7: fleet hit-path scaling — the consistent-hash fleet's
//! reason to exist is multiplying a daemon's *cache capacity*: each daemon
//! owns a stable slice of the key space, so adding daemons adds resident
//! cache without any coordination between them.
//!
//! For each sweep point `n` in {1, 2, 4} the setup boots `n` cached
//! daemons in-process, each with an LRU budget of 20 entries against a
//! 24-image working set.  One daemon cannot hold the set: a cyclic scan
//! through 24 keys over a 20-entry LRU evicts every key before its next
//! use, so every request recomputes (the plan runs the exact classifier —
//! the expensive path the cache exists to skip).  Two daemons own ~12 keys
//! each, the whole set is resident, and every request is answered from the
//! cache.  The measured loop drives one pipelined [`FleetClient`] pass
//! over the working set (requests routed by content hash, per-endpoint
//! bursts), so the recorded rate is aggregate throughput of serving the
//! working set — hit-path fast exactly when the fleet's combined budget
//! covers it.
//!
//! The `check_baselines` semantic block for `BENCH_fleet.json` requires
//! the 2-daemon rate to beat 1.5x the single daemon's — the fleet's
//! headline claim, recorded and guarded.  (On the recording host the real
//! margin is several-fold: a thrashing daemon pays an exact-classifier
//! pass per request, a resident fleet pays a lookup and a memcpy.)
//!
//! Snapshot a baseline with `CRITERION_JSON=BENCH_fleet.json
//! cargo bench --bench ablation_fleet`.

use bench::synthetic_rgb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imaging::RgbImage;
use iqft_pipeline::CacheConfig;
use iqft_serve::{ClientConfig, FleetClient, ServeMode, Server, ServerConfig};
use seg_engine::{ClassifierKind, SegmentPlan};
use std::time::Duration;

const SWEEP: [usize; 3] = [1, 2, 4];
const IMAGES: usize = 24;
/// Per-daemon LRU budget in entries: four short of the working set, so a
/// single daemon is guaranteed to thrash on a cyclic scan while any fleet
/// split (~12 keys per daemon at `n = 2`) stays fully resident.
const BUDGET_ENTRIES: usize = 20;

fn bench(c: &mut Criterion) {
    #[cfg(unix)]
    iqft_serve::poll::raise_nofile_limit(4096);

    let mut group = c.benchmark_group("ablation_fleet");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let images: Vec<RgbImage> = (0..IMAGES)
        .map(|i| synthetic_rgb(96, 72, 8600 + i as u64))
        .collect();
    let refs: Vec<&RgbImage> = images.iter().collect();
    // Label bytes plus the cache's per-entry bookkeeping overhead.
    let entry_bytes = 96 * 72 * 4 + 96;

    for n in SWEEP {
        // The exact classifier makes a miss pay the full price the cache
        // exists to skip; a single LRU shard keeps the thrash-vs-resident
        // boundary deterministic.
        let servers: Vec<Server> = (0..n)
            .map(|_| {
                Server::bind(
                    "127.0.0.1:0",
                    ServerConfig::new(
                        SegmentPlan::default().with_classifier(ClassifierKind::Exact),
                    )
                    .with_max_inflight(2)
                    .with_cache(CacheConfig {
                        capacity_bytes: entry_bytes * BUDGET_ENTRIES,
                        shards: 1,
                    })
                    .with_mode(ServeMode::Evented),
                )
                .expect("bind fleet daemon")
            })
            .collect();
        let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();

        let config = ClientConfig::fleet(addrs.iter().cloned()).with_pipeline_depth(8);
        let mut fleet = FleetClient::open(&config).expect("open fleet client");

        // Warm pass, then prove the capacity story before measuring: a
        // fleet of two or more holds the whole working set (every repeat
        // hits); one daemon cannot (the cyclic scan keeps evicting).
        fleet.segment_pipelined(&refs, true).expect("warm fill");
        let check = fleet.segment_pipelined(&refs, true).expect("warm check");
        let hits = check.iter().filter(|reply| reply.cached()).count();
        if n >= 2 {
            assert_eq!(hits, IMAGES, "fleet of {n} must hold the whole set");
        } else {
            assert!(hits < IMAGES, "one daemon must thrash on {IMAGES} keys");
        }

        group.throughput(Throughput::Elements(IMAGES as u64));
        group.bench_with_input(
            BenchmarkId::new("daemons", format!("fleet_{n}")),
            &n,
            |b, _| {
                b.iter(|| {
                    let replies = fleet.segment_pipelined(&refs, true).expect("fleet pass");
                    assert_eq!(replies.len(), IMAGES);
                    for reply in &replies {
                        assert!(reply.labels().is_some(), "every request must be served");
                    }
                })
            },
        );

        assert_eq!(fleet.shutdown_all(), n, "every daemon acknowledges drain");
        for server in servers {
            server.join();
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
