//! Fig. 4 bench: multiple thresholding on the coloured-balls scene.  Prints
//! the mIOU comparison (IQFT θ=4π vs Otsu vs K-means) and measures the cost
//! of each method on the scene.

use criterion::{criterion_group, criterion_main, Criterion};
use datasets::balls_scene;
use imaging::{color, Segmenter};
use iqft_seg::IqftGraySegmenter;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::figures::fig4_report(&experiments::SegmentEngine::default(), None)
    );
    let scene = balls_scene(180, 120);
    let gray = color::rgb_to_gray_u8(&scene.image);
    let mut group = c.benchmark_group("fig4_multi_threshold");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("iqft_gray_theta_4pi", |b| {
        let seg = IqftGraySegmenter::new(4.0 * std::f64::consts::PI);
        b.iter(|| seg.segment_gray(&gray))
    });
    group.bench_function("otsu_single_threshold", |b| {
        let seg = baselines::OtsuSegmenter::new();
        b.iter(|| seg.segment_gray(&gray))
    });
    group.bench_function("kmeans_k2", |b| {
        let seg = baselines::KMeansSegmenter::binary(4);
        b.iter(|| seg.segment_rgb(&scene.image))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
