//! Ablation A1b: scaling of the engine's *image-batch* axis.
//!
//! The experiment harness parallelises over images (serial per-image
//! segmenters, `SegmentEngine::map_images` over the dataset) rather than over
//! pixels.  This target measures that axis: a small VOC-like split evaluated
//! end-to-end (segment → binarise → mIOU) at 1/2/4/8 batch threads.

use bench::voc_split;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use experiments::{evaluate_method_with, Method, SegmentEngine};
use iqft_seg::ForegroundPolicy;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_engine_batching");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let samples = voc_split(16, 96, 5);
    group.throughput(Throughput::Elements(samples.len() as u64));
    let method = Method::IqftRgb {
        theta: std::f64::consts::PI,
    };
    let mut engines: Vec<(String, SegmentEngine)> =
        vec![("serial".to_string(), SegmentEngine::serial())];
    for threads in [1usize, 2, 4, 8] {
        engines.push((
            format!("threads_{threads}"),
            SegmentEngine::with_threads(threads),
        ));
    }
    for (name, engine) in engines {
        group.bench_with_input(
            BenchmarkId::new("voc16_96px_iqft_rgb", name),
            &samples,
            |b, samples| {
                b.iter(|| {
                    evaluate_method_with(
                        &engine,
                        &method,
                        samples,
                        ForegroundPolicy::LargestIsBackground,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
