//! The synchronous client side of the `iqft-serve` protocol.
//!
//! A [`Client`] owns one TCP connection and issues request/response pairs in
//! lockstep: every call writes one frame, reads one frame, checks the echoed
//! request id, and converts a server [`Message::Error`] into
//! [`ServeError::Server`].  One client is one connection — for concurrent
//! load, open one client per thread (that is exactly what the
//! `iqft-experiments loadgen` subcommand does).
//!
//! Construction mirrors the server side: a [`ClientConfig`] builder names
//! the endpoint(s), the pipeline depth, the connect/reply deadlines, and the
//! retry-on-[`Busy`](SegmentOutcome::Busy) policy, and [`Client::open`]
//! dials it.  Saturation is not an error — every segmentation call returns
//! a [`SegmentOutcome`], the one vocabulary shared by the lockstep calls,
//! the pipelined burst, and the fleet layer ([`crate::fleet`]).

use crate::protocol::{self, Message, ProtocolError};
use crate::stats::StatsSnapshot;
use imaging::{LabelMap, RgbImage};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Write-poll granularity while a pipelined burst is being sent: when a
/// request write blocks this long, the client drains one reply to free
/// socket-buffer space instead of waiting (see
/// [`Client::segment_pipelined`]'s deadlock-safety note).
const PIPELINE_WRITE_POLL: Duration = Duration::from_millis(100);

/// How a [`Client`] is built: endpoint address(es), pipeline depth,
/// deadlines, and the retry-on-`Busy` policy.  Mirrors the server-side
/// `ServerConfig` builder; every knob chains:
///
/// ```no_run
/// use iqft_serve::{Client, ClientConfig};
/// use std::time::Duration;
///
/// let config = ClientConfig::new("127.0.0.1:7700")
///     .with_pipeline_depth(16)
///     .with_connect_deadline(Duration::from_millis(250))
///     .with_busy_retries(3, Duration::from_millis(1));
/// let client = Client::open(&config).unwrap();
/// ```
///
/// A config with several addresses describes a fleet; [`Client::open`]
/// dials the first address that answers, while
/// [`FleetClient::open`](crate::fleet::FleetClient::open) keeps one
/// connection per address and routes between them by content hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Daemon endpoint(s), in `host:port` form.  One for a single-daemon
    /// client; the full fleet for [`crate::fleet::FleetClient`].
    pub addrs: Vec<String>,
    /// Default in-flight depth for [`Client::segment_pipelined`], clamped
    /// to `1..=`[`protocol::MAX_PIPELINE_DEPTH`] at use.
    pub pipeline_depth: usize,
    /// Per-address connect timeout; `None` leaves the OS default (which can
    /// be minutes when an accept backlog overflows).
    pub connect_deadline: Option<Duration>,
    /// Read timeout applied to every reply; `None` waits indefinitely.
    pub reply_deadline: Option<Duration>,
    /// How many times a lockstep call re-sends a request the server refused
    /// with `Busy` before surfacing [`SegmentOutcome::Busy`].  `0` (the
    /// default) surfaces the first refusal.
    pub busy_retries: u32,
    /// First retry backoff; doubles per attempt, capped at
    /// [`ClientConfig::busy_backoff_cap`].
    pub busy_backoff: Duration,
    /// Upper bound on the exponential backoff between `Busy` retries.
    pub busy_backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addrs: Vec::new(),
            pipeline_depth: 8,
            connect_deadline: None,
            reply_deadline: None,
            busy_retries: 0,
            busy_backoff: Duration::from_millis(1),
            busy_backoff_cap: Duration::from_millis(64),
        }
    }
}

impl ClientConfig {
    /// A config for one endpoint with every knob at its default.
    pub fn new(addr: impl Into<String>) -> ClientConfig {
        ClientConfig {
            addrs: vec![addr.into()],
            ..ClientConfig::default()
        }
    }

    /// A config for a whole fleet of endpoints.
    pub fn fleet<I, S>(addrs: I) -> ClientConfig
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ClientConfig {
            addrs: addrs.into_iter().map(Into::into).collect(),
            ..ClientConfig::default()
        }
    }

    /// Appends another endpoint (fleet construction one address at a time).
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addrs.push(addr.into());
        self
    }

    /// Sets the default pipelined in-flight depth.
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Sets the per-address connect timeout.
    pub fn with_connect_deadline(mut self, deadline: Duration) -> Self {
        self.connect_deadline = Some(deadline);
        self
    }

    /// Sets the per-reply read timeout.
    pub fn with_reply_deadline(mut self, deadline: Duration) -> Self {
        self.reply_deadline = Some(deadline);
        self
    }

    /// Enables retry-on-`Busy`: up to `retries` re-sends, backing off
    /// exponentially from `backoff` (capped at
    /// [`ClientConfig::busy_backoff_cap`]).
    pub fn with_busy_retries(mut self, retries: u32, backoff: Duration) -> Self {
        self.busy_retries = retries;
        self.busy_backoff = backoff;
        self
    }

    /// Caps the exponential backoff between `Busy` retries.
    pub fn with_busy_backoff_cap(mut self, cap: Duration) -> Self {
        self.busy_backoff_cap = cap;
        self
    }

    /// The backoff before retry number `attempt` (1-based): exponential
    /// doubling from [`ClientConfig::busy_backoff`], saturating at the cap.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let doubled = self
            .busy_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        doubled.min(self.busy_backoff_cap)
    }
}

/// Everything a client call can fail with.
///
/// Admission refusal is *not* here: a saturated server is an outcome
/// ([`SegmentOutcome::Busy`]), not an error, so both the lockstep and the
/// pipelined paths report it the same way.
#[derive(Debug)]
pub enum ServeError {
    /// The wire protocol failed (framing, limits, transport I/O).
    Protocol(ProtocolError),
    /// The server answered with an [`Message::Error`] frame.
    Server(String),
    /// The server answered with a well-formed frame of the wrong kind.
    Unexpected {
        /// What the call was waiting for.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
    /// The reply echoed a different request id than the one sent.
    IdMismatch {
        /// The id this client sent.
        sent: u64,
        /// The id the reply carried.
        got: u64,
    },
    /// A pipelined reply echoed an id with no outstanding request (or one
    /// already answered).
    UnknownId(u64),
    /// A stats payload that did not parse as a snapshot.
    BadStats(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Protocol(err) => write!(f, "protocol error: {err}"),
            ServeError::Server(message) => write!(f, "server error: {message}"),
            ServeError::Unexpected { expected, got } => {
                write!(f, "expected a {expected} reply, got {got}")
            }
            ServeError::IdMismatch { sent, got } => {
                write!(f, "request id mismatch: sent {sent}, reply echoed {got}")
            }
            ServeError::UnknownId(got) => {
                write!(
                    f,
                    "pipelined reply echoed id {got}, which has no outstanding request"
                )
            }
            ServeError::BadStats(err) => write!(f, "malformed stats snapshot: {err}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ProtocolError> for ServeError {
    fn from(err: ProtocolError) -> Self {
        ServeError::Protocol(err)
    }
}

impl From<io::Error> for ServeError {
    fn from(err: io::Error) -> Self {
        ServeError::Protocol(ProtocolError::Io(err))
    }
}

/// What became of one segmentation request — the single outcome vocabulary
/// shared by the lockstep calls, the pipelined burst, and the fleet layer.
///
/// Saturation and failover are states to handle, not errors to unwrap:
/// a [`SegmentOutcome::Busy`] slot was never executed and may be retried
/// on the same connection, and a [`SegmentOutcome::Failover`] reply is a
/// correct answer that simply came from a non-primary daemon (so it was
/// almost certainly a cache miss there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentOutcome {
    /// The frame was segmented; `cached` says whether the server answered
    /// from its result cache (always `false` for plain `Segment` requests).
    Done {
        /// The computed label map, byte-identical to the serial reference.
        labels: LabelMap,
        /// Whether the reply was served from the server's result cache.
        cached: bool,
    },
    /// The server refused admission for this request (pool and queue
    /// saturated); it was not executed.
    Busy,
    /// A fleet request whose ring owner was unreachable (connect failure or
    /// drain) and that a fallback owner answered instead.  Only
    /// [`crate::fleet::FleetClient`] produces this variant.
    Failover {
        /// The computed label map, byte-identical to the serial reference.
        labels: LabelMap,
        /// Whether the fallback server answered from its result cache.
        cached: bool,
        /// How many unreachable endpoints were skipped before this reply.
        tried: u32,
    },
}

impl SegmentOutcome {
    /// The labels, unless the request was shed (`Busy`).
    pub fn labels(&self) -> Option<&LabelMap> {
        match self {
            SegmentOutcome::Done { labels, .. } | SegmentOutcome::Failover { labels, .. } => {
                Some(labels)
            }
            SegmentOutcome::Busy => None,
        }
    }

    /// Whether the reply came from a server-side result cache.
    pub fn cached(&self) -> bool {
        match self {
            SegmentOutcome::Done { cached, .. } | SegmentOutcome::Failover { cached, .. } => {
                *cached
            }
            SegmentOutcome::Busy => false,
        }
    }

    /// Whether the server shed this request.
    pub fn is_busy(&self) -> bool {
        matches!(self, SegmentOutcome::Busy)
    }

    /// How many unreachable endpoints the fleet skipped for this request
    /// (`0` unless the outcome is [`SegmentOutcome::Failover`]).
    pub fn tried(&self) -> u32 {
        match self {
            SegmentOutcome::Failover { tried, .. } => *tried,
            _ => 0,
        }
    }

    /// Unwraps into `(labels, cached)`; panics on [`SegmentOutcome::Busy`].
    /// A failover reply unwraps like a done one — the labels are just as
    /// correct, only their origin differs.
    #[track_caller]
    pub fn unwrap_done(self) -> (LabelMap, bool) {
        match self {
            SegmentOutcome::Done { labels, cached }
            | SegmentOutcome::Failover { labels, cached, .. } => (labels, cached),
            SegmentOutcome::Busy => panic!("request was shed by the server (Busy)"),
        }
    }
}

/// A synchronous connection to an `iqft-serve` daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    config: ClientConfig,
}

impl Client {
    /// Dials the configured endpoint(s) and returns a connected client.
    ///
    /// Each address in [`ClientConfig::addrs`] is tried in order (and every
    /// socket address each resolves to), under
    /// [`ClientConfig::connect_deadline`] when one is set; the first that
    /// answers wins.  The config's deadlines and retry policy stay attached
    /// to the client for the lifetime of the connection.
    pub fn open(config: &ClientConfig) -> io::Result<Client> {
        let mut last_err = None;
        for addr in &config.addrs {
            match Client::dial(addr, config) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "client config names no address",
            )
        }))
    }

    /// Dials one `host:port` endpoint under `config`'s deadlines.
    pub(crate) fn dial(addr: &str, config: &ClientConfig) -> io::Result<Client> {
        let mut last_err = None;
        for resolved in addr.to_socket_addrs()? {
            let connected = match config.connect_deadline {
                Some(deadline) => TcpStream::connect_timeout(&resolved, deadline),
                None => TcpStream::connect(resolved),
            };
            match connected {
                Ok(stream) => return Client::from_stream(stream, config.clone()),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    fn from_stream(stream: TcpStream, config: ClientConfig) -> io::Result<Client> {
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(config.reply_deadline)?;
        Ok(Client {
            stream,
            next_id: 1,
            config,
        })
    }

    /// Connects to a running server.
    #[deprecated(
        since = "0.6.0",
        note = "build a `ClientConfig` and call `Client::open` instead"
    )]
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream, ClientConfig::default())
    }

    /// Connects with a per-address connect timeout.
    #[deprecated(
        since = "0.6.0",
        note = "use `ClientConfig::with_connect_deadline` and `Client::open` instead"
    )]
    pub fn connect_timeout<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<Client> {
        let mut last_err = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => return Client::from_stream(stream, ClientConfig::default()),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// The config this client was opened with.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    fn read_reply(&mut self, sent: u64) -> Result<Message, ServeError> {
        let (got, reply) = protocol::read_message(&mut self.stream)?;
        if let Message::Error { message } = reply {
            return Err(ServeError::Server(message));
        }
        if let Message::Busy = reply {
            // Busy frames echo the refused id; tolerate servers that zero it.
            return Ok(Message::Busy);
        }
        if got != sent {
            return Err(ServeError::IdMismatch { sent, got });
        }
        Ok(reply)
    }

    /// Sends `encode(id)` and reads its reply, re-sending under the
    /// config's bounded exponential backoff while the server answers
    /// `Busy`.  Returns `Message::Busy` once the retry budget is spent.
    fn request_with_retry(
        &mut self,
        mut encode: impl FnMut(u64) -> Result<Vec<u8>, ProtocolError>,
    ) -> Result<Message, ServeError> {
        let mut attempt = 0u32;
        loop {
            let sent = self.next_id();
            let frame = encode(sent)?;
            {
                use std::io::Write as _;
                self.stream.write_all(&frame)?;
                self.stream.flush()?;
            }
            match self.read_reply(sent)? {
                Message::Busy if attempt < self.config.busy_retries => {
                    attempt += 1;
                    std::thread::sleep(self.config.backoff_for(attempt));
                }
                reply => return Ok(reply),
            }
        }
    }

    fn round_trip(&mut self, request: &Message) -> Result<Message, ServeError> {
        let sent = self.next_id();
        protocol::write_message(&mut self.stream, sent, request)?;
        self.read_reply(sent)
    }

    /// Liveness probe: sends `Ping`, expects `Pong`.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Message::Ping)? {
            Message::Pong => Ok(()),
            other => Err(ServeError::Unexpected {
                expected: "Pong",
                got: other.name(),
            }),
        }
    }

    /// Segments `image` on the server.
    ///
    /// The reply's dimensions are checked against the request's, so a
    /// confused server cannot hand back a mis-shaped map silently.  The
    /// frame is encoded straight from the borrowed image
    /// ([`protocol::encode_segment`]); the hot path never clones the pixels.
    /// A saturated server yields [`SegmentOutcome::Busy`] once the config's
    /// retry budget is spent.
    pub fn segment(&mut self, image: &RgbImage) -> Result<SegmentOutcome, ServeError> {
        match self.request_with_retry(|id| protocol::encode_segment(id, image))? {
            Message::SegmentReply { labels } => {
                if labels.dimensions() != image.dimensions() {
                    return Err(ServeError::Unexpected {
                        expected: "SegmentReply with matching dimensions",
                        got: "SegmentReply with different dimensions",
                    });
                }
                Ok(SegmentOutcome::Done {
                    labels,
                    cached: false,
                })
            }
            Message::Busy => Ok(SegmentOutcome::Busy),
            other => Err(ServeError::Unexpected {
                expected: "SegmentReply",
                got: other.name(),
            }),
        }
    }

    /// Segments `image` through the server's content-addressed result cache
    /// (protocol v2's `SegmentCached` op).  The outcome's `cached` flag says
    /// whether the server answered from its cache; with `bypass` the server
    /// skips the cache entirely (neither lookup nor store).  Hit or miss,
    /// the labels are byte-identical to [`Client::segment`].
    pub fn segment_cached(
        &mut self,
        image: &RgbImage,
        bypass: bool,
    ) -> Result<SegmentOutcome, ServeError> {
        match self.request_with_retry(|id| protocol::encode_segment_cached(id, image, bypass))? {
            Message::SegmentCachedReply { labels, cached } => {
                if labels.dimensions() != image.dimensions() {
                    return Err(ServeError::Unexpected {
                        expected: "SegmentCachedReply with matching dimensions",
                        got: "SegmentCachedReply with different dimensions",
                    });
                }
                Ok(SegmentOutcome::Done { labels, cached })
            }
            Message::Busy => Ok(SegmentOutcome::Busy),
            other => Err(ServeError::Unexpected {
                expected: "SegmentCachedReply",
                got: other.name(),
            }),
        }
    }

    /// Segments `image` through the server's per-tile delta cache (protocol
    /// v2's `SegmentDelta` op).  Returns the outcome plus
    /// `(tiles_hit, tiles_recomputed)` — how many of the frame's tiles the
    /// server stitched from cached label tiles versus re-classified (both
    /// zero when the request was shed).  The stitched result is
    /// byte-identical to [`Client::segment`]; only the cost differs,
    /// scaling with how much of the frame changed since the tiles were
    /// last seen.
    pub fn segment_delta(
        &mut self,
        image: &RgbImage,
    ) -> Result<(SegmentOutcome, u32, u32), ServeError> {
        match self.request_with_retry(|id| protocol::encode_segment_delta(id, image))? {
            Message::SegmentDeltaReply {
                labels,
                tiles_hit,
                tiles_recomputed,
            } => {
                if labels.dimensions() != image.dimensions() {
                    return Err(ServeError::Unexpected {
                        expected: "SegmentDeltaReply with matching dimensions",
                        got: "SegmentDeltaReply with different dimensions",
                    });
                }
                Ok((
                    SegmentOutcome::Done {
                        labels,
                        cached: tiles_recomputed == 0,
                    },
                    tiles_hit,
                    tiles_recomputed,
                ))
            }
            Message::Busy => Ok((SegmentOutcome::Busy, 0, 0)),
            other => Err(ServeError::Unexpected {
                expected: "SegmentDeltaReply",
                got: other.name(),
            }),
        }
    }

    /// Segments a whole slice of images with up to
    /// [`ClientConfig::pipeline_depth`] requests in flight on this one
    /// connection (protocol v2 pipelining) — the client no longer pays one
    /// network round-trip per image.
    ///
    /// The depth is clamped to `1..=`[`protocol::MAX_PIPELINE_DEPTH`].
    /// With `use_cache` the requests go through the server's result cache
    /// (`SegmentCached`); otherwise plain `Segment` frames are sent.
    ///
    /// Replies may arrive in any completion order; they are matched back to
    /// their requests by the echoed id, so the returned vector is always in
    /// input order.  Each element is a [`SegmentOutcome`]: either the labels
    /// plus the served-from-cache flag, or [`SegmentOutcome::Busy`] when the
    /// server shed that request under overload (the rest of the burst still
    /// completes).
    ///
    /// Deadlock safety: a pipelined burst can exceed what the kernel socket
    /// buffers hold (large frames, deep pipelines), and a server blocked
    /// writing a reply nobody reads would stall the client's own writes
    /// forever.  Request writes therefore run with a short write timeout,
    /// and whenever a write would block while replies are outstanding the
    /// client drains one reply before continuing — writes and reads
    /// interleave on the full-duplex socket, so progress is always possible
    /// on at least one side.
    pub fn segment_pipelined(
        &mut self,
        images: &[&RgbImage],
        use_cache: bool,
    ) -> Result<Vec<SegmentOutcome>, ServeError> {
        let depth = self
            .config
            .pipeline_depth
            .clamp(1, protocol::MAX_PIPELINE_DEPTH);
        let mut results: Vec<Option<SegmentOutcome>> = (0..images.len()).map(|_| None).collect();
        let mut pending: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut next = 0usize;
        self.stream
            .set_write_timeout(Some(PIPELINE_WRITE_POLL))
            .map_err(|e| ServeError::Protocol(e.into()))?;
        let outcome = (|| -> Result<(), ServeError> {
            while results.iter().any(|slot| slot.is_none()) {
                // Keep the pipe full: write until `depth` requests are in
                // flight (or the input is exhausted), then read one reply.
                while next < images.len() && pending.len() < depth {
                    let id = self.next_id();
                    let frame = if use_cache {
                        protocol::encode_segment_cached(id, images[next], false)?
                    } else {
                        protocol::encode_segment(id, images[next])?
                    };
                    // Insert before writing: if the write has to drain
                    // replies mid-frame, this request is already addressable.
                    pending.insert(id, next);
                    next += 1;
                    self.write_frame_draining(&frame, &mut pending, &mut results, images)?;
                }
                self.receive_pipelined_reply(&mut pending, &mut results, images)?;
            }
            Ok(())
        })();
        // Restore blocking writes for the lockstep calls whatever happened.
        let _ = self.stream.set_write_timeout(None);
        outcome?;
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("every request was answered"))
            .collect())
    }

    /// Writes one request frame under the pipeline write timeout, draining
    /// a reply whenever the write would block and replies are outstanding —
    /// the socket's send buffer can only be full because the peer (or this
    /// side's receive path) has unread data in flight.
    fn write_frame_draining(
        &mut self,
        frame: &[u8],
        pending: &mut std::collections::HashMap<u64, usize>,
        results: &mut [Option<SegmentOutcome>],
        images: &[&RgbImage],
    ) -> Result<(), ServeError> {
        use std::io::Write as _;
        let mut written = 0usize;
        while written < frame.len() {
            match self.stream.write(&frame[written..]) {
                Ok(0) => {
                    return Err(ServeError::Protocol(ProtocolError::Io(
                        io::ErrorKind::WriteZero.into(),
                    )))
                }
                Ok(n) => written += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // More than this half-written frame is outstanding:
                    // free buffer space by consuming a reply.  (With only
                    // the in-progress frame pending the server cannot be
                    // mid-reply; it drains our bytes as it reads the frame,
                    // so simply retrying makes progress.)
                    if pending.len() > 1 {
                        self.receive_pipelined_reply(pending, results, images)?;
                    }
                }
                Err(e) => return Err(ServeError::Protocol(ProtocolError::Io(e))),
            }
        }
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one pipelined reply and files it into `results` by echoed id.
    fn receive_pipelined_reply(
        &mut self,
        pending: &mut std::collections::HashMap<u64, usize>,
        results: &mut [Option<SegmentOutcome>],
        images: &[&RgbImage],
    ) -> Result<(), ServeError> {
        let (got, reply) = protocol::read_message(&mut self.stream)?;
        if let Message::Error { message } = reply {
            return Err(ServeError::Server(message));
        }
        let Some(slot) = pending.remove(&got) else {
            return Err(ServeError::UnknownId(got));
        };
        let (labels, cached) = match reply {
            Message::SegmentCachedReply { labels, cached } => (labels, cached),
            Message::SegmentReply { labels } => (labels, false),
            Message::Busy => {
                results[slot] = Some(SegmentOutcome::Busy);
                return Ok(());
            }
            other => {
                return Err(ServeError::Unexpected {
                    expected: "SegmentReply or SegmentCachedReply",
                    got: other.name(),
                })
            }
        };
        if labels.dimensions() != images[slot].dimensions() {
            return Err(ServeError::Unexpected {
                expected: "a reply with matching dimensions",
                got: "a reply with different dimensions",
            });
        }
        results[slot] = Some(SegmentOutcome::Done { labels, cached });
        Ok(())
    }

    /// Fetches and parses a server statistics snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        match self.round_trip(&Message::Stats)? {
            Message::StatsReply { text } => {
                StatsSnapshot::from_text(&text).map_err(ServeError::BadStats)
            }
            other => Err(ServeError::Unexpected {
                expected: "StatsReply",
                got: other.name(),
            }),
        }
    }

    /// Asks the server to drain and stop.  On `Ok`, the shutdown was
    /// acknowledged and the server is stopping; this connection is done.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Message::Shutdown)? {
            Message::ShutdownReply => Ok(()),
            other => Err(ServeError::Unexpected {
                expected: "ShutdownReply",
                got: other.name(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_diagnostics() {
        let err = ServeError::IdMismatch { sent: 4, got: 9 };
        assert!(err.to_string().contains("sent 4"));
        let err = ServeError::Unexpected {
            expected: "Pong",
            got: "StatsReply",
        };
        assert!(err.to_string().contains("Pong"));
        assert!(ServeError::Server("boom".into())
            .to_string()
            .contains("boom"));
        assert!(ServeError::BadStats("no plan".into())
            .to_string()
            .contains("no plan"));
    }

    #[test]
    fn connect_to_unbound_port_fails_cleanly() {
        // Port 1 on loopback is essentially never listening.
        assert!(Client::open(&ClientConfig::new("127.0.0.1:1")).is_err());
    }

    #[test]
    fn deprecated_connect_shim_still_dials() {
        #[allow(deprecated)]
        let err = Client::connect("127.0.0.1:1");
        assert!(err.is_err(), "shim still performs a real dial");
        #[allow(deprecated)]
        let err = Client::connect_timeout("127.0.0.1:1", Duration::from_millis(50));
        assert!(err.is_err());
    }

    #[test]
    fn open_with_no_address_is_an_invalid_input_error() {
        let err = Client::open(&ClientConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn config_builder_chains_every_knob() {
        let config = ClientConfig::new("a:1")
            .with_addr("b:2")
            .with_pipeline_depth(16)
            .with_connect_deadline(Duration::from_millis(250))
            .with_reply_deadline(Duration::from_secs(2))
            .with_busy_retries(3, Duration::from_millis(2))
            .with_busy_backoff_cap(Duration::from_millis(20));
        assert_eq!(config.addrs, vec!["a:1".to_string(), "b:2".to_string()]);
        assert_eq!(config.pipeline_depth, 16);
        assert_eq!(config.connect_deadline, Some(Duration::from_millis(250)));
        assert_eq!(config.reply_deadline, Some(Duration::from_secs(2)));
        assert_eq!(config.busy_retries, 3);
        assert_eq!(config.busy_backoff, Duration::from_millis(2));
        assert_eq!(config.busy_backoff_cap, Duration::from_millis(20));
        assert_eq!(
            ClientConfig::fleet(["a:1", "b:2"]).addrs,
            vec!["a:1".to_string(), "b:2".to_string()]
        );
    }

    #[test]
    fn busy_backoff_doubles_and_saturates_at_the_cap() {
        let config = ClientConfig::new("a:1")
            .with_busy_retries(10, Duration::from_millis(1))
            .with_busy_backoff_cap(Duration::from_millis(6));
        assert_eq!(config.backoff_for(1), Duration::from_millis(1));
        assert_eq!(config.backoff_for(2), Duration::from_millis(2));
        assert_eq!(config.backoff_for(3), Duration::from_millis(4));
        assert_eq!(config.backoff_for(4), Duration::from_millis(6), "capped");
        assert_eq!(config.backoff_for(40), Duration::from_millis(6));
    }

    #[test]
    fn outcome_accessors_expose_one_uniform_vocabulary() {
        let labels = LabelMap::new(2, 1, 0u32);
        let done = SegmentOutcome::Done {
            labels: labels.clone(),
            cached: true,
        };
        assert!(done.cached());
        assert!(!done.is_busy());
        assert_eq!(done.tried(), 0);
        assert_eq!(done.labels(), Some(&labels));
        let failover = SegmentOutcome::Failover {
            labels: labels.clone(),
            cached: false,
            tried: 2,
        };
        assert_eq!(failover.tried(), 2);
        assert_eq!(failover.clone().unwrap_done(), (labels, false));
        assert!(SegmentOutcome::Busy.is_busy());
        assert_eq!(SegmentOutcome::Busy.labels(), None);
        assert!(!SegmentOutcome::Busy.cached());
    }

    #[test]
    #[should_panic(expected = "Busy")]
    fn unwrap_done_panics_on_busy() {
        SegmentOutcome::Busy.unwrap_done();
    }
}
