//! The synchronous client side of the `iqft-serve` protocol.
//!
//! A [`Client`] owns one TCP connection and issues request/response pairs in
//! lockstep: every call writes one frame, reads one frame, checks the echoed
//! request id, and converts a server [`Message::Error`] into
//! [`ServeError::Server`].  One client is one connection — for concurrent
//! load, open one client per thread (that is exactly what the
//! `iqft-experiments loadgen` subcommand does).

use crate::protocol::{self, Message, ProtocolError};
use crate::stats::StatsSnapshot;
use imaging::{LabelMap, RgbImage};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// The wire protocol failed (framing, limits, transport I/O).
    Protocol(ProtocolError),
    /// The server answered with an [`Message::Error`] frame.
    Server(String),
    /// The server answered with a well-formed frame of the wrong kind.
    Unexpected {
        /// What the call was waiting for.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
    /// The reply echoed a different request id than the one sent.
    IdMismatch {
        /// The id this client sent.
        sent: u64,
        /// The id the reply carried.
        got: u64,
    },
    /// A stats payload that did not parse as a snapshot.
    BadStats(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Protocol(err) => write!(f, "protocol error: {err}"),
            ServeError::Server(message) => write!(f, "server error: {message}"),
            ServeError::Unexpected { expected, got } => {
                write!(f, "expected a {expected} reply, got {got}")
            }
            ServeError::IdMismatch { sent, got } => {
                write!(f, "request id mismatch: sent {sent}, reply echoed {got}")
            }
            ServeError::BadStats(err) => write!(f, "malformed stats snapshot: {err}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ProtocolError> for ServeError {
    fn from(err: ProtocolError) -> Self {
        ServeError::Protocol(err)
    }
}

impl From<io::Error> for ServeError {
    fn from(err: io::Error) -> Self {
        ServeError::Protocol(ProtocolError::Io(err))
    }
}

/// A synchronous connection to an `iqft-serve` daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, next_id: 1 })
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    fn read_reply(&mut self, sent: u64) -> Result<Message, ServeError> {
        let (got, reply) = protocol::read_message(&mut self.stream)?;
        if let Message::Error { message } = reply {
            return Err(ServeError::Server(message));
        }
        if got != sent {
            return Err(ServeError::IdMismatch { sent, got });
        }
        Ok(reply)
    }

    fn round_trip(&mut self, request: &Message) -> Result<Message, ServeError> {
        let sent = self.next_id();
        protocol::write_message(&mut self.stream, sent, request)?;
        self.read_reply(sent)
    }

    /// Liveness probe: sends `Ping`, expects `Pong`.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Message::Ping)? {
            Message::Pong => Ok(()),
            other => Err(ServeError::Unexpected {
                expected: "Pong",
                got: other.name(),
            }),
        }
    }

    /// Segments `image` on the server and returns the label map.
    ///
    /// The reply's dimensions are checked against the request's, so a
    /// confused server cannot hand back a mis-shaped map silently.  The
    /// frame is encoded straight from the borrowed image
    /// ([`protocol::encode_segment`]); the hot path never clones the pixels.
    pub fn segment(&mut self, image: &RgbImage) -> Result<LabelMap, ServeError> {
        let sent = self.next_id();
        let frame = protocol::encode_segment(sent, image)?;
        {
            use std::io::Write as _;
            self.stream.write_all(&frame)?;
            self.stream.flush()?;
        }
        match self.read_reply(sent)? {
            Message::SegmentReply { labels } => {
                if labels.dimensions() != image.dimensions() {
                    return Err(ServeError::Unexpected {
                        expected: "SegmentReply with matching dimensions",
                        got: "SegmentReply with different dimensions",
                    });
                }
                Ok(labels)
            }
            other => Err(ServeError::Unexpected {
                expected: "SegmentReply",
                got: other.name(),
            }),
        }
    }

    /// Fetches and parses a server statistics snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        match self.round_trip(&Message::Stats)? {
            Message::StatsReply { text } => {
                StatsSnapshot::from_text(&text).map_err(ServeError::BadStats)
            }
            other => Err(ServeError::Unexpected {
                expected: "StatsReply",
                got: other.name(),
            }),
        }
    }

    /// Asks the server to drain and stop.  On `Ok`, the shutdown was
    /// acknowledged and the server is stopping; this connection is done.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Message::Shutdown)? {
            Message::ShutdownReply => Ok(()),
            other => Err(ServeError::Unexpected {
                expected: "ShutdownReply",
                got: other.name(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_diagnostics() {
        let err = ServeError::IdMismatch { sent: 4, got: 9 };
        assert!(err.to_string().contains("sent 4"));
        let err = ServeError::Unexpected {
            expected: "Pong",
            got: "StatsReply",
        };
        assert!(err.to_string().contains("Pong"));
        assert!(ServeError::Server("boom".into())
            .to_string()
            .contains("boom"));
        assert!(ServeError::BadStats("no plan".into())
            .to_string()
            .contains("no plan"));
    }

    #[test]
    fn connect_to_unbound_port_fails_cleanly() {
        // Port 1 on loopback is essentially never listening.
        assert!(Client::connect("127.0.0.1:1").is_err());
    }
}
