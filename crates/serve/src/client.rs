//! The synchronous client side of the `iqft-serve` protocol.
//!
//! A [`Client`] owns one TCP connection and issues request/response pairs in
//! lockstep: every call writes one frame, reads one frame, checks the echoed
//! request id, and converts a server [`Message::Error`] into
//! [`ServeError::Server`].  One client is one connection — for concurrent
//! load, open one client per thread (that is exactly what the
//! `iqft-experiments loadgen` subcommand does).

use crate::protocol::{self, Message, ProtocolError};
use crate::stats::StatsSnapshot;
use imaging::{LabelMap, RgbImage};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Write-poll granularity while a pipelined burst is being sent: when a
/// request write blocks this long, the client drains one reply to free
/// socket-buffer space instead of waiting (see
/// [`Client::segment_pipelined`]'s deadlock-safety note).
const PIPELINE_WRITE_POLL: Duration = Duration::from_millis(100);

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// The wire protocol failed (framing, limits, transport I/O).
    Protocol(ProtocolError),
    /// The server answered with an [`Message::Error`] frame.
    Server(String),
    /// The server refused admission ([`Message::Busy`]): its worker pool and
    /// wait queue are saturated.  The request was not executed and may be
    /// retried; the connection remains usable.
    Busy,
    /// The server answered with a well-formed frame of the wrong kind.
    Unexpected {
        /// What the call was waiting for.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
    /// The reply echoed a different request id than the one sent.
    IdMismatch {
        /// The id this client sent.
        sent: u64,
        /// The id the reply carried.
        got: u64,
    },
    /// A pipelined reply echoed an id with no outstanding request (or one
    /// already answered).
    UnknownId(u64),
    /// A stats payload that did not parse as a snapshot.
    BadStats(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Protocol(err) => write!(f, "protocol error: {err}"),
            ServeError::Server(message) => write!(f, "server error: {message}"),
            ServeError::Busy => write!(f, "server busy: admission refused, retry later"),
            ServeError::Unexpected { expected, got } => {
                write!(f, "expected a {expected} reply, got {got}")
            }
            ServeError::IdMismatch { sent, got } => {
                write!(f, "request id mismatch: sent {sent}, reply echoed {got}")
            }
            ServeError::UnknownId(got) => {
                write!(
                    f,
                    "pipelined reply echoed id {got}, which has no outstanding request"
                )
            }
            ServeError::BadStats(err) => write!(f, "malformed stats snapshot: {err}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ProtocolError> for ServeError {
    fn from(err: ProtocolError) -> Self {
        ServeError::Protocol(err)
    }
}

impl From<io::Error> for ServeError {
    fn from(err: io::Error) -> Self {
        ServeError::Protocol(ProtocolError::Io(err))
    }
}

/// What became of one request in a pipelined burst.
///
/// Unlike the lockstep calls — where admission refusal surfaces as
/// [`ServeError::Busy`] and aborts the call — a pipelined burst keeps
/// going when the server sheds one request, so each slot reports its own
/// fate.  A [`SegmentOutcome::Busy`] slot was never executed and may be
/// retried on the same connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentOutcome {
    /// The frame was segmented; `cached` says whether the server answered
    /// from its result cache (always `false` for plain `Segment` requests).
    Done {
        /// The computed label map, byte-identical to the serial reference.
        labels: LabelMap,
        /// Whether the reply was served from the server's result cache.
        cached: bool,
    },
    /// The server refused admission for this request (pool and queue
    /// saturated); it was not executed.
    Busy,
}

/// A synchronous connection to an `iqft-serve` daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, next_id: 1 })
    }

    /// Connects with a per-address connect timeout.
    ///
    /// Under a large fan-out (the load generator dialing a thousand
    /// connections) a plain [`Client::connect`] can sit in the OS default
    /// connect timeout for minutes when a listener's accept backlog
    /// overflows; this variant fails fast instead.  Every resolved address
    /// is tried in order, each under its own `timeout`.
    pub fn connect_timeout<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<Client> {
        let mut last_err = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(Client { stream, next_id: 1 });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    fn read_reply(&mut self, sent: u64) -> Result<Message, ServeError> {
        let (got, reply) = protocol::read_message(&mut self.stream)?;
        if let Message::Error { message } = reply {
            return Err(ServeError::Server(message));
        }
        if let Message::Busy = reply {
            return Err(ServeError::Busy);
        }
        if got != sent {
            return Err(ServeError::IdMismatch { sent, got });
        }
        Ok(reply)
    }

    fn round_trip(&mut self, request: &Message) -> Result<Message, ServeError> {
        let sent = self.next_id();
        protocol::write_message(&mut self.stream, sent, request)?;
        self.read_reply(sent)
    }

    /// Liveness probe: sends `Ping`, expects `Pong`.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Message::Ping)? {
            Message::Pong => Ok(()),
            other => Err(ServeError::Unexpected {
                expected: "Pong",
                got: other.name(),
            }),
        }
    }

    /// Segments `image` on the server and returns the label map.
    ///
    /// The reply's dimensions are checked against the request's, so a
    /// confused server cannot hand back a mis-shaped map silently.  The
    /// frame is encoded straight from the borrowed image
    /// ([`protocol::encode_segment`]); the hot path never clones the pixels.
    pub fn segment(&mut self, image: &RgbImage) -> Result<LabelMap, ServeError> {
        let sent = self.next_id();
        let frame = protocol::encode_segment(sent, image)?;
        {
            use std::io::Write as _;
            self.stream.write_all(&frame)?;
            self.stream.flush()?;
        }
        match self.read_reply(sent)? {
            Message::SegmentReply { labels } => {
                if labels.dimensions() != image.dimensions() {
                    return Err(ServeError::Unexpected {
                        expected: "SegmentReply with matching dimensions",
                        got: "SegmentReply with different dimensions",
                    });
                }
                Ok(labels)
            }
            other => Err(ServeError::Unexpected {
                expected: "SegmentReply",
                got: other.name(),
            }),
        }
    }

    /// Segments `image` through the server's content-addressed result cache
    /// (protocol v2's `SegmentCached` op).  Returns the labels plus whether
    /// the server answered from its cache; with `bypass` the server skips
    /// the cache entirely (neither lookup nor store).  Hit or miss, the
    /// labels are byte-identical to [`Client::segment`].
    pub fn segment_cached(
        &mut self,
        image: &RgbImage,
        bypass: bool,
    ) -> Result<(LabelMap, bool), ServeError> {
        let sent = self.next_id();
        let frame = protocol::encode_segment_cached(sent, image, bypass)?;
        {
            use std::io::Write as _;
            self.stream.write_all(&frame)?;
            self.stream.flush()?;
        }
        match self.read_reply(sent)? {
            Message::SegmentCachedReply { labels, cached } => {
                if labels.dimensions() != image.dimensions() {
                    return Err(ServeError::Unexpected {
                        expected: "SegmentCachedReply with matching dimensions",
                        got: "SegmentCachedReply with different dimensions",
                    });
                }
                Ok((labels, cached))
            }
            other => Err(ServeError::Unexpected {
                expected: "SegmentCachedReply",
                got: other.name(),
            }),
        }
    }

    /// Segments `image` through the server's per-tile delta cache (protocol
    /// v2's `SegmentDelta` op).  Returns the labels plus
    /// `(tiles_hit, tiles_recomputed)` — how many of the frame's tiles the
    /// server stitched from cached label tiles versus re-classified.  The
    /// stitched result is byte-identical to [`Client::segment`]; only the
    /// cost differs, scaling with how much of the frame changed since the
    /// tiles were last seen.
    pub fn segment_delta(&mut self, image: &RgbImage) -> Result<(LabelMap, u32, u32), ServeError> {
        let sent = self.next_id();
        let frame = protocol::encode_segment_delta(sent, image)?;
        {
            use std::io::Write as _;
            self.stream.write_all(&frame)?;
            self.stream.flush()?;
        }
        match self.read_reply(sent)? {
            Message::SegmentDeltaReply {
                labels,
                tiles_hit,
                tiles_recomputed,
            } => {
                if labels.dimensions() != image.dimensions() {
                    return Err(ServeError::Unexpected {
                        expected: "SegmentDeltaReply with matching dimensions",
                        got: "SegmentDeltaReply with different dimensions",
                    });
                }
                Ok((labels, tiles_hit, tiles_recomputed))
            }
            other => Err(ServeError::Unexpected {
                expected: "SegmentDeltaReply",
                got: other.name(),
            }),
        }
    }

    /// Segments a whole slice of images with up to `depth` requests in
    /// flight on this one connection (protocol v2 pipelining) — the client
    /// no longer pays one network round-trip per image.
    ///
    /// `depth` is clamped to `1..=`[`protocol::MAX_PIPELINE_DEPTH`].  With
    /// `use_cache` the requests go through the server's result cache
    /// (`SegmentCached`); otherwise plain `Segment` frames are sent.
    ///
    /// Replies may arrive in any completion order; they are matched back to
    /// their requests by the echoed id, so the returned vector is always in
    /// input order.  Each element is a [`SegmentOutcome`]: either the labels
    /// plus the served-from-cache flag, or [`SegmentOutcome::Busy`] when the
    /// server shed that request under overload (the rest of the burst still
    /// completes).
    ///
    /// Deadlock safety: a pipelined burst can exceed what the kernel socket
    /// buffers hold (large frames, deep pipelines), and a server blocked
    /// writing a reply nobody reads would stall the client's own writes
    /// forever.  Request writes therefore run with a short write timeout,
    /// and whenever a write would block while replies are outstanding the
    /// client drains one reply before continuing — writes and reads
    /// interleave on the full-duplex socket, so progress is always possible
    /// on at least one side.
    pub fn segment_pipelined(
        &mut self,
        images: &[&RgbImage],
        depth: usize,
        use_cache: bool,
    ) -> Result<Vec<SegmentOutcome>, ServeError> {
        let depth = depth.clamp(1, protocol::MAX_PIPELINE_DEPTH);
        let mut results: Vec<Option<SegmentOutcome>> = (0..images.len()).map(|_| None).collect();
        let mut pending: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut next = 0usize;
        self.stream
            .set_write_timeout(Some(PIPELINE_WRITE_POLL))
            .map_err(|e| ServeError::Protocol(e.into()))?;
        let outcome = (|| -> Result<(), ServeError> {
            while results.iter().any(|slot| slot.is_none()) {
                // Keep the pipe full: write until `depth` requests are in
                // flight (or the input is exhausted), then read one reply.
                while next < images.len() && pending.len() < depth {
                    let id = self.next_id();
                    let frame = if use_cache {
                        protocol::encode_segment_cached(id, images[next], false)?
                    } else {
                        protocol::encode_segment(id, images[next])?
                    };
                    // Insert before writing: if the write has to drain
                    // replies mid-frame, this request is already addressable.
                    pending.insert(id, next);
                    next += 1;
                    self.write_frame_draining(&frame, &mut pending, &mut results, images)?;
                }
                self.receive_pipelined_reply(&mut pending, &mut results, images)?;
            }
            Ok(())
        })();
        // Restore blocking writes for the lockstep calls whatever happened.
        let _ = self.stream.set_write_timeout(None);
        outcome?;
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("every request was answered"))
            .collect())
    }

    /// Writes one request frame under the pipeline write timeout, draining
    /// a reply whenever the write would block and replies are outstanding —
    /// the socket's send buffer can only be full because the peer (or this
    /// side's receive path) has unread data in flight.
    fn write_frame_draining(
        &mut self,
        frame: &[u8],
        pending: &mut std::collections::HashMap<u64, usize>,
        results: &mut [Option<SegmentOutcome>],
        images: &[&RgbImage],
    ) -> Result<(), ServeError> {
        use std::io::Write as _;
        let mut written = 0usize;
        while written < frame.len() {
            match self.stream.write(&frame[written..]) {
                Ok(0) => {
                    return Err(ServeError::Protocol(ProtocolError::Io(
                        io::ErrorKind::WriteZero.into(),
                    )))
                }
                Ok(n) => written += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // More than this half-written frame is outstanding:
                    // free buffer space by consuming a reply.  (With only
                    // the in-progress frame pending the server cannot be
                    // mid-reply; it drains our bytes as it reads the frame,
                    // so simply retrying makes progress.)
                    if pending.len() > 1 {
                        self.receive_pipelined_reply(pending, results, images)?;
                    }
                }
                Err(e) => return Err(ServeError::Protocol(ProtocolError::Io(e))),
            }
        }
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one pipelined reply and files it into `results` by echoed id.
    fn receive_pipelined_reply(
        &mut self,
        pending: &mut std::collections::HashMap<u64, usize>,
        results: &mut [Option<SegmentOutcome>],
        images: &[&RgbImage],
    ) -> Result<(), ServeError> {
        let (got, reply) = protocol::read_message(&mut self.stream)?;
        if let Message::Error { message } = reply {
            return Err(ServeError::Server(message));
        }
        let Some(slot) = pending.remove(&got) else {
            return Err(ServeError::UnknownId(got));
        };
        let (labels, cached) = match reply {
            Message::SegmentCachedReply { labels, cached } => (labels, cached),
            Message::SegmentReply { labels } => (labels, false),
            Message::Busy => {
                results[slot] = Some(SegmentOutcome::Busy);
                return Ok(());
            }
            other => {
                return Err(ServeError::Unexpected {
                    expected: "SegmentReply or SegmentCachedReply",
                    got: other.name(),
                })
            }
        };
        if labels.dimensions() != images[slot].dimensions() {
            return Err(ServeError::Unexpected {
                expected: "a reply with matching dimensions",
                got: "a reply with different dimensions",
            });
        }
        results[slot] = Some(SegmentOutcome::Done { labels, cached });
        Ok(())
    }

    /// Fetches and parses a server statistics snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        match self.round_trip(&Message::Stats)? {
            Message::StatsReply { text } => {
                StatsSnapshot::from_text(&text).map_err(ServeError::BadStats)
            }
            other => Err(ServeError::Unexpected {
                expected: "StatsReply",
                got: other.name(),
            }),
        }
    }

    /// Asks the server to drain and stop.  On `Ok`, the shutdown was
    /// acknowledged and the server is stopping; this connection is done.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Message::Shutdown)? {
            Message::ShutdownReply => Ok(()),
            other => Err(ServeError::Unexpected {
                expected: "ShutdownReply",
                got: other.name(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_diagnostics() {
        let err = ServeError::IdMismatch { sent: 4, got: 9 };
        assert!(err.to_string().contains("sent 4"));
        let err = ServeError::Unexpected {
            expected: "Pong",
            got: "StatsReply",
        };
        assert!(err.to_string().contains("Pong"));
        assert!(ServeError::Server("boom".into())
            .to_string()
            .contains("boom"));
        assert!(ServeError::BadStats("no plan".into())
            .to_string()
            .contains("no plan"));
        assert!(ServeError::Busy.to_string().contains("busy"));
    }

    #[test]
    fn connect_to_unbound_port_fails_cleanly() {
        // Port 1 on loopback is essentially never listening.
        assert!(Client::connect("127.0.0.1:1").is_err());
    }
}
