//! The evented serving core: a hand-rolled nonblocking readiness loop.
//!
//! Layering (sans-io at the center, I/O at the edges):
//!
//! ```text
//!              accept            readable             complete frame
//!   listener ────────► reactor ──────────► FrameDecoder ─────────────┐
//!   (nonblocking,        │  ▲                (no I/O inside)         │
//!    owned by            │  │ wake                                   ▼
//!    reactor 0)          │  │                        light ops   segment ops
//!                        │  │                        (inline)    (worker pool,
//!                        │  │                            │        max_inflight
//!                        │  └── completions ◄────────────┼─────── threads)
//!                        ▼                               ▼
//!                   poll(2) over ◄──────────────── FrameEncoder
//!                   all conn fds      writable      (per-conn write buffer)
//! ```
//!
//! A small fixed set of reactor threads ([`REACTOR_THREADS`]) owns *all*
//! connections; the acceptor is just the listener's readiness entry in
//! reactor 0's poll set, and new connections are dealt round-robin across
//! reactors.  Each connection costs one [`FrameDecoder`] + [`FrameEncoder`]
//! pair and a few counters — kilobytes, not an OS thread — which is what
//! lets one daemon hold a thousand-plus pipelined connections.
//!
//! Work split: each connection's complete frames are processed strictly in
//! arrival order.  `Ping`/`Stats`/`Shutdown` and all protocol errors are
//! answered inline on the reactor (they are O(µs)); `Segment`/
//! `SegmentCached`/`SegmentDelta` are dispatched to a worker pool of `max_inflight`
//! threads that shares the same warm pipeline the threaded mode uses — at
//! most one job per connection at a time, so per-connection execution is
//! serial exactly like a thread-per-connection server (same cache-hit
//! behaviour, same per-connection reply order), while connections execute
//! concurrently.  Workers hand encoded reply frames back through a
//! per-reactor completion queue and wake the reactor via a socketpair;
//! across connections replies ship in *completion order*, which protocol v2
//! explicitly permits (clients match replies by echoed id).
//!
//! Backpressure: a connection stops being polled for readability while it
//! has [`MAX_PIPELINE_DEPTH`] frames queued or more than
//! [`WRITE_HIGH_WATER`] unsent reply bytes — the kernel socket buffer then
//! pushes back on the client, bounding per-connection memory no matter how
//! fast the peer writes.  The worker queue is in turn bounded by what the
//! reactors admit: at most one dispatched frame per connection.
//!
//! Deadlines: the per-frame read deadline is reactor bookkeeping, not a
//! socket timeout — each mid-frame connection records when its frame must be
//! complete, the poll timeout is the nearest such deadline, and an expired
//! connection is closed without disturbing any other.  One stalled
//! (slow-loris) connection can never delay replies on a healthy one, because
//! nothing about the stalled fd blocks: it merely sits unready in the poll
//! set until its deadline fires.

#![cfg(unix)]

use crate::poll::{poll, PollFd, POLLIN, POLLOUT};
use crate::protocol::{self, Frame, FrameDecoder, FrameEncoder, Message, MAX_PIPELINE_DEPTH};
use crate::server::{ConnStats, Shared, POLL_INTERVAL, SHUTDOWN_GRACE};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Fixed number of reactor threads.  Readiness dispatch is cheap; two
/// threads keep accept latency low while one reactor is mid-sweep without
/// approaching a thread-per-connection footprint.
const REACTOR_THREADS: usize = 2;
/// A connection with more unsent reply bytes than this stops being read
/// until the peer drains some — bounding per-connection memory.
const WRITE_HIGH_WATER: usize = 8 << 20;
/// Read scratch size per reactor (shared across its connections).
const READ_CHUNK: usize = 64 << 10;

/// A segment request dispatched from a reactor to the worker pool.
struct Job {
    reactor: usize,
    conn: usize,
    gen: u64,
    request_id: u64,
    message: Message,
    pixels: Arc<AtomicU64>,
}

/// An encoded reply frame travelling back from a worker to a reactor.
struct Completion {
    conn: usize,
    gen: u64,
    frame: Vec<u8>,
}

#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

/// The cross-thread face of one reactor: an inbox plus a socketpair waker.
struct ReactorHandle {
    inbox: Mutex<Inbox>,
    waker: UnixStream,
}

impl ReactorHandle {
    fn wake(&self) {
        // Nonblocking: if the pair's buffer is full the reactor already has
        // a pending wake-up, which is all a wake-up means.
        let _ = (&self.waker).write(&[1]);
    }

    fn push_conn(&self, stream: TcpStream) {
        self.inbox
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .conns
            .push(stream);
        self.wake();
    }

    fn push_completion(&self, completion: Completion) {
        self.inbox
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .completions
            .push(completion);
        self.wake();
    }
}

/// One connection's entire server-side state.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    encoder: FrameEncoder,
    /// Pixels segmented for this connection (written by workers).
    pixels: Arc<AtomicU64>,
    /// Frames started on this connection (header fully received).
    requests: usize,
    /// `decoder.frames_started()` already folded into the counters above.
    counted: u64,
    /// Complete frames decoded but not yet processed.  Frames on one
    /// connection are handled strictly in arrival order with at most one
    /// dispatched to the worker pool at a time — the same per-connection
    /// serial semantics (and therefore the same cache-hit behaviour and
    /// reply order) as a thread-per-connection server.
    queue: VecDeque<Frame>,
    /// Whether a dispatched job's completion is still outstanding.
    inflight: bool,
    read_eof: bool,
    /// No more reads; flush + finish pending work, then close.
    closing: bool,
    /// When the in-progress frame must be complete (reactor bookkeeping —
    /// the satellite bugfix replacing per-thread socket timeouts).
    frame_deadline: Option<Instant>,
    idle_since: Instant,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            encoder: FrameEncoder::new(),
            pixels: Arc::new(AtomicU64::new(0)),
            requests: 0,
            counted: 0,
            queue: VecDeque::new(),
            inflight: false,
            read_eof: false,
            closing: false,
            frame_deadline: None,
            idle_since: now,
        }
    }

    /// Whether the reactor should keep polling this connection for reads.
    fn wants_read(&self) -> bool {
        !self.closing
            && !self.read_eof
            && !self.decoder.is_failed()
            && self.queue.len() < MAX_PIPELINE_DEPTH
            && self.encoder.pending_len() < WRITE_HIGH_WATER
    }

    /// Nothing in flight, nothing buffered, no partial frame.
    fn is_idle(&self) -> bool {
        self.queue.is_empty()
            && !self.inflight
            && self.encoder.is_empty()
            && !self.decoder.mid_frame()
            && !self.closing
    }

    /// Finished: the peer is done (or we are) and all owed replies shipped.
    /// A closing connection abandons its queue (framing was lost or the
    /// server is stopping); a peer that merely half-closed its write side
    /// still gets every queued frame answered first.
    fn is_done(&self) -> bool {
        if self.inflight || !self.encoder.is_empty() {
            return false;
        }
        self.closing || (self.read_eof && self.queue.is_empty())
    }
}

/// Writes as much queued output as the socket accepts right now.
fn flush(conn: &mut Conn) -> io::Result<()> {
    while !conn.encoder.is_empty() {
        match (&conn.stream).write(conn.encoder.pending()) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.encoder.advance(n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

struct Slot {
    gen: u64,
    conn: Option<Conn>,
}

struct Reactor {
    index: usize,
    shared: Arc<Shared>,
    handle: Arc<ReactorHandle>,
    peers: Arc<Vec<Arc<ReactorHandle>>>,
    waker_rx: UnixStream,
    /// Reactor 0 owns the (nonblocking) listener; its readiness entry *is*
    /// the acceptor.
    listener: Option<TcpListener>,
    accepting_done: Arc<AtomicBool>,
    job_tx: Sender<Job>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    next_assign: usize,
    shutdown_seen: Option<Instant>,
}

enum Target {
    Waker,
    Listener,
    Conn(usize),
}

impl Reactor {
    fn run(mut self) {
        let mut scratch = vec![0u8; READ_CHUNK];
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut targets: Vec<Target> = Vec::new();
        loop {
            let now = Instant::now();
            let shutting_down = self.shared.shutting_down();
            if shutting_down && self.shutdown_seen.is_none() {
                self.shutdown_seen = Some(now);
            }
            if shutting_down {
                if let Some(listener) = self.listener.take() {
                    // Serve whatever was already queued in the accept backlog
                    // at shutdown (same guarantee as the threaded acceptor),
                    // then stop accepting for good.
                    self.accept_ready(&listener, now);
                    drop(listener);
                    self.accepting_done.store(true, Ordering::SeqCst);
                    for peer in self.peers.iter() {
                        peer.wake();
                    }
                }
            }
            self.drain_inbox(now);
            self.sweep(now, shutting_down);
            if shutting_down && self.accepting_done.load(Ordering::SeqCst) && self.live_conns() == 0
            {
                let inbox = self.handle.inbox.lock().unwrap_or_else(|e| e.into_inner());
                if inbox.conns.is_empty() && inbox.completions.is_empty() {
                    break;
                }
                continue;
            }
            pollfds.clear();
            targets.clear();
            pollfds.push(PollFd::new(self.waker_rx.as_raw_fd(), POLLIN));
            targets.push(Target::Waker);
            if let Some(listener) = &self.listener {
                pollfds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                targets.push(Target::Listener);
            }
            let mut timeout = if shutting_down {
                SHUTDOWN_GRACE
            } else {
                POLL_INTERVAL
            };
            for (idx, slot) in self.slots.iter().enumerate() {
                let Some(conn) = &slot.conn else { continue };
                let mut events = 0i16;
                if conn.wants_read() {
                    events |= POLLIN;
                }
                if !conn.encoder.is_empty() {
                    events |= POLLOUT;
                }
                pollfds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                targets.push(Target::Conn(idx));
                // Poll timeout = the nearest deadline among mid-frame
                // connections (and, during a drain, the nearest idle-grace
                // cutoff) — deadline bookkeeping lives here, in the
                // reactor, not in per-socket timeouts.
                if let Some(deadline) = conn.frame_deadline {
                    timeout = timeout.min(deadline.saturating_duration_since(now));
                }
                if let (true, Some(seen)) = (conn.is_idle(), self.shutdown_seen) {
                    let cutoff = conn.idle_since.max(seen) + SHUTDOWN_GRACE;
                    timeout = timeout.min(cutoff.saturating_duration_since(now));
                }
            }
            let _ = poll(&mut pollfds, Some(timeout));
            let now = Instant::now();
            for (fd, target) in pollfds.iter().zip(&targets) {
                match target {
                    Target::Waker => {
                        if fd.readable() {
                            self.drain_waker();
                        }
                    }
                    Target::Listener => {
                        if fd.readable() {
                            if let Some(listener) = self.listener.take() {
                                self.accept_ready(&listener, now);
                                self.listener = Some(listener);
                            }
                        }
                    }
                    Target::Conn(idx) => {
                        if fd.ready() {
                            self.service_conn(*idx, fd.readable(), &mut scratch, now);
                        }
                    }
                }
            }
        }
    }

    fn live_conns(&self) -> usize {
        self.slots.iter().filter(|slot| slot.conn.is_some()).count()
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.waker_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn accept_ready(&mut self, listener: &TcpListener, now: Instant) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let target = self.next_assign % self.peers.len();
                    self.next_assign = self.next_assign.wrapping_add(1);
                    if target == self.index {
                        self.register(stream, now);
                    } else {
                        self.peers[target].push_conn(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient (ECONNABORTED etc.); the next readiness pass
                // retries, so no hot loop is possible here.
                Err(_) => break,
            }
        }
    }

    fn register(&mut self, stream: TcpStream, now: Instant) {
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        self.shared.stats.connection_opened();
        let conn = Conn::new(stream, now);
        match self.free.pop() {
            Some(idx) => self.slots[idx].conn = Some(conn),
            None => self.slots.push(Slot {
                gen: 0,
                conn: Some(conn),
            }),
        }
    }

    fn close(&mut self, idx: usize) {
        if self.slots[idx].conn.take().is_some() {
            self.shared.stats.connection_closed();
            // Bump the generation so stale completions for this slot are
            // recognised and dropped instead of landing on a new tenant.
            self.slots[idx].gen += 1;
            self.free.push(idx);
        }
    }

    fn drain_inbox(&mut self, now: Instant) {
        let (conns, completions) = {
            let mut inbox = self.handle.inbox.lock().unwrap_or_else(|e| e.into_inner());
            (
                std::mem::take(&mut inbox.conns),
                std::mem::take(&mut inbox.completions),
            )
        };
        for stream in conns {
            self.register(stream, now);
        }
        for completion in completions {
            let Some(slot) = self.slots.get_mut(completion.conn) else {
                continue;
            };
            if slot.gen != completion.gen {
                continue;
            }
            let Some(mut conn) = slot.conn.take() else {
                continue;
            };
            conn.inflight = false;
            conn.encoder.enqueue_frame(&completion.frame);
            conn.idle_since = now;
            // The completed job unblocks this connection's frame queue.
            self.pump(&mut conn, completion.conn, completion.gen);
            let dead = flush(&mut conn).is_err();
            self.slots[completion.conn].conn = Some(conn);
            if dead {
                self.close(completion.conn);
            }
        }
    }

    /// Closes connections that are finished, stalled past their frame
    /// deadline, or idle past the shutdown grace window.
    fn sweep(&mut self, now: Instant, shutting_down: bool) {
        for idx in 0..self.slots.len() {
            let Some(conn) = &self.slots[idx].conn else {
                continue;
            };
            let stalled = conn.frame_deadline.is_some_and(|deadline| now >= deadline);
            let drained = shutting_down
                && conn.is_idle()
                && now >= conn.idle_since.max(self.shutdown_seen.unwrap_or(now)) + SHUTDOWN_GRACE;
            if conn.is_done() || stalled || drained {
                self.close(idx);
            }
        }
    }

    fn service_conn(&mut self, idx: usize, readable: bool, scratch: &mut [u8], now: Instant) {
        let Some(mut conn) = self.slots[idx].conn.take() else {
            return;
        };
        let gen = self.slots[idx].gen;
        let mut dead = false;
        if readable {
            dead = !self.read_conn(&mut conn, idx, gen, scratch, now);
        }
        if !dead && !conn.encoder.is_empty() {
            dead = flush(&mut conn).is_err();
        }
        if dead {
            self.slots[idx].conn = Some(conn);
            self.close(idx);
        } else {
            self.slots[idx].conn = Some(conn);
        }
    }

    /// Reads until the socket would block (or backpressure caps reading).
    /// Returns `false` when the connection died at the transport level.
    fn read_conn(
        &mut self,
        conn: &mut Conn,
        idx: usize,
        gen: u64,
        scratch: &mut [u8],
        now: Instant,
    ) -> bool {
        while conn.wants_read() {
            match (&conn.stream).read(scratch) {
                Ok(0) => {
                    conn.read_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.idle_since = now;
                    self.ingest(conn, idx, gen, &scratch[..n], now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// Feeds one received chunk through the sans-io decoder and handles
    /// every complete frame it yields.
    fn ingest(&self, conn: &mut Conn, idx: usize, gen: u64, chunk: &[u8], now: Instant) {
        let mut offset = 0;
        while offset < chunk.len() && !conn.closing {
            let (consumed, event) = conn.decoder.feed(&chunk[offset..]);
            offset += consumed;
            // Fold newly-started frames into the request counters at the
            // same point the threaded server does: the moment a full header
            // has arrived, valid or not.
            while conn.counted < conn.decoder.frames_started() {
                self.shared.stats.request();
                conn.requests += 1;
                conn.counted += 1;
            }
            match event {
                None if consumed == 0 => break, // poisoned decoder
                None => {}
                Some(Err(err)) => {
                    // Framing is lost: best-effort typed error reply (with
                    // the echoed id when the magic matched), then close.
                    self.shared.stats.protocol_error();
                    let id = conn.decoder.error_request_id();
                    let _ = conn.encoder.enqueue(
                        id,
                        &Message::Error {
                            message: err.to_string(),
                        },
                    );
                    conn.closing = true;
                }
                Some(Ok(frame)) => {
                    conn.frame_deadline = None;
                    conn.queue.push_back(frame);
                }
            }
        }
        // Arm the per-frame deadline when a frame is in progress; keep an
        // already-armed deadline (progress must not reset the budget).
        if conn.decoder.mid_frame() {
            conn.frame_deadline
                .get_or_insert(now + self.shared.frame_deadline);
        } else {
            conn.frame_deadline = None;
        }
        self.pump(conn, idx, gen);
    }

    /// Processes this connection's queued frames strictly in arrival order.
    /// Light ops answer inline; a segment op dispatches to the worker pool
    /// and blocks the queue until its completion returns — per-connection
    /// execution is serial, exactly like the thread-per-connection core, so
    /// the two modes share cache-hit behaviour and per-connection reply
    /// order.
    fn pump(&self, conn: &mut Conn, idx: usize, gen: u64) {
        while !conn.closing && !conn.inflight {
            let Some(frame) = conn.queue.pop_front() else {
                break;
            };
            let request_id = frame.header.request_id;
            let message = match frame.message() {
                Ok(message) => message,
                Err(err) => {
                    self.shared.stats.protocol_error();
                    let _ = conn.encoder.enqueue(
                        request_id,
                        &Message::Error {
                            message: err.to_string(),
                        },
                    );
                    conn.closing = true;
                    continue;
                }
            };
            match message {
                message @ (Message::Segment { .. }
                | Message::SegmentCached { .. }
                | Message::SegmentDelta { .. }) => {
                    // Admission control: the worker pool drains the queue
                    // counter as it picks jobs up, so the counter gauges
                    // *waiting* work.  Claim a queue slot optimistically;
                    // if that overshoots the limit, give it back and answer
                    // with the typed Busy reply instead of queueing
                    // unboundedly (count before the reply can ship).
                    let max_queue = self.shared.max_queue;
                    if max_queue != 0 {
                        let queued = self.shared.queued_jobs.fetch_add(1, Ordering::Relaxed);
                        if queued >= max_queue {
                            self.shared.queued_jobs.fetch_sub(1, Ordering::Relaxed);
                            self.shared.stats.busy_rejection();
                            let _ = conn.encoder.enqueue(request_id, &Message::Busy);
                            continue;
                        }
                    } else {
                        self.shared.queued_jobs.fetch_add(1, Ordering::Relaxed);
                    }
                    let job = Job {
                        reactor: self.index,
                        conn: idx,
                        gen,
                        request_id,
                        message,
                        pixels: Arc::clone(&conn.pixels),
                    };
                    conn.inflight = true;
                    if self.job_tx.send(job).is_err() {
                        // Workers are gone (teardown race); nothing can
                        // answer.
                        self.shared.queued_jobs.fetch_sub(1, Ordering::Relaxed);
                        conn.inflight = false;
                        conn.closing = true;
                    }
                }
                Message::Ping => {
                    let _ = conn.encoder.enqueue(request_id, &Message::Pong);
                }
                Message::Stats => {
                    let text = self
                        .shared
                        .snapshot(&ConnStats {
                            requests: conn.requests,
                            pixels: conn.pixels.load(Ordering::Relaxed),
                        })
                        .to_text();
                    let _ = conn
                        .encoder
                        .enqueue(request_id, &Message::StatsReply { text });
                }
                Message::Shutdown => {
                    let _ = conn.encoder.enqueue(request_id, &Message::ShutdownReply);
                    self.shared.signal_shutdown();
                    conn.closing = true;
                }
                // A reply op arriving as a request is a protocol violation; say
                // so precisely (the op *is* known, it is just not a request).
                other => {
                    self.shared.stats.protocol_error();
                    let _ = conn.encoder.enqueue(
                        request_id,
                        &Message::Error {
                            message: format!(
                                "{} is a reply op and cannot be sent as a request",
                                other.name()
                            ),
                        },
                    );
                    conn.closing = true;
                }
            }
        }
    }
}

/// Executes one dispatched segment request against the shared pipeline and
/// returns the encoded reply frame (counters updated before the frame can
/// reach the wire, mirroring the threaded path).
fn execute_job(shared: &Shared, request_id: u64, message: Message, pixels: &AtomicU64) -> Vec<u8> {
    let started = Instant::now();
    let reply = match message {
        Message::Segment { image } => {
            let labels = shared.pipeline.segment_request(&image);
            shared.stats.record_latency(started.elapsed());
            shared.stats.segmented(labels.len());
            pixels.fetch_add(labels.len() as u64, Ordering::Relaxed);
            Message::SegmentReply { labels }
        }
        Message::SegmentCached { image, bypass } => {
            let (labels, cached) = shared.pipeline.segment_request_cached(&image, bypass);
            shared.stats.record_latency(started.elapsed());
            shared.stats.segmented(labels.len());
            pixels.fetch_add(labels.len() as u64, Ordering::Relaxed);
            Message::SegmentCachedReply { labels, cached }
        }
        Message::SegmentDelta { image } => {
            let (labels, tiles_hit, tiles_recomputed) =
                shared.pipeline.segment_request_delta(&image);
            shared.stats.record_latency(started.elapsed());
            shared.stats.segmented(labels.len());
            pixels.fetch_add(labels.len() as u64, Ordering::Relaxed);
            Message::SegmentDeltaReply {
                labels,
                tiles_hit,
                tiles_recomputed,
            }
        }
        // Reactors only dispatch segment ops; anything else is a bug we
        // answer with a diagnostic rather than a panic.
        other => Message::Error {
            message: format!("{} cannot be executed by the worker pool", other.name()),
        },
    };
    let frame = protocol::encode_message(request_id, &reply).unwrap_or_else(|err| {
        protocol::encode_message(
            request_id,
            &Message::Error {
                message: err.to_string(),
            },
        )
        .expect("an error reply always fits in a frame")
    });
    // Reply bytes are encoded; the label buffer can go back to the arena.
    match reply {
        Message::SegmentReply { labels }
        | Message::SegmentCachedReply { labels, .. }
        | Message::SegmentDeltaReply { labels, .. } => {
            shared.pipeline.recycle(labels);
        }
        _ => {}
    }
    frame
}

fn worker_loop(
    shared: Arc<Shared>,
    job_rx: Arc<Mutex<Receiver<Job>>>,
    reactors: Arc<Vec<Arc<ReactorHandle>>>,
) {
    loop {
        // Holding the lock across `recv` serialises dispatch, not execution:
        // the holder sleeps until a job arrives, takes it, and releases.
        let job = {
            let rx = job_rx.lock().unwrap_or_else(|e| e.into_inner());
            match rx.recv() {
                Ok(job) => job,
                Err(_) => break, // all reactors gone: drain complete
            }
        };
        // The job left the queue and is now executing: release its admission
        // slot so the gauge tracks waiting work, not in-flight work.
        shared.queued_jobs.fetch_sub(1, Ordering::Relaxed);
        let frame = execute_job(&shared, job.request_id, job.message, &job.pixels);
        reactors[job.reactor].push_completion(Completion {
            conn: job.conn,
            gen: job.gen,
            frame,
        });
    }
}

/// Boots the evented core: reactor threads, the worker pool, and one
/// coordinator thread (returned) that joins them all — so `Server::join`
/// keeps its drain-then-stop contract unchanged.
pub(crate) fn spawn(listener: TcpListener, shared: Arc<Shared>) -> io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    let mut handles = Vec::with_capacity(REACTOR_THREADS);
    let mut wake_receivers = Vec::with_capacity(REACTOR_THREADS);
    for _ in 0..REACTOR_THREADS {
        let (rx, tx) = UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        handles.push(Arc::new(ReactorHandle {
            inbox: Mutex::new(Inbox::default()),
            waker: tx,
        }));
        wake_receivers.push(rx);
    }
    let handles = Arc::new(handles);
    let accepting_done = Arc::new(AtomicBool::new(false));
    let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let mut listener = Some(listener);
    let mut reactor_threads = Vec::with_capacity(REACTOR_THREADS);
    for (index, waker_rx) in wake_receivers.into_iter().enumerate() {
        let reactor = Reactor {
            index,
            shared: Arc::clone(&shared),
            handle: Arc::clone(&handles[index]),
            peers: Arc::clone(&handles),
            waker_rx,
            listener: if index == 0 { listener.take() } else { None },
            accepting_done: Arc::clone(&accepting_done),
            job_tx: job_tx.clone(),
            slots: Vec::new(),
            free: Vec::new(),
            next_assign: 0,
            shutdown_seen: None,
        };
        reactor_threads.push(
            std::thread::Builder::new()
                .name(format!("iqft-serve-reactor-{index}"))
                .spawn(move || reactor.run())?,
        );
    }
    // Workers exit when every reactor's job sender is dropped.
    drop(job_tx);
    let worker_count = shared.max_inflight.max(1);
    let mut worker_threads = Vec::with_capacity(worker_count);
    for index in 0..worker_count {
        let shared = Arc::clone(&shared);
        let job_rx = Arc::clone(&job_rx);
        let reactors = Arc::clone(&handles);
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("iqft-serve-worker-{index}"))
                .spawn(move || worker_loop(shared, job_rx, reactors))?,
        );
    }
    std::thread::Builder::new()
        .name("iqft-serve-evented".to_string())
        .spawn(move || {
            for handle in reactor_threads {
                let _ = handle.join();
            }
            for handle in worker_threads {
                let _ = handle.join();
            }
        })
}
