//! Server-side counters and the wire-level statistics snapshot.
//!
//! [`ServerStats`] is the live atomic counter block the server updates on
//! every frame; [`StatsSnapshot`] is the frozen, serializable view a
//! [`crate::protocol::Op::Stats`] request receives.  The snapshot travels as
//! plain `key=value` lines (one per field, split on the *first* `=` so values
//! may themselves contain `=`, like the plan spec), which keeps the protocol
//! free of any external serialization dependency and trivially
//! forward-compatible: unknown keys are preserved in
//! [`StatsSnapshot::extra`], so they survive a decode→encode round trip
//! instead of silently vanishing when an older client polls a newer daemon.

use iqft_pipeline::{LatencyHistogram, LatencySummary};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Live aggregate counters for a running server.
///
/// All counters are monotonic and relaxed — they feed an operator-facing
/// snapshot, not a synchronization protocol.  The latency histogram is the
/// same lock-free log-bucketed structure offline pipeline runs use, so both
/// serving cores record per-op service time with no lock on the hot path.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted since boot.
    connections_total: AtomicUsize,
    /// Connections currently open.
    connections_open: AtomicUsize,
    /// Frames handled (any op, including errors).
    requests_total: AtomicUsize,
    /// Segment requests completed.
    segment_requests: AtomicUsize,
    /// Pixels segmented.
    pixels_total: AtomicU64,
    /// Frames that failed to decode or execute.
    protocol_errors: AtomicUsize,
    /// Segment requests refused with a typed `Busy` reply because the
    /// admission limit (`max_queue`) was reached.
    busy_rejections: AtomicUsize,
    /// Per-op service latency (pipeline execution time) across every
    /// connection and both serving cores.
    latency: LatencyHistogram,
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an accepted connection.
    pub fn connection_opened(&self) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a closed connection.
    pub fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one handled frame.
    pub fn request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed segmentation of `pixels` pixels.
    pub fn segmented(&self, pixels: usize) {
        self.segment_requests.fetch_add(1, Ordering::Relaxed);
        self.pixels_total
            .fetch_add(pixels as u64, Ordering::Relaxed);
    }

    /// Records a malformed or failed frame.
    pub fn protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a segment request refused with a typed `Busy` reply.
    pub fn busy_rejection(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the service latency of one completed segment request.
    pub fn record_latency(&self, latency: Duration) {
        self.latency.record(latency);
    }

    /// Percentile summary of every recorded service latency.
    pub fn latency_summary(&self) -> LatencySummary {
        self.latency.summary()
    }

    /// Frames handled so far (any op).
    pub fn requests_total(&self) -> usize {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Segment requests completed so far.
    pub fn segment_requests(&self) -> usize {
        self.segment_requests.load(Ordering::Relaxed)
    }

    /// Pixels segmented so far.
    pub fn pixels_total(&self) -> u64 {
        self.pixels_total.load(Ordering::Relaxed)
    }

    /// Frames rejected so far.
    pub fn protocol_errors(&self) -> usize {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Segment requests refused with a typed `Busy` reply so far.
    pub fn busy_rejections(&self) -> usize {
        self.busy_rejections.load(Ordering::Relaxed)
    }

    /// Connections accepted since boot.
    pub fn connections_total(&self) -> usize {
        self.connections_total.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn connections_open(&self) -> usize {
        self.connections_open.load(Ordering::Relaxed)
    }
}

/// A frozen statistics snapshot, as carried by a `StatsReply` frame.
///
/// Combines the aggregate server counters, the arena's recycling counters
/// (the "arena hits" the pipeline earns), the serialized
/// [`seg_engine::SegmentPlan`] spec, and the requesting *connection's* own
/// counters — so a client sees both the server-wide picture and its share.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// The server's segmentation strategy (`SegmentPlan::to_spec` format).
    pub plan: String,
    /// The serving core that produced this snapshot (`threads` | `evented`;
    /// empty when talking to a server that predates serve modes).
    pub serve_mode: String,
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Connections accepted since boot.
    pub connections_total: usize,
    /// Connections currently open.
    pub connections_open: usize,
    /// Frames handled (any op).
    pub requests_total: usize,
    /// Segment requests completed.
    pub segment_requests: usize,
    /// Pixels segmented.
    pub pixels_total: u64,
    /// Aggregate segmentation throughput since boot, in megapixels/second
    /// (includes idle time; a load generator should prefer its own clock).
    pub mpix_per_sec: f64,
    /// Frames that failed to decode or execute.
    pub protocol_errors: usize,
    /// Label-buffer allocations the arena could not avoid.
    pub arena_allocations: usize,
    /// Label-buffer takes served from the recycling pool (arena hits).
    pub arena_reuses: usize,
    /// Buffers currently pooled in the arena.
    pub arena_pooled: usize,
    /// Maximum concurrently-executing segment requests.
    pub max_inflight: usize,
    /// Result-cache lookups answered from the cache (0 when disabled).
    pub cache_hits: usize,
    /// Result-cache lookups that missed (0 when disabled).
    pub cache_misses: usize,
    /// Result-cache entries evicted under the byte budget (0 when disabled).
    pub cache_evictions: usize,
    /// Entries resident in the result cache.
    pub cache_entries: usize,
    /// Bytes charged against the result cache's budget.
    pub cache_bytes: usize,
    /// The result cache's configured byte budget (0 = caching disabled).
    pub cache_capacity_bytes: usize,
    /// Delta-path tiles answered from the result cache (0 when disabled or
    /// when no `SegmentDelta` request has been served).
    pub delta_tiles_hit: usize,
    /// Delta-path tiles re-classified because their content hash missed.
    pub delta_tiles_recomputed: usize,
    /// Pixels the quantized classifier routed through its f64 exactness
    /// oracle because the fixed-point arg-max was ambiguous (0 for
    /// non-quantized classifier kinds, which have no fallback path).
    pub quant_fallback_pixels: u64,
    /// Admission limit: segment requests beyond the worker pool plus this
    /// many queued get a typed `Busy` reply (0 = unbounded queueing).
    pub max_queue: usize,
    /// Segment requests refused with a typed `Busy` reply.
    pub busy_rejections: usize,
    /// Startup-calibration summary (probe counts and the best measured
    /// throughput); empty when the server booted with an explicit plan.
    pub calibration: String,
    /// Service-latency samples recorded (one per completed segment request).
    pub lat_count: u64,
    /// Median service latency in microseconds.
    pub lat_p50_us: u64,
    /// 90th-percentile service latency in microseconds.
    pub lat_p90_us: u64,
    /// 99th-percentile service latency in microseconds.
    pub lat_p99_us: u64,
    /// 99.9th-percentile service latency in microseconds.
    pub lat_p999_us: u64,
    /// Maximum service latency in microseconds (exact, not bucket-quantised).
    pub lat_max_us: u64,
    /// Frames handled on the connection that asked for this snapshot.
    pub conn_requests: usize,
    /// Pixels segmented on the connection that asked for this snapshot.
    pub conn_pixels: u64,
    /// `key=value` pairs this decoder did not recognise, preserved verbatim
    /// (sorted by key) so they survive a decode→encode round trip — a newer
    /// daemon's keys are never dropped by an older relay.
    pub extra: BTreeMap<String, String>,
}

impl StatsSnapshot {
    /// Fills the latency fields from a histogram summary (nanoseconds →
    /// microseconds).
    pub fn set_latency(&mut self, summary: LatencySummary) {
        self.lat_count = summary.count;
        self.lat_p50_us = summary.p50_ns / 1_000;
        self.lat_p90_us = summary.p90_ns / 1_000;
        self.lat_p99_us = summary.p99_ns / 1_000;
        self.lat_p999_us = summary.p999_ns / 1_000;
        self.lat_max_us = summary.max_ns / 1_000;
    }

    /// Reads a forward-compat key from [`StatsSnapshot::extra`] as a `u64`.
    ///
    /// This is the typed counterpart to the server writing numeric keys into
    /// `extra` (e.g. `cache_warm_loaded_entries`): readers get `Some(n)` for
    /// a present, parsable value and `None` otherwise, instead of re-parsing
    /// the snapshot text by hand.
    pub fn extra_u64(&self, key: &str) -> Option<u64> {
        self.extra.get(key)?.parse().ok()
    }
}

impl StatsSnapshot {
    /// Renders the snapshot as `key=value` lines (the `StatsReply` payload).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut push = |key: &str, value: String| {
            out.push_str(key);
            out.push('=');
            out.push_str(&value);
            out.push('\n');
        };
        push("plan", self.plan.clone());
        push("serve_mode", self.serve_mode.clone());
        push("uptime_secs", format!("{:.3}", self.uptime_secs));
        push("connections_total", self.connections_total.to_string());
        push("connections_open", self.connections_open.to_string());
        push("requests_total", self.requests_total.to_string());
        push("segment_requests", self.segment_requests.to_string());
        push("pixels_total", self.pixels_total.to_string());
        push("mpix_per_sec", format!("{:.3}", self.mpix_per_sec));
        push("protocol_errors", self.protocol_errors.to_string());
        push("arena_allocations", self.arena_allocations.to_string());
        push("arena_reuses", self.arena_reuses.to_string());
        push("arena_pooled", self.arena_pooled.to_string());
        push("max_inflight", self.max_inflight.to_string());
        push("cache_hits", self.cache_hits.to_string());
        push("cache_misses", self.cache_misses.to_string());
        push("cache_evictions", self.cache_evictions.to_string());
        push("cache_entries", self.cache_entries.to_string());
        push("cache_bytes", self.cache_bytes.to_string());
        push(
            "cache_capacity_bytes",
            self.cache_capacity_bytes.to_string(),
        );
        push("delta_tiles_hit", self.delta_tiles_hit.to_string());
        push(
            "delta_tiles_recomputed",
            self.delta_tiles_recomputed.to_string(),
        );
        push(
            "quant_fallback_pixels",
            self.quant_fallback_pixels.to_string(),
        );
        push("max_queue", self.max_queue.to_string());
        push("busy_rejections", self.busy_rejections.to_string());
        push("calibration", self.calibration.clone());
        push("lat_count", self.lat_count.to_string());
        push("lat_p50_us", self.lat_p50_us.to_string());
        push("lat_p90_us", self.lat_p90_us.to_string());
        push("lat_p99_us", self.lat_p99_us.to_string());
        push("lat_p999_us", self.lat_p999_us.to_string());
        push("lat_max_us", self.lat_max_us.to_string());
        push("conn_requests", self.conn_requests.to_string());
        push("conn_pixels", self.conn_pixels.to_string());
        for (key, value) in &self.extra {
            push(key, value.clone());
        }
        out
    }

    /// Parses a snapshot back out of `key=value` lines.
    ///
    /// Unknown keys are preserved in [`StatsSnapshot::extra`] (newer servers
    /// may add fields, and re-encoding must not drop them); a missing `plan`
    /// key or an unparsable number is an error.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut snapshot = StatsSnapshot::default();
        let mut saw_plan = false;
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("stats line '{line}' has no '='"))?;
            let bad = |what: &str| format!("stats key '{key}' has invalid {what} '{value}'");
            match key {
                "plan" => {
                    snapshot.plan = value.to_string();
                    saw_plan = true;
                }
                "serve_mode" => snapshot.serve_mode = value.to_string(),
                "uptime_secs" => snapshot.uptime_secs = value.parse().map_err(|_| bad("float"))?,
                "connections_total" => {
                    snapshot.connections_total = value.parse().map_err(|_| bad("count"))?
                }
                "connections_open" => {
                    snapshot.connections_open = value.parse().map_err(|_| bad("count"))?
                }
                "requests_total" => {
                    snapshot.requests_total = value.parse().map_err(|_| bad("count"))?
                }
                "segment_requests" => {
                    snapshot.segment_requests = value.parse().map_err(|_| bad("count"))?
                }
                "pixels_total" => {
                    snapshot.pixels_total = value.parse().map_err(|_| bad("count"))?
                }
                "mpix_per_sec" => {
                    snapshot.mpix_per_sec = value.parse().map_err(|_| bad("float"))?
                }
                "protocol_errors" => {
                    snapshot.protocol_errors = value.parse().map_err(|_| bad("count"))?
                }
                "arena_allocations" => {
                    snapshot.arena_allocations = value.parse().map_err(|_| bad("count"))?
                }
                "arena_reuses" => {
                    snapshot.arena_reuses = value.parse().map_err(|_| bad("count"))?
                }
                "arena_pooled" => {
                    snapshot.arena_pooled = value.parse().map_err(|_| bad("count"))?
                }
                "max_inflight" => {
                    snapshot.max_inflight = value.parse().map_err(|_| bad("count"))?
                }
                "cache_hits" => snapshot.cache_hits = value.parse().map_err(|_| bad("count"))?,
                "cache_misses" => {
                    snapshot.cache_misses = value.parse().map_err(|_| bad("count"))?
                }
                "cache_evictions" => {
                    snapshot.cache_evictions = value.parse().map_err(|_| bad("count"))?
                }
                "cache_entries" => {
                    snapshot.cache_entries = value.parse().map_err(|_| bad("count"))?
                }
                "cache_bytes" => snapshot.cache_bytes = value.parse().map_err(|_| bad("count"))?,
                "cache_capacity_bytes" => {
                    snapshot.cache_capacity_bytes = value.parse().map_err(|_| bad("count"))?
                }
                "delta_tiles_hit" => {
                    snapshot.delta_tiles_hit = value.parse().map_err(|_| bad("count"))?
                }
                "delta_tiles_recomputed" => {
                    snapshot.delta_tiles_recomputed = value.parse().map_err(|_| bad("count"))?
                }
                "quant_fallback_pixels" => {
                    snapshot.quant_fallback_pixels = value.parse().map_err(|_| bad("count"))?
                }
                "conn_requests" => {
                    snapshot.conn_requests = value.parse().map_err(|_| bad("count"))?
                }
                "conn_pixels" => snapshot.conn_pixels = value.parse().map_err(|_| bad("count"))?,
                "max_queue" => snapshot.max_queue = value.parse().map_err(|_| bad("count"))?,
                "busy_rejections" => {
                    snapshot.busy_rejections = value.parse().map_err(|_| bad("count"))?
                }
                "calibration" => snapshot.calibration = value.to_string(),
                "lat_count" => snapshot.lat_count = value.parse().map_err(|_| bad("count"))?,
                "lat_p50_us" => snapshot.lat_p50_us = value.parse().map_err(|_| bad("count"))?,
                "lat_p90_us" => snapshot.lat_p90_us = value.parse().map_err(|_| bad("count"))?,
                "lat_p99_us" => snapshot.lat_p99_us = value.parse().map_err(|_| bad("count"))?,
                "lat_p999_us" => snapshot.lat_p999_us = value.parse().map_err(|_| bad("count"))?,
                "lat_max_us" => snapshot.lat_max_us = value.parse().map_err(|_| bad("count"))?,
                _ => {
                    snapshot.extra.insert(key.to_string(), value.to_string());
                }
            }
        }
        if !saw_plan {
            return Err("stats snapshot is missing the 'plan' key".to_string());
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsSnapshot {
        StatsSnapshot {
            plan: "classifier=table;tile=48x48;backend=threads:4".to_string(),
            serve_mode: "evented".to_string(),
            uptime_secs: 12.5,
            connections_total: 9,
            connections_open: 4,
            requests_total: 120,
            segment_requests: 100,
            pixels_total: 1_920_000,
            mpix_per_sec: 153.6,
            protocol_errors: 2,
            arena_allocations: 6,
            arena_reuses: 94,
            arena_pooled: 6,
            max_inflight: 4,
            cache_hits: 70,
            cache_misses: 30,
            cache_evictions: 5,
            cache_entries: 25,
            cache_bytes: 12_000_000,
            cache_capacity_bytes: 64 << 20,
            delta_tiles_hit: 44,
            delta_tiles_recomputed: 11,
            quant_fallback_pixels: 17,
            max_queue: 8,
            busy_rejections: 3,
            calibration: "cores=4;probes=8;elapsed_ms=41;best_mpix_s=512.3;exhausted=0".to_string(),
            lat_count: 100,
            lat_p50_us: 900,
            lat_p90_us: 1_500,
            lat_p99_us: 4_000,
            lat_p999_us: 9_000,
            lat_max_us: 12_345,
            conn_requests: 31,
            conn_pixels: 480_000,
            extra: BTreeMap::new(),
        }
    }

    #[test]
    fn snapshot_round_trips_through_text() {
        let snapshot = sample();
        let parsed = StatsSnapshot::from_text(&snapshot.to_text()).unwrap();
        assert_eq!(parsed, snapshot);
        // The plan value itself contains '=' characters; first-'=' splitting
        // must preserve it verbatim.
        assert!(parsed.plan.contains("backend=threads:4"));
    }

    #[test]
    fn unknown_keys_are_preserved_and_missing_plan_is_an_error() {
        let mut text = sample().to_text();
        text.push_str("future_field=42\n");
        text.push_str("future_spec=a=b;c=d\n");
        let parsed = StatsSnapshot::from_text(&text).unwrap();
        assert_eq!(parsed.extra.get("future_field").unwrap(), "42");
        assert_eq!(
            parsed.extra.get("future_spec").unwrap(),
            "a=b;c=d",
            "first-'=' splitting preserves '=' inside unknown values too"
        );
        // The unknown keys survive a full decode → encode → decode cycle.
        let reencoded = StatsSnapshot::from_text(&parsed.to_text()).unwrap();
        assert_eq!(reencoded, parsed);
        assert!(StatsSnapshot::from_text("requests_total=1\n").is_err());
        assert!(StatsSnapshot::from_text("requests_total\n").is_err());
        assert!(StatsSnapshot::from_text("plan=x\nrequests_total=abc\n").is_err());
    }

    #[test]
    fn extra_u64_reads_forward_compat_keys_typed() {
        let mut text = sample().to_text();
        text.push_str("cache_warm_loaded_entries=12\n");
        text.push_str("cache_warm_loaded_bytes=49152\n");
        text.push_str("not_a_number=abc\n");
        let parsed = StatsSnapshot::from_text(&text).unwrap();
        assert_eq!(parsed.extra_u64("cache_warm_loaded_entries"), Some(12));
        assert_eq!(parsed.extra_u64("cache_warm_loaded_bytes"), Some(49_152));
        assert_eq!(parsed.extra_u64("not_a_number"), None, "unparsable → None");
        assert_eq!(parsed.extra_u64("absent"), None, "absent → None");
    }

    #[test]
    fn latency_fields_convert_histogram_nanoseconds_to_microseconds() {
        let mut snapshot = sample();
        snapshot.set_latency(LatencySummary {
            count: 7,
            p50_ns: 1_500,
            p90_ns: 2_000_000,
            p99_ns: 3_000_000,
            p999_ns: 3_000_000,
            max_ns: 4_123_456,
        });
        assert_eq!(snapshot.lat_count, 7);
        assert_eq!(snapshot.lat_p50_us, 1);
        assert_eq!(snapshot.lat_p90_us, 2_000);
        assert_eq!(snapshot.lat_max_us, 4_123);
    }

    #[test]
    fn busy_and_latency_counters_accumulate() {
        let stats = ServerStats::new();
        stats.busy_rejection();
        stats.busy_rejection();
        stats.record_latency(Duration::from_micros(250));
        stats.record_latency(Duration::from_micros(750));
        assert_eq!(stats.busy_rejections(), 2);
        let summary = stats.latency_summary();
        assert_eq!(summary.count, 2);
        assert!(summary.max_ns >= 750_000);
    }

    #[test]
    fn live_counters_accumulate() {
        let stats = ServerStats::new();
        stats.connection_opened();
        stats.connection_opened();
        stats.connection_closed();
        stats.request();
        stats.request();
        stats.segmented(1000);
        stats.protocol_error();
        assert_eq!(stats.connections_total(), 2);
        assert_eq!(stats.connections_open(), 1);
        assert_eq!(stats.requests_total(), 2);
        assert_eq!(stats.segment_requests(), 1);
        assert_eq!(stats.pixels_total(), 1000);
        assert_eq!(stats.protocol_errors(), 1);
    }
}
