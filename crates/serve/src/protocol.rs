//! The `iqft-serve` wire protocol: length-prefixed binary frames.
//!
//! Every message on the wire is one *frame*: a fixed 20-byte header followed
//! by an op-specific payload.  All integers are little-endian.
//!
//! ```text
//! offset  size  field
//!      0     4  magic        b"IQFT"
//!      4     2  version      u16 (currently 1)
//!      6     1  op           u8 (see [`Op`])
//!      7     1  reserved     must be 0
//!      8     8  request id   u64 (echoed verbatim in the reply)
//!     16     4  payload len  u32 (bounded by [`MAX_PAYLOAD_BYTES`])
//!     20     …  payload      op-specific, exactly `payload len` bytes
//! ```
//!
//! Payloads:
//!
//! * [`Message::Segment`] — `width: u32, height: u32`, then `3·w·h` RGB bytes
//!   in row-major pixel order.
//! * [`Message::SegmentReply`] — `width: u32, height: u32`, then `4·w·h`
//!   label bytes (`u32` per pixel).
//! * [`Message::StatsReply`] / [`Message::Error`] — UTF-8 text.
//! * Everything else — empty (a non-empty payload is a protocol error).
//!
//! Decoding is fully checked: a malformed frame — bad magic, unknown
//! version/op, a length field that disagrees with the declared dimensions, or
//! a payload larger than [`MAX_PAYLOAD_BYTES`] — yields a [`ProtocolError`]
//! *before* any unbounded allocation, and never panics.

use imaging::{LabelMap, Rgb, RgbImage};
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"IQFT";
/// Current protocol version.
pub const VERSION: u16 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 20;
/// Hard upper bound on a frame payload (64 MiB).  A frame declaring more is
/// rejected before any payload allocation happens.
pub const MAX_PAYLOAD_BYTES: usize = 64 << 20;
/// Hard upper bound on the pixel count of one segmentation request, chosen so
/// both the RGB request (`3·n` bytes) and the label reply (`4·n` bytes) fit
/// under [`MAX_PAYLOAD_BYTES`].
pub const MAX_PIXELS: usize = (MAX_PAYLOAD_BYTES - 8) / 4;

/// Operation codes carried in the frame header.  Requests use the low range,
/// replies set the high bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Segment the enclosed RGB image.
    Segment = 0x01,
    /// Liveness probe.
    Ping = 0x02,
    /// Request a server statistics snapshot.
    Stats = 0x03,
    /// Ask the server to drain in-flight requests and stop.
    Shutdown = 0x04,
    /// Reply to [`Op::Segment`]: the label map.
    SegmentReply = 0x81,
    /// Reply to [`Op::Ping`].
    Pong = 0x82,
    /// Reply to [`Op::Stats`]: `key=value` text lines.
    StatsReply = 0x83,
    /// Reply to [`Op::Shutdown`]: acknowledged, the server is draining.
    ShutdownReply = 0x84,
    /// Reply to any malformed or failed request: a UTF-8 diagnostic.
    Error = 0xFF,
}

impl Op {
    fn from_byte(byte: u8) -> Result<Self, ProtocolError> {
        match byte {
            0x01 => Ok(Op::Segment),
            0x02 => Ok(Op::Ping),
            0x03 => Ok(Op::Stats),
            0x04 => Ok(Op::Shutdown),
            0x81 => Ok(Op::SegmentReply),
            0x82 => Ok(Op::Pong),
            0x83 => Ok(Op::StatsReply),
            0x84 => Ok(Op::ShutdownReply),
            0xFF => Ok(Op::Error),
            other => Err(ProtocolError::UnknownOp(other)),
        }
    }
}

/// A decoded protocol message (request or reply).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Segment this image (request).
    Segment {
        /// The RGB image to segment.
        image: RgbImage,
    },
    /// The segmentation result (reply).
    SegmentReply {
        /// One label per pixel, same dimensions as the request image.
        labels: LabelMap,
    },
    /// Liveness probe (request).
    Ping,
    /// Liveness acknowledgement (reply).
    Pong,
    /// Statistics request.
    Stats,
    /// Statistics snapshot as `key=value` lines (reply).
    StatsReply {
        /// The snapshot text (see `stats::StatsSnapshot`).
        text: String,
    },
    /// Drain-then-stop request.
    Shutdown,
    /// Shutdown acknowledged (reply); the connection closes after this frame.
    ShutdownReply,
    /// Request failed; the payload is a human-readable diagnostic (reply).
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Message {
    /// The wire op code of this message.
    pub fn op(&self) -> Op {
        match self {
            Message::Segment { .. } => Op::Segment,
            Message::SegmentReply { .. } => Op::SegmentReply,
            Message::Ping => Op::Ping,
            Message::Pong => Op::Pong,
            Message::Stats => Op::Stats,
            Message::StatsReply { .. } => Op::StatsReply,
            Message::Shutdown => Op::Shutdown,
            Message::ShutdownReply => Op::ShutdownReply,
            Message::Error { .. } => Op::Error,
        }
    }

    /// A short human-readable name (for diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            Message::Segment { .. } => "Segment",
            Message::SegmentReply { .. } => "SegmentReply",
            Message::Ping => "Ping",
            Message::Pong => "Pong",
            Message::Stats => "Stats",
            Message::StatsReply { .. } => "StatsReply",
            Message::Shutdown => "Shutdown",
            Message::ShutdownReply => "ShutdownReply",
            Message::Error { .. } => "Error",
        }
    }
}

/// Everything that can go wrong while encoding or decoding a frame.
///
/// Decoding never panics; every malformed input maps to one of these.
#[derive(Debug)]
pub enum ProtocolError {
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame declared an unsupported protocol version.
    BadVersion(u16),
    /// The reserved header byte was not zero.
    BadReserved(u8),
    /// The op byte is not a known [`Op`].
    UnknownOp(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD_BYTES`].
    PayloadTooLarge {
        /// Declared payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The payload length disagrees with what the op's layout requires.
    BadLength {
        /// The op being decoded.
        op: Op,
        /// Expected payload length in bytes (`None` when the header itself
        /// was too short to tell).
        expected: Option<usize>,
        /// Actual payload length in bytes.
        got: usize,
    },
    /// The declared image dimensions overflow or exceed [`MAX_PIXELS`].
    BadDimensions {
        /// Declared width.
        width: usize,
        /// Declared height.
        height: usize,
    },
    /// A text payload was not valid UTF-8.
    BadText,
    /// The underlying stream failed (includes mid-frame EOF as
    /// [`io::ErrorKind::UnexpectedEof`]).
    Io(io::Error),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic(bytes) => write!(f, "bad frame magic {bytes:?}"),
            ProtocolError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (expected {VERSION})")
            }
            ProtocolError::BadReserved(b) => write!(f, "reserved header byte is {b}, expected 0"),
            ProtocolError::UnknownOp(op) => write!(f, "unknown op byte {op:#04x}"),
            ProtocolError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::BadLength { op, expected, got } => match expected {
                Some(expected) => write!(
                    f,
                    "{op:?} payload is {got} bytes, layout requires {expected}"
                ),
                None => write!(f, "{op:?} payload of {got} bytes is too short"),
            },
            ProtocolError::BadDimensions { width, height } => write!(
                f,
                "image dimensions {width}x{height} overflow or exceed {MAX_PIXELS} pixels"
            ),
            ProtocolError::BadText => write!(f, "text payload is not valid UTF-8"),
            ProtocolError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(err: io::Error) -> Self {
        ProtocolError::Io(err)
    }
}

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Caller-chosen request id, echoed in the reply.
    pub request_id: u64,
    /// The frame's operation.
    pub op: Op,
    /// Payload length in bytes (already bounds-checked).
    pub payload_len: usize,
}

/// Parses and validates a raw 20-byte frame header.
pub fn parse_header(bytes: &[u8; HEADER_LEN]) -> Result<Header, ProtocolError> {
    if bytes[0..4] != MAGIC {
        return Err(ProtocolError::BadMagic([
            bytes[0], bytes[1], bytes[2], bytes[3],
        ]));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(ProtocolError::BadVersion(version));
    }
    let op = Op::from_byte(bytes[6])?;
    if bytes[7] != 0 {
        return Err(ProtocolError::BadReserved(bytes[7]));
    }
    let request_id = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let payload_len = u32::from_le_bytes(bytes[16..20].try_into().expect("4-byte slice")) as usize;
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(ProtocolError::PayloadTooLarge {
            len: payload_len,
            max: MAX_PAYLOAD_BYTES,
        });
    }
    Ok(Header {
        request_id,
        op,
        payload_len,
    })
}

fn checked_pixels(width: usize, height: usize) -> Result<usize, ProtocolError> {
    width
        .checked_mul(height)
        .filter(|&n| n <= MAX_PIXELS)
        .ok_or(ProtocolError::BadDimensions { width, height })
}

fn read_dims(op: Op, payload: &[u8]) -> Result<(usize, usize, usize), ProtocolError> {
    if payload.len() < 8 {
        return Err(ProtocolError::BadLength {
            op,
            expected: None,
            got: payload.len(),
        });
    }
    let width = u32::from_le_bytes(payload[0..4].try_into().expect("4-byte slice")) as usize;
    let height = u32::from_le_bytes(payload[4..8].try_into().expect("4-byte slice")) as usize;
    let pixels = checked_pixels(width, height)?;
    Ok((width, height, pixels))
}

fn expect_len(op: Op, payload: &[u8], expected: usize) -> Result<(), ProtocolError> {
    if payload.len() != expected {
        return Err(ProtocolError::BadLength {
            op,
            expected: Some(expected),
            got: payload.len(),
        });
    }
    Ok(())
}

/// Decodes a payload into a [`Message`] given its (already validated) op.
pub fn decode_body(op: Op, payload: &[u8]) -> Result<Message, ProtocolError> {
    match op {
        Op::Segment => {
            let (width, height, pixels) = read_dims(op, payload)?;
            expect_len(op, payload, 8 + pixels * 3)?;
            let data: Vec<Rgb<u8>> = payload[8..]
                .chunks_exact(3)
                .map(|c| Rgb::new(c[0], c[1], c[2]))
                .collect();
            let image = RgbImage::from_vec(width, height, data)
                .map_err(|_| ProtocolError::BadDimensions { width, height })?;
            Ok(Message::Segment { image })
        }
        Op::SegmentReply => {
            let (width, height, pixels) = read_dims(op, payload)?;
            expect_len(op, payload, 8 + pixels * 4)?;
            let data: Vec<u32> = payload[8..]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            let labels = LabelMap::from_vec(width, height, data)
                .map_err(|_| ProtocolError::BadDimensions { width, height })?;
            Ok(Message::SegmentReply { labels })
        }
        Op::StatsReply | Op::Error => {
            let text = std::str::from_utf8(payload)
                .map_err(|_| ProtocolError::BadText)?
                .to_string();
            Ok(match op {
                Op::StatsReply => Message::StatsReply { text },
                _ => Message::Error { message: text },
            })
        }
        Op::Ping | Op::Pong | Op::Stats | Op::Shutdown | Op::ShutdownReply => {
            expect_len(op, payload, 0)?;
            Ok(match op {
                Op::Ping => Message::Ping,
                Op::Pong => Message::Pong,
                Op::Stats => Message::Stats,
                Op::Shutdown => Message::Shutdown,
                _ => Message::ShutdownReply,
            })
        }
    }
}

/// Starts a frame: one allocation sized for header + payload, with the
/// payload-length field zeroed until [`finish_frame`] patches it in.  The
/// payload is serialized directly into this buffer — frames are built in a
/// single pass with no intermediate payload copy.
fn begin_frame(request_id: u64, op: Op, payload_capacity: usize) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload_capacity);
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.push(op as u8);
    frame.push(0);
    frame.extend_from_slice(&request_id.to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    frame
}

fn finish_frame(mut frame: Vec<u8>) -> Result<Vec<u8>, ProtocolError> {
    let payload_len = frame.len() - HEADER_LEN;
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(ProtocolError::PayloadTooLarge {
            len: payload_len,
            max: MAX_PAYLOAD_BYTES,
        });
    }
    frame[16..20].copy_from_slice(&(payload_len as u32).to_le_bytes());
    Ok(frame)
}

fn append_segment_payload(frame: &mut Vec<u8>, image: &RgbImage) {
    frame.extend_from_slice(&(image.width() as u32).to_le_bytes());
    frame.extend_from_slice(&(image.height() as u32).to_le_bytes());
    for px in image.as_slice() {
        frame.extend_from_slice(&[px.r(), px.g(), px.b()]);
    }
}

/// Encodes a full frame (header + payload) into a byte vector.
///
/// Returns an error if the message's payload would exceed
/// [`MAX_PAYLOAD_BYTES`] or the image exceeds [`MAX_PIXELS`] — the encoder
/// enforces the same limits the decoder does, so a conforming peer can never
/// be handed an undecodable frame.
pub fn encode_message(request_id: u64, message: &Message) -> Result<Vec<u8>, ProtocolError> {
    let capacity = match message {
        Message::Segment { image } => {
            checked_pixels(image.width(), image.height())?;
            8 + image.len() * 3
        }
        Message::SegmentReply { labels } => {
            checked_pixels(labels.width(), labels.height())?;
            8 + labels.len() * 4
        }
        Message::StatsReply { text } => text.len(),
        Message::Error { message } => message.len(),
        _ => 0,
    };
    let mut frame = begin_frame(request_id, message.op(), capacity);
    match message {
        Message::Segment { image } => append_segment_payload(&mut frame, image),
        Message::SegmentReply { labels } => {
            frame.extend_from_slice(&(labels.width() as u32).to_le_bytes());
            frame.extend_from_slice(&(labels.height() as u32).to_le_bytes());
            for label in labels.as_slice() {
                frame.extend_from_slice(&label.to_le_bytes());
            }
        }
        Message::StatsReply { text } => frame.extend_from_slice(text.as_bytes()),
        Message::Error { message } => frame.extend_from_slice(message.as_bytes()),
        _ => {}
    }
    finish_frame(frame)
}

/// Encodes a `Segment` request frame directly from a borrowed image —
/// byte-identical to `encode_message` with [`Message::Segment`], without
/// cloning the image into a message first.  This is the client's hot path.
pub fn encode_segment(request_id: u64, image: &RgbImage) -> Result<Vec<u8>, ProtocolError> {
    checked_pixels(image.width(), image.height())?;
    let mut frame = begin_frame(request_id, Op::Segment, 8 + image.len() * 3);
    append_segment_payload(&mut frame, image);
    finish_frame(frame)
}

/// Encodes and writes one frame to `w` (single `write_all` + flush).
pub fn write_message<W: Write>(
    w: &mut W,
    request_id: u64,
    message: &Message,
) -> Result<(), ProtocolError> {
    let frame = encode_message(request_id, message)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one full frame from `r` and decodes it.
///
/// Mid-frame EOF surfaces as [`ProtocolError::Io`] with
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_message<R: Read>(r: &mut R) -> Result<(u64, Message), ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let header = parse_header(&header)?;
    read_body(r, header).map(|message| (header.request_id, message))
}

/// Reads the payload for an already-parsed header and decodes the body.
///
/// Split out from [`read_message`] so a server can read the header with its
/// own polling/timeout policy and still share the payload path.
pub fn read_body<R: Read>(r: &mut R, header: Header) -> Result<Message, ProtocolError> {
    let mut payload = vec![0u8; header.payload_len];
    r.read_exact(&mut payload)?;
    decode_body(header.op, &payload)
}

/// Decodes one complete frame from a byte slice (header + payload).
pub fn decode_message(frame: &[u8]) -> Result<(u64, Message), ProtocolError> {
    let mut cursor = frame;
    let decoded = read_message(&mut cursor)?;
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> RgbImage {
        RgbImage::from_fn(5, 3, |x, y| Rgb::new(x as u8, y as u8, (x * y) as u8))
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Segment {
                image: sample_image(),
            },
            Message::SegmentReply {
                labels: LabelMap::from_vec(5, 3, (0..15).collect()).unwrap(),
            },
            Message::Ping,
            Message::Pong,
            Message::Stats,
            Message::StatsReply {
                text: "requests=3\nplan=classifier=table;tile=off;backend=serial\n".to_string(),
            },
            Message::Shutdown,
            Message::ShutdownReply,
            Message::Error {
                message: "no such θ".to_string(),
            },
        ]
    }

    #[test]
    fn every_op_round_trips_through_encode_decode() {
        for (i, message) in all_messages().into_iter().enumerate() {
            let id = 0x1234_5678_9abc_def0 ^ i as u64;
            let frame = encode_message(id, &message).unwrap();
            let (got_id, got) = decode_message(&frame).unwrap();
            assert_eq!(got_id, id, "{}", message.name());
            assert_eq!(got, message, "{}", message.name());
            assert_eq!(got.op(), message.op());
        }
    }

    #[test]
    fn stream_read_write_round_trips() {
        let mut buf = Vec::new();
        for (i, message) in all_messages().into_iter().enumerate() {
            write_message(&mut buf, i as u64, &message).unwrap();
        }
        let mut cursor = &buf[..];
        for (i, message) in all_messages().into_iter().enumerate() {
            let (id, got) = read_message(&mut cursor).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(got, message);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn borrowed_segment_encoder_matches_the_message_encoder() {
        let image = sample_image();
        let via_message = encode_message(
            42,
            &Message::Segment {
                image: image.clone(),
            },
        )
        .unwrap();
        assert_eq!(encode_segment(42, &image).unwrap(), via_message);
    }

    #[test]
    fn zero_area_image_round_trips() {
        let message = Message::Segment {
            image: RgbImage::from_fn(0, 0, |_, _| Rgb::new(0, 0, 0)),
        };
        let frame = encode_message(1, &message).unwrap();
        let (_, got) = decode_message(&frame).unwrap();
        assert_eq!(got, message);
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking() {
        let frame = encode_message(
            7,
            &Message::Segment {
                image: sample_image(),
            },
        )
        .unwrap();
        for cut in [
            0,
            1,
            HEADER_LEN - 1,
            HEADER_LEN,
            HEADER_LEN + 5,
            frame.len() - 1,
        ] {
            let err = decode_message(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Io(ref e) if e.kind() == io::ErrorKind::UnexpectedEof),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bad_magic_version_op_and_reserved_are_rejected() {
        let good = encode_message(1, &Message::Ping).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_message(&bad).unwrap_err(),
            ProtocolError::BadMagic(_)
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_message(&bad).unwrap_err(),
            ProtocolError::BadVersion(99)
        ));

        let mut bad = good.clone();
        bad[6] = 0x7E;
        assert!(matches!(
            decode_message(&bad).unwrap_err(),
            ProtocolError::UnknownOp(0x7E)
        ));

        let mut bad = good;
        bad[7] = 1;
        assert!(matches!(
            decode_message(&bad).unwrap_err(),
            ProtocolError::BadReserved(1)
        ));
    }

    #[test]
    fn oversized_payload_length_is_rejected_before_allocation() {
        let mut frame = encode_message(1, &Message::Ping).unwrap();
        frame[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        // The length field alone triggers the error; no 4 GiB allocation.
        assert!(matches!(
            decode_message(&frame).unwrap_err(),
            ProtocolError::PayloadTooLarge { .. }
        ));
    }

    #[test]
    fn dimension_overflow_and_pixel_limit_are_rejected() {
        // Declared dims whose product overflows the payload bound.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_body(Op::Segment, &payload).unwrap_err(),
            ProtocolError::BadDimensions { .. }
        ));
        // A Segment whose payload disagrees with its declared dims.
        let mut payload = Vec::new();
        payload.extend_from_slice(&4u32.to_le_bytes());
        payload.extend_from_slice(&4u32.to_le_bytes());
        payload.extend_from_slice(&[0; 5]);
        assert!(matches!(
            decode_body(Op::Segment, &payload).unwrap_err(),
            ProtocolError::BadLength {
                op: Op::Segment,
                expected: Some(56),
                got: 13,
            }
        ));
        // A header too short to even carry dimensions.
        assert!(matches!(
            decode_body(Op::SegmentReply, &[1, 2, 3]).unwrap_err(),
            ProtocolError::BadLength { expected: None, .. }
        ));
        // An in-bounds reply still encodes fine.
        assert!(encode_message(
            1,
            &Message::SegmentReply {
                labels: LabelMap::from_vec(1, 1, vec![0]).unwrap(),
            },
        )
        .is_ok());
    }

    #[test]
    fn empty_op_payloads_must_be_empty() {
        for op in [
            Op::Ping,
            Op::Pong,
            Op::Stats,
            Op::Shutdown,
            Op::ShutdownReply,
        ] {
            assert!(matches!(
                decode_body(op, &[0]).unwrap_err(),
                ProtocolError::BadLength { .. }
            ));
            assert!(decode_body(op, &[]).is_ok());
        }
    }

    #[test]
    fn invalid_utf8_text_payloads_are_rejected() {
        for op in [Op::StatsReply, Op::Error] {
            assert!(matches!(
                decode_body(op, &[0xFF, 0xFE]).unwrap_err(),
                ProtocolError::BadText
            ));
        }
    }

    #[test]
    fn errors_render_human_readable_diagnostics() {
        let err = ProtocolError::PayloadTooLarge {
            len: 1 << 30,
            max: MAX_PAYLOAD_BYTES,
        };
        assert!(err.to_string().contains("exceeds"));
        assert!(ProtocolError::BadMagic(*b"HTTP")
            .to_string()
            .contains("magic"));
        assert!(ProtocolError::BadText.to_string().contains("UTF-8"));
    }
}
