//! The `iqft-serve` wire protocol: length-prefixed binary frames.
//!
//! Every message on the wire is one *frame*: a fixed 20-byte header followed
//! by an op-specific payload.  All integers are little-endian.
//!
//! ```text
//! offset  size  field
//!      0     4  magic        b"IQFT"
//!      4     2  version      u16 (currently 2)
//!      6     1  op           u8 (see [`Op`])
//!      7     1  reserved     must be 0
//!      8     8  request id   u64 (echoed verbatim in the reply)
//!     16     4  payload len  u32 (bounded by [`MAX_PAYLOAD_BYTES`])
//!     20     …  payload      op-specific, exactly `payload len` bytes
//! ```
//!
//! Payloads:
//!
//! * [`Message::Segment`] — `width: u32, height: u32`, then `3·w·h` RGB bytes
//!   in row-major pixel order.
//! * [`Message::SegmentReply`] — `width: u32, height: u32`, then `4·w·h`
//!   label bytes (`u32` per pixel).
//! * [`Message::SegmentCached`] (v2) — `flags: u32` (bit 0 =
//!   [`FLAG_BYPASS_CACHE`]; other bits must be zero), then the `Segment`
//!   layout.  Lets the client opt a request into the server's
//!   content-addressed result cache, or explicitly around it.
//! * [`Message::SegmentCachedReply`] (v2) — `flags: u32` (bit 0 =
//!   [`FLAG_CACHE_HIT`]), then the `SegmentReply` layout.
//! * [`Message::SegmentDelta`] (v2) — `flags: u32` (no flags defined yet;
//!   must be zero), then the `Segment` layout.  Routes the frame through the
//!   server's *per-tile* delta cache: unchanged tiles are stitched from
//!   cache, only changed tiles are re-classified.
//! * [`Message::SegmentDeltaReply`] (v2) — `flags: u32` (must be zero),
//!   `tiles_hit: u32`, `tiles_recomputed: u32`, then the `SegmentReply`
//!   layout.
//! * [`Message::StatsReply`] / [`Message::Error`] — UTF-8 text.
//! * [`Message::Busy`] (v2) — empty.  An admission-control rejection: the
//!   segment request was well-formed but the server's worker pool and queue
//!   are saturated (`max_queue` exceeded); the request was not executed and
//!   may be retried.
//! * Everything else — empty (a non-empty payload is a protocol error).
//!
//! # Version 2 and pipelining
//!
//! Protocol v2 (this version) adds the cached-segmentation ops above and
//! makes *pipelining* explicit: a connection may have up to
//! [`MAX_PIPELINE_DEPTH`] request frames in flight before reading a reply,
//! and replies — which always echo the request id — may arrive in
//! **completion order**, not necessarily request order.  Clients must match
//! replies to requests by id (`Client::segment_pipelined` does the
//! reordering).  The current server answers each connection's frames in
//! order, which is one valid completion order; clients must not rely on it.
//!
//! A v1 frame sent to a v2 peer is answered with a typed
//! [`Message::Error`] frame carrying the [`ProtocolError::BadVersion`]
//! diagnostic — never a panic, never a hang.
//!
//! Decoding is fully checked: a malformed frame — bad magic, unknown
//! version/op, a length field that disagrees with the declared dimensions, or
//! a payload larger than [`MAX_PAYLOAD_BYTES`] — yields a [`ProtocolError`]
//! *before* any unbounded allocation, and never panics.
//!
//! # Sans-io core
//!
//! Frame decoding is a pure state machine with no I/O inside:
//! [`FrameDecoder`] is fed byte chunks of any size (from a blocking read, a
//! nonblocking read, or a test vector) and yields complete [`Frame`]s or one
//! typed error; [`FrameEncoder`] mirrors it on the write side, queueing
//! encoded replies and tracking partial writes.  The blocking helpers below
//! ([`read_message`], [`write_message`]) and the evented server's readiness
//! loop are both thin transports over the same `parse_header` /
//! [`decode_body`] validation, so every path emits identical typed errors —
//! which is what lets the protocol be property- and fuzz-tested with no
//! sockets at all (`tests/protocol_sansio.rs`).

use imaging::{LabelMap, Rgb, RgbImage};
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"IQFT";
/// Current protocol version (2: cached-segmentation ops + pipelining).
pub const VERSION: u16 = 2;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 20;
/// Hard upper bound on a frame payload (64 MiB).  A frame declaring more is
/// rejected before any payload allocation happens.
pub const MAX_PAYLOAD_BYTES: usize = 64 << 20;
/// Hard upper bound on the pixel count of one segmentation request, chosen so
/// both the RGB request (`3·n` bytes) and the label reply (`4·n` bytes) fit
/// under [`MAX_PAYLOAD_BYTES`] even with the cached ops' extra flags word.
pub const MAX_PIXELS: usize = (MAX_PAYLOAD_BYTES - 12) / 4;
/// Maximum request frames a connection may have in flight before reading a
/// reply (protocol v2 pipelining).  Clients clamp to this.  Note this
/// bounds *frames*, not bytes: a deep burst of large frames can exceed any
/// socket buffer, which is why the client's pipelined writer drains replies
/// whenever a request write would block instead of relying on buffering.
pub const MAX_PIPELINE_DEPTH: usize = 32;
/// `SegmentCached` request flag: skip the server's result cache for this
/// request (neither lookup nor store).
pub const FLAG_BYPASS_CACHE: u32 = 1;
/// `SegmentCachedReply` flag: the labels were served from the result cache.
pub const FLAG_CACHE_HIT: u32 = 1;

/// Operation codes carried in the frame header.  Requests use the low range,
/// replies set the high bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Segment the enclosed RGB image.
    Segment = 0x01,
    /// Liveness probe.
    Ping = 0x02,
    /// Request a server statistics snapshot.
    Stats = 0x03,
    /// Ask the server to drain in-flight requests and stop.
    Shutdown = 0x04,
    /// Segment the enclosed RGB image through the server's result cache
    /// (v2; carries a cache-control flags word).
    SegmentCached = 0x05,
    /// Segment the enclosed RGB image through the server's *per-tile* delta
    /// cache (v2): unchanged tiles stitch from cache, changed tiles
    /// re-classify.
    SegmentDelta = 0x06,
    /// Reply to [`Op::Segment`]: the label map.
    SegmentReply = 0x81,
    /// Reply to [`Op::Ping`].
    Pong = 0x82,
    /// Reply to [`Op::Stats`]: `key=value` text lines.
    StatsReply = 0x83,
    /// Reply to [`Op::Shutdown`]: acknowledged, the server is draining.
    ShutdownReply = 0x84,
    /// Reply to [`Op::SegmentCached`]: the label map plus a hit/miss flag.
    SegmentCachedReply = 0x85,
    /// Reply to [`Op::SegmentDelta`]: the label map plus per-tile hit and
    /// recompute counts for the frame.
    SegmentDeltaReply = 0x86,
    /// Reply to any segment op when the server's admission limit is reached:
    /// the request was *not* executed and may be retried (v2, empty payload).
    /// Distinct from [`Op::Error`] — the request was well-formed, the server
    /// is just saturated.
    Busy = 0x87,
    /// Reply to any malformed or failed request: a UTF-8 diagnostic.
    Error = 0xFF,
}

impl Op {
    fn from_byte(byte: u8) -> Result<Self, ProtocolError> {
        match byte {
            0x01 => Ok(Op::Segment),
            0x02 => Ok(Op::Ping),
            0x03 => Ok(Op::Stats),
            0x04 => Ok(Op::Shutdown),
            0x05 => Ok(Op::SegmentCached),
            0x06 => Ok(Op::SegmentDelta),
            0x81 => Ok(Op::SegmentReply),
            0x82 => Ok(Op::Pong),
            0x83 => Ok(Op::StatsReply),
            0x84 => Ok(Op::ShutdownReply),
            0x85 => Ok(Op::SegmentCachedReply),
            0x86 => Ok(Op::SegmentDeltaReply),
            0x87 => Ok(Op::Busy),
            0xFF => Ok(Op::Error),
            other => Err(ProtocolError::UnknownOp(other)),
        }
    }
}

/// A decoded protocol message (request or reply).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Segment this image (request).
    Segment {
        /// The RGB image to segment.
        image: RgbImage,
    },
    /// The segmentation result (reply).
    SegmentReply {
        /// One label per pixel, same dimensions as the request image.
        labels: LabelMap,
    },
    /// Segment this image through the server's result cache (v2 request).
    SegmentCached {
        /// The RGB image to segment.
        image: RgbImage,
        /// Skip the cache for this request ([`FLAG_BYPASS_CACHE`]).
        bypass: bool,
    },
    /// The cached-segmentation result (v2 reply).
    SegmentCachedReply {
        /// One label per pixel, same dimensions as the request image.
        labels: LabelMap,
        /// Whether the labels came from the cache ([`FLAG_CACHE_HIT`]).
        cached: bool,
    },
    /// Segment this image through the server's per-tile delta cache (v2
    /// request).
    SegmentDelta {
        /// The RGB image to segment.
        image: RgbImage,
    },
    /// The delta-segmentation result (v2 reply).
    SegmentDeltaReply {
        /// One label per pixel, same dimensions as the request image.
        labels: LabelMap,
        /// Tiles of this frame stitched from the cache.
        tiles_hit: u32,
        /// Tiles of this frame that were re-classified.
        tiles_recomputed: u32,
    },
    /// Liveness probe (request).
    Ping,
    /// Liveness acknowledgement (reply).
    Pong,
    /// Statistics request.
    Stats,
    /// Statistics snapshot as `key=value` lines (reply).
    StatsReply {
        /// The snapshot text (see `stats::StatsSnapshot`).
        text: String,
    },
    /// Drain-then-stop request.
    Shutdown,
    /// Shutdown acknowledged (reply); the connection closes after this frame.
    ShutdownReply,
    /// The server's admission limit is reached; the segment request was not
    /// executed and may be retried (reply).
    Busy,
    /// Request failed; the payload is a human-readable diagnostic (reply).
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Message {
    /// The wire op code of this message.
    pub fn op(&self) -> Op {
        match self {
            Message::Segment { .. } => Op::Segment,
            Message::SegmentReply { .. } => Op::SegmentReply,
            Message::SegmentCached { .. } => Op::SegmentCached,
            Message::SegmentCachedReply { .. } => Op::SegmentCachedReply,
            Message::SegmentDelta { .. } => Op::SegmentDelta,
            Message::SegmentDeltaReply { .. } => Op::SegmentDeltaReply,
            Message::Ping => Op::Ping,
            Message::Pong => Op::Pong,
            Message::Stats => Op::Stats,
            Message::StatsReply { .. } => Op::StatsReply,
            Message::Shutdown => Op::Shutdown,
            Message::ShutdownReply => Op::ShutdownReply,
            Message::Busy => Op::Busy,
            Message::Error { .. } => Op::Error,
        }
    }

    /// A short human-readable name (for diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            Message::Segment { .. } => "Segment",
            Message::SegmentReply { .. } => "SegmentReply",
            Message::SegmentCached { .. } => "SegmentCached",
            Message::SegmentCachedReply { .. } => "SegmentCachedReply",
            Message::SegmentDelta { .. } => "SegmentDelta",
            Message::SegmentDeltaReply { .. } => "SegmentDeltaReply",
            Message::Ping => "Ping",
            Message::Pong => "Pong",
            Message::Stats => "Stats",
            Message::StatsReply { .. } => "StatsReply",
            Message::Shutdown => "Shutdown",
            Message::ShutdownReply => "ShutdownReply",
            Message::Busy => "Busy",
            Message::Error { .. } => "Error",
        }
    }
}

/// Everything that can go wrong while encoding or decoding a frame.
///
/// Decoding never panics; every malformed input maps to one of these.
#[derive(Debug)]
pub enum ProtocolError {
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame declared an unsupported protocol version.
    BadVersion(u16),
    /// The reserved header byte was not zero.
    BadReserved(u8),
    /// The op byte is not a known [`Op`].
    UnknownOp(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD_BYTES`].
    PayloadTooLarge {
        /// Declared payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The payload length disagrees with what the op's layout requires.
    BadLength {
        /// The op being decoded.
        op: Op,
        /// Expected payload length in bytes (`None` when the header itself
        /// was too short to tell).
        expected: Option<usize>,
        /// Actual payload length in bytes.
        got: usize,
    },
    /// The declared image dimensions overflow or exceed [`MAX_PIXELS`].
    BadDimensions {
        /// Declared width.
        width: usize,
        /// Declared height.
        height: usize,
    },
    /// A flags word carried bits this version does not define.
    BadFlags {
        /// The op whose flags were malformed.
        op: Op,
        /// The offending flags word.
        flags: u32,
    },
    /// A text payload was not valid UTF-8.
    BadText,
    /// The underlying stream failed (includes mid-frame EOF as
    /// [`io::ErrorKind::UnexpectedEof`]).
    Io(io::Error),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic(bytes) => write!(f, "bad frame magic {bytes:?}"),
            ProtocolError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (expected {VERSION})")
            }
            ProtocolError::BadReserved(b) => write!(f, "reserved header byte is {b}, expected 0"),
            ProtocolError::UnknownOp(op) => write!(f, "unknown op byte {op:#04x}"),
            ProtocolError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::BadLength { op, expected, got } => match expected {
                Some(expected) => write!(
                    f,
                    "{op:?} payload is {got} bytes, layout requires {expected}"
                ),
                None => write!(f, "{op:?} payload of {got} bytes is too short"),
            },
            ProtocolError::BadDimensions { width, height } => write!(
                f,
                "image dimensions {width}x{height} overflow or exceed {MAX_PIXELS} pixels"
            ),
            ProtocolError::BadFlags { op, flags } => {
                write!(f, "{op:?} flags word {flags:#010x} carries undefined bits")
            }
            ProtocolError::BadText => write!(f, "text payload is not valid UTF-8"),
            ProtocolError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(err: io::Error) -> Self {
        ProtocolError::Io(err)
    }
}

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Caller-chosen request id, echoed in the reply.
    pub request_id: u64,
    /// The frame's operation.
    pub op: Op,
    /// Payload length in bytes (already bounds-checked).
    pub payload_len: usize,
}

/// Parses and validates a raw 20-byte frame header.
pub fn parse_header(bytes: &[u8; HEADER_LEN]) -> Result<Header, ProtocolError> {
    if bytes[0..4] != MAGIC {
        return Err(ProtocolError::BadMagic([
            bytes[0], bytes[1], bytes[2], bytes[3],
        ]));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(ProtocolError::BadVersion(version));
    }
    let op = Op::from_byte(bytes[6])?;
    if bytes[7] != 0 {
        return Err(ProtocolError::BadReserved(bytes[7]));
    }
    let request_id = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let payload_len = u32::from_le_bytes(bytes[16..20].try_into().expect("4-byte slice")) as usize;
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(ProtocolError::PayloadTooLarge {
            len: payload_len,
            max: MAX_PAYLOAD_BYTES,
        });
    }
    Ok(Header {
        request_id,
        op,
        payload_len,
    })
}

fn checked_pixels(width: usize, height: usize) -> Result<usize, ProtocolError> {
    width
        .checked_mul(height)
        .filter(|&n| n <= MAX_PIXELS)
        .ok_or(ProtocolError::BadDimensions { width, height })
}

fn read_dims(op: Op, payload: &[u8]) -> Result<(usize, usize, usize), ProtocolError> {
    if payload.len() < 8 {
        return Err(ProtocolError::BadLength {
            op,
            expected: None,
            got: payload.len(),
        });
    }
    let width = u32::from_le_bytes(payload[0..4].try_into().expect("4-byte slice")) as usize;
    let height = u32::from_le_bytes(payload[4..8].try_into().expect("4-byte slice")) as usize;
    let pixels = checked_pixels(width, height)?;
    Ok((width, height, pixels))
}

fn expect_len(op: Op, payload: &[u8], expected: usize) -> Result<(), ProtocolError> {
    if payload.len() != expected {
        return Err(ProtocolError::BadLength {
            op,
            expected: Some(expected),
            got: payload.len(),
        });
    }
    Ok(())
}

/// Splits a leading `flags: u32` word off a v2 payload and rejects any bits
/// outside `allowed` — undefined flags are a protocol error, not silently
/// ignored, so a future flag cannot be half-understood.
fn read_flags(op: Op, payload: &[u8], allowed: u32) -> Result<(u32, &[u8]), ProtocolError> {
    if payload.len() < 4 {
        return Err(ProtocolError::BadLength {
            op,
            expected: None,
            got: payload.len(),
        });
    }
    let flags = u32::from_le_bytes(payload[0..4].try_into().expect("4-byte slice"));
    if flags & !allowed != 0 {
        return Err(ProtocolError::BadFlags { op, flags });
    }
    Ok((flags, &payload[4..]))
}

/// Decodes the `width, height, pixels…` image layout shared by the segment
/// request ops.
fn decode_image(op: Op, payload: &[u8]) -> Result<RgbImage, ProtocolError> {
    let (width, height, pixels) = read_dims(op, payload)?;
    expect_len(op, payload, 8 + pixels * 3)?;
    let data: Vec<Rgb<u8>> = payload[8..]
        .chunks_exact(3)
        .map(|c| Rgb::new(c[0], c[1], c[2]))
        .collect();
    RgbImage::from_vec(width, height, data)
        .map_err(|_| ProtocolError::BadDimensions { width, height })
}

/// Decodes the `width, height, labels…` layout shared by the segment reply
/// ops.
fn decode_labels(op: Op, payload: &[u8]) -> Result<LabelMap, ProtocolError> {
    let (width, height, pixels) = read_dims(op, payload)?;
    expect_len(op, payload, 8 + pixels * 4)?;
    let data: Vec<u32> = payload[8..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    LabelMap::from_vec(width, height, data)
        .map_err(|_| ProtocolError::BadDimensions { width, height })
}

/// Decodes a payload into a [`Message`] given its (already validated) op.
pub fn decode_body(op: Op, payload: &[u8]) -> Result<Message, ProtocolError> {
    match op {
        Op::Segment => Ok(Message::Segment {
            image: decode_image(op, payload)?,
        }),
        Op::SegmentReply => Ok(Message::SegmentReply {
            labels: decode_labels(op, payload)?,
        }),
        Op::SegmentCached => {
            // The cached ops define exactly bit 0.
            let (flags, rest) = read_flags(op, payload, FLAG_BYPASS_CACHE)?;
            Ok(Message::SegmentCached {
                image: decode_image(op, rest)?,
                bypass: flags & FLAG_BYPASS_CACHE != 0,
            })
        }
        Op::SegmentCachedReply => {
            let (flags, rest) = read_flags(op, payload, FLAG_CACHE_HIT)?;
            Ok(Message::SegmentCachedReply {
                labels: decode_labels(op, rest)?,
                cached: flags & FLAG_CACHE_HIT != 0,
            })
        }
        Op::SegmentDelta => {
            // The delta ops define no flags yet; the word must be zero.
            let (_flags, rest) = read_flags(op, payload, 0)?;
            Ok(Message::SegmentDelta {
                image: decode_image(op, rest)?,
            })
        }
        Op::SegmentDeltaReply => {
            let (_flags, rest) = read_flags(op, payload, 0)?;
            if rest.len() < 8 {
                return Err(ProtocolError::BadLength {
                    op,
                    expected: None,
                    got: payload.len(),
                });
            }
            let tiles_hit = u32::from_le_bytes(rest[0..4].try_into().expect("4-byte slice"));
            let tiles_recomputed = u32::from_le_bytes(rest[4..8].try_into().expect("4-byte slice"));
            Ok(Message::SegmentDeltaReply {
                labels: decode_labels(op, &rest[8..])?,
                tiles_hit,
                tiles_recomputed,
            })
        }
        Op::StatsReply | Op::Error => {
            let text = std::str::from_utf8(payload)
                .map_err(|_| ProtocolError::BadText)?
                .to_string();
            Ok(match op {
                Op::StatsReply => Message::StatsReply { text },
                _ => Message::Error { message: text },
            })
        }
        Op::Ping | Op::Pong | Op::Stats | Op::Shutdown | Op::ShutdownReply | Op::Busy => {
            expect_len(op, payload, 0)?;
            Ok(match op {
                Op::Ping => Message::Ping,
                Op::Pong => Message::Pong,
                Op::Stats => Message::Stats,
                Op::Shutdown => Message::Shutdown,
                Op::Busy => Message::Busy,
                _ => Message::ShutdownReply,
            })
        }
    }
}

/// Starts a frame: one allocation sized for header + payload, with the
/// payload-length field zeroed until [`finish_frame`] patches it in.  The
/// payload is serialized directly into this buffer — frames are built in a
/// single pass with no intermediate payload copy.
fn begin_frame(request_id: u64, op: Op, payload_capacity: usize) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload_capacity);
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.push(op as u8);
    frame.push(0);
    frame.extend_from_slice(&request_id.to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    frame
}

fn finish_frame(mut frame: Vec<u8>) -> Result<Vec<u8>, ProtocolError> {
    let payload_len = frame.len() - HEADER_LEN;
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(ProtocolError::PayloadTooLarge {
            len: payload_len,
            max: MAX_PAYLOAD_BYTES,
        });
    }
    frame[16..20].copy_from_slice(&(payload_len as u32).to_le_bytes());
    Ok(frame)
}

fn append_segment_payload(frame: &mut Vec<u8>, image: &RgbImage) {
    frame.extend_from_slice(&(image.width() as u32).to_le_bytes());
    frame.extend_from_slice(&(image.height() as u32).to_le_bytes());
    for px in image.as_slice() {
        frame.extend_from_slice(&[px.r(), px.g(), px.b()]);
    }
}

fn append_labels_payload(frame: &mut Vec<u8>, labels: &LabelMap) {
    frame.extend_from_slice(&(labels.width() as u32).to_le_bytes());
    frame.extend_from_slice(&(labels.height() as u32).to_le_bytes());
    for label in labels.as_slice() {
        frame.extend_from_slice(&label.to_le_bytes());
    }
}

/// Encodes a full frame (header + payload) into a byte vector.
///
/// Returns an error if the message's payload would exceed
/// [`MAX_PAYLOAD_BYTES`] or the image exceeds [`MAX_PIXELS`] — the encoder
/// enforces the same limits the decoder does, so a conforming peer can never
/// be handed an undecodable frame.
pub fn encode_message(request_id: u64, message: &Message) -> Result<Vec<u8>, ProtocolError> {
    let capacity = match message {
        Message::Segment { image } => {
            checked_pixels(image.width(), image.height())?;
            8 + image.len() * 3
        }
        Message::SegmentCached { image, .. } | Message::SegmentDelta { image } => {
            checked_pixels(image.width(), image.height())?;
            12 + image.len() * 3
        }
        Message::SegmentReply { labels } => {
            checked_pixels(labels.width(), labels.height())?;
            8 + labels.len() * 4
        }
        Message::SegmentCachedReply { labels, .. } => {
            checked_pixels(labels.width(), labels.height())?;
            12 + labels.len() * 4
        }
        Message::SegmentDeltaReply { labels, .. } => {
            checked_pixels(labels.width(), labels.height())?;
            20 + labels.len() * 4
        }
        Message::StatsReply { text } => text.len(),
        Message::Error { message } => message.len(),
        _ => 0,
    };
    let mut frame = begin_frame(request_id, message.op(), capacity);
    match message {
        Message::Segment { image } => append_segment_payload(&mut frame, image),
        Message::SegmentCached { image, bypass } => {
            let flags = if *bypass { FLAG_BYPASS_CACHE } else { 0 };
            frame.extend_from_slice(&flags.to_le_bytes());
            append_segment_payload(&mut frame, image);
        }
        Message::SegmentReply { labels } => append_labels_payload(&mut frame, labels),
        Message::SegmentCachedReply { labels, cached } => {
            let flags = if *cached { FLAG_CACHE_HIT } else { 0 };
            frame.extend_from_slice(&flags.to_le_bytes());
            append_labels_payload(&mut frame, labels);
        }
        Message::SegmentDelta { image } => {
            frame.extend_from_slice(&0u32.to_le_bytes());
            append_segment_payload(&mut frame, image);
        }
        Message::SegmentDeltaReply {
            labels,
            tiles_hit,
            tiles_recomputed,
        } => {
            frame.extend_from_slice(&0u32.to_le_bytes());
            frame.extend_from_slice(&tiles_hit.to_le_bytes());
            frame.extend_from_slice(&tiles_recomputed.to_le_bytes());
            append_labels_payload(&mut frame, labels);
        }
        Message::StatsReply { text } => frame.extend_from_slice(text.as_bytes()),
        Message::Error { message } => frame.extend_from_slice(message.as_bytes()),
        _ => {}
    }
    finish_frame(frame)
}

/// Encodes a `Segment` request frame directly from a borrowed image —
/// byte-identical to `encode_message` with [`Message::Segment`], without
/// cloning the image into a message first.  This is the client's hot path.
pub fn encode_segment(request_id: u64, image: &RgbImage) -> Result<Vec<u8>, ProtocolError> {
    checked_pixels(image.width(), image.height())?;
    let mut frame = begin_frame(request_id, Op::Segment, 8 + image.len() * 3);
    append_segment_payload(&mut frame, image);
    finish_frame(frame)
}

/// Borrowed-image encoder for [`Message::SegmentCached`] — byte-identical to
/// `encode_message`, without cloning the pixels into a message first.
pub fn encode_segment_cached(
    request_id: u64,
    image: &RgbImage,
    bypass: bool,
) -> Result<Vec<u8>, ProtocolError> {
    checked_pixels(image.width(), image.height())?;
    let mut frame = begin_frame(request_id, Op::SegmentCached, 12 + image.len() * 3);
    let flags = if bypass { FLAG_BYPASS_CACHE } else { 0 };
    frame.extend_from_slice(&flags.to_le_bytes());
    append_segment_payload(&mut frame, image);
    finish_frame(frame)
}

/// Borrowed-image encoder for [`Message::SegmentDelta`] — byte-identical to
/// `encode_message`, without cloning the pixels into a message first.
pub fn encode_segment_delta(request_id: u64, image: &RgbImage) -> Result<Vec<u8>, ProtocolError> {
    checked_pixels(image.width(), image.height())?;
    let mut frame = begin_frame(request_id, Op::SegmentDelta, 12 + image.len() * 3);
    frame.extend_from_slice(&0u32.to_le_bytes());
    append_segment_payload(&mut frame, image);
    finish_frame(frame)
}

/// Encodes and writes one frame to `w` (single `write_all` + flush).
pub fn write_message<W: Write>(
    w: &mut W,
    request_id: u64,
    message: &Message,
) -> Result<(), ProtocolError> {
    let frame = encode_message(request_id, message)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one full frame from `r` and decodes it.
///
/// Mid-frame EOF surfaces as [`ProtocolError::Io`] with
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_message<R: Read>(r: &mut R) -> Result<(u64, Message), ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let header = parse_header(&header)?;
    read_body(r, header).map(|message| (header.request_id, message))
}

/// Reads the payload for an already-parsed header and decodes the body.
///
/// Split out from [`read_message`] so a server can read the header with its
/// own polling/timeout policy and still share the payload path.
pub fn read_body<R: Read>(r: &mut R, header: Header) -> Result<Message, ProtocolError> {
    let mut payload = vec![0u8; header.payload_len];
    r.read_exact(&mut payload)?;
    decode_body(header.op, &payload)
}

/// Decodes one complete frame from a byte slice (header + payload).
pub fn decode_message(frame: &[u8]) -> Result<(u64, Message), ProtocolError> {
    let mut cursor = frame;
    let decoded = read_message(&mut cursor)?;
    Ok(decoded)
}

/// How much of a declared payload the decoder reserves up front.  The buffer
/// grows with the bytes that actually arrive, so a peer declaring a 64 MiB
/// frame and then stalling holds only what it sent, not what it promised.
const INITIAL_PAYLOAD_RESERVE: usize = 64 << 10;

/// One complete wire frame as produced by [`FrameDecoder`]: the validated
/// header plus the raw payload bytes (exactly `header.payload_len` of them).
///
/// The payload is *not* yet decoded into a [`Message`] — header validation
/// and body decoding fail differently (a bad header loses framing, a bad
/// body does not), and the split keeps the decoder allocation-free beyond
/// the frame buffer itself.  Call [`Frame::message`] to decode the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The validated frame header.
    pub header: Header,
    /// The raw payload (`header.payload_len` bytes).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Decodes the payload into a [`Message`] (same typed errors as
    /// [`decode_body`], which the blocking stream path also uses).
    pub fn message(&self) -> Result<Message, ProtocolError> {
        decode_body(self.header.op, &self.payload)
    }
}

enum DecodeState {
    /// Accumulating the 20 header bytes.
    Header { filled: usize },
    /// Header validated; accumulating `header.payload_len` payload bytes.
    Payload { header: Header },
    /// A header failed validation: framing is lost and the decoder is done.
    Failed,
}

/// Sans-io incremental frame decoder: feed it byte chunks of any size and
/// take [`Frame`]s (or one typed [`ProtocolError`]) out.  It performs no I/O
/// and allocates nothing beyond the frame buffer currently being filled.
///
/// The state machine mirrors the blocking stream path exactly —
/// [`parse_header`] runs the moment the 20th header byte arrives, and
/// payload buffering is bounded by the already-validated `payload_len` (so
/// it can never buffer more than [`MAX_PAYLOAD_BYTES`] + [`HEADER_LEN`]
/// bytes).  A header that fails validation poisons the decoder: framing is
/// lost, so every later byte is refused (`feed` consumes nothing and returns
/// no event) and the connection should be closed, exactly as the blocking
/// server does.
///
/// Feeding loop (a chunk may contain many frames):
///
/// ```
/// use iqft_serve::protocol::{encode_message, FrameDecoder, Message};
/// let mut bytes = encode_message(7, &Message::Ping).unwrap();
/// bytes.extend(encode_message(8, &Message::Stats).unwrap());
/// let mut decoder = FrameDecoder::new();
/// let mut frames = Vec::new();
/// let mut offset = 0;
/// while offset < bytes.len() {
///     let (consumed, event) = decoder.feed(&bytes[offset..]);
///     offset += consumed;
///     match event {
///         Some(Ok(frame)) => frames.push(frame),
///         Some(Err(err)) => panic!("valid stream: {err}"),
///         None if consumed == 0 => break, // poisoned decoder
///         None => {}
///     }
/// }
/// assert_eq!(frames.len(), 2);
/// assert_eq!(frames[0].header.request_id, 7);
/// assert_eq!(frames[1].header.request_id, 8);
/// ```
pub struct FrameDecoder {
    state: DecodeState,
    header_buf: [u8; HEADER_LEN],
    payload: Vec<u8>,
    frames_started: u64,
    frames_decoded: u64,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A fresh decoder at a frame boundary.
    pub fn new() -> Self {
        FrameDecoder {
            state: DecodeState::Header { filled: 0 },
            header_buf: [0u8; HEADER_LEN],
            payload: Vec::new(),
            frames_started: 0,
            frames_decoded: 0,
        }
    }

    /// Feeds one chunk.  Returns how many bytes were consumed and the event
    /// (if any) that stopped consumption; call again with the unconsumed
    /// remainder.  `(0, None)` on non-empty input means the decoder is
    /// poisoned ([`FrameDecoder::is_failed`]).
    pub fn feed(&mut self, chunk: &[u8]) -> (usize, Option<Result<Frame, ProtocolError>>) {
        match &mut self.state {
            DecodeState::Failed => (0, None),
            DecodeState::Header { filled } => {
                let take = (HEADER_LEN - *filled).min(chunk.len());
                self.header_buf[*filled..*filled + take].copy_from_slice(&chunk[..take]);
                *filled += take;
                if *filled < HEADER_LEN {
                    return (take, None);
                }
                // The header is complete: this is the same moment the
                // blocking server's `read_exact` of the header returns, so
                // frame accounting (`frames_started`) ticks here, before
                // validation — malformed headers still count as requests.
                self.frames_started += 1;
                match parse_header(&self.header_buf) {
                    Err(err) => {
                        self.state = DecodeState::Failed;
                        (take, Some(Err(err)))
                    }
                    Ok(header) if header.payload_len == 0 => {
                        self.frames_decoded += 1;
                        self.state = DecodeState::Header { filled: 0 };
                        (
                            take,
                            Some(Ok(Frame {
                                header,
                                payload: Vec::new(),
                            })),
                        )
                    }
                    Ok(header) => {
                        self.payload =
                            Vec::with_capacity(header.payload_len.min(INITIAL_PAYLOAD_RESERVE));
                        self.state = DecodeState::Payload { header };
                        (take, None)
                    }
                }
            }
            DecodeState::Payload { header } => {
                let need = header.payload_len - self.payload.len();
                let take = need.min(chunk.len());
                self.payload.extend_from_slice(&chunk[..take]);
                if self.payload.len() < header.payload_len {
                    return (take, None);
                }
                let frame = Frame {
                    header: *header,
                    payload: std::mem::take(&mut self.payload),
                };
                self.frames_decoded += 1;
                self.state = DecodeState::Header { filled: 0 };
                (take, Some(Ok(frame)))
            }
        }
    }

    /// Whether a header failed validation; the decoder refuses further input.
    pub fn is_failed(&self) -> bool {
        matches!(self.state, DecodeState::Failed)
    }

    /// Whether the decoder is mid-frame: some bytes of the next frame have
    /// arrived but the frame is not complete.  This is what arms the
    /// server's per-frame read deadline.
    pub fn mid_frame(&self) -> bool {
        match self.state {
            DecodeState::Header { filled } => filled > 0,
            DecodeState::Payload { .. } => true,
            DecodeState::Failed => false,
        }
    }

    /// Bytes currently buffered for the in-progress frame.  Bounded by
    /// [`HEADER_LEN`] + [`MAX_PAYLOAD_BYTES`] by construction.
    pub fn buffered_bytes(&self) -> usize {
        let header = match self.state {
            DecodeState::Header { filled } => filled,
            _ => HEADER_LEN,
        };
        header + self.payload.len()
    }

    /// Frames whose 20-byte header has fully arrived (valid or not).  This
    /// is the decoder-side analogue of the blocking server's "count a
    /// request once the header is read" accounting.
    pub fn frames_started(&self) -> u64 {
        self.frames_started
    }

    /// Frames fully decoded and handed out.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Best-effort request id for an error reply after a header failed
    /// validation: if the magic matched, the id field's offset is shared by
    /// every protocol version, so echo it; otherwise the peer is not
    /// speaking this protocol at all and the reply echoes 0.
    pub fn error_request_id(&self) -> u64 {
        if self.header_buf[0..4] == MAGIC {
            u64::from_le_bytes(self.header_buf[8..16].try_into().expect("8-byte slice"))
        } else {
            0
        }
    }
}

impl std::fmt::Debug for FrameDecoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameDecoder")
            .field("mid_frame", &self.mid_frame())
            .field("failed", &self.is_failed())
            .field("buffered_bytes", &self.buffered_bytes())
            .field("frames_started", &self.frames_started)
            .field("frames_decoded", &self.frames_decoded)
            .finish()
    }
}

/// Sans-io mirror of [`FrameDecoder`] for the write side: enqueue reply
/// frames, hand [`FrameEncoder::pending`] to whatever transport is ready to
/// write, and report progress back with [`FrameEncoder::advance`].  Performs
/// no I/O; partial writes leave the unsent tail queued.
#[derive(Debug, Default)]
pub struct FrameEncoder {
    buf: Vec<u8>,
    cursor: usize,
}

impl FrameEncoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `message` and queues the frame for writing.
    pub fn enqueue(&mut self, request_id: u64, message: &Message) -> Result<(), ProtocolError> {
        let frame = encode_message(request_id, message)?;
        self.enqueue_frame(&frame);
        Ok(())
    }

    /// Queues an already-encoded frame (the hot path: workers encode replies
    /// off-thread and the reactor only copies bytes).
    pub fn enqueue_frame(&mut self, frame: &[u8]) {
        // Reclaim the already-written prefix before growing, so the buffer's
        // footprint tracks *unsent* bytes, not all bytes ever queued.
        if self.cursor > 0 {
            self.buf.drain(..self.cursor);
            self.cursor = 0;
        }
        self.buf.extend_from_slice(frame);
    }

    /// The bytes waiting to be written, in order.
    pub fn pending(&self) -> &[u8] {
        &self.buf[self.cursor..]
    }

    /// Number of bytes waiting to be written.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.cursor
    }

    /// Whether everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.cursor == self.buf.len()
    }

    /// Records that `n` bytes of [`FrameEncoder::pending`] were written.
    pub fn advance(&mut self, n: usize) {
        self.cursor += n;
        debug_assert!(self.cursor <= self.buf.len());
        if self.cursor == self.buf.len() {
            self.buf.clear();
            self.cursor = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> RgbImage {
        RgbImage::from_fn(5, 3, |x, y| Rgb::new(x as u8, y as u8, (x * y) as u8))
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Segment {
                image: sample_image(),
            },
            Message::SegmentReply {
                labels: LabelMap::from_vec(5, 3, (0..15).collect()).unwrap(),
            },
            Message::SegmentCached {
                image: sample_image(),
                bypass: false,
            },
            Message::SegmentCached {
                image: sample_image(),
                bypass: true,
            },
            Message::SegmentCachedReply {
                labels: LabelMap::from_vec(5, 3, (0..15).collect()).unwrap(),
                cached: true,
            },
            Message::SegmentCachedReply {
                labels: LabelMap::from_vec(5, 3, (15..30).collect()).unwrap(),
                cached: false,
            },
            Message::SegmentDelta {
                image: sample_image(),
            },
            Message::SegmentDeltaReply {
                labels: LabelMap::from_vec(5, 3, (30..45).collect()).unwrap(),
                tiles_hit: 7,
                tiles_recomputed: 2,
            },
            Message::Ping,
            Message::Pong,
            Message::Stats,
            Message::StatsReply {
                text: "requests=3\nplan=classifier=table;tile=off;backend=serial\n".to_string(),
            },
            Message::Shutdown,
            Message::ShutdownReply,
            Message::Busy,
            Message::Error {
                message: "no such θ".to_string(),
            },
        ]
    }

    #[test]
    fn every_op_round_trips_through_encode_decode() {
        for (i, message) in all_messages().into_iter().enumerate() {
            let id = 0x1234_5678_9abc_def0 ^ i as u64;
            let frame = encode_message(id, &message).unwrap();
            let (got_id, got) = decode_message(&frame).unwrap();
            assert_eq!(got_id, id, "{}", message.name());
            assert_eq!(got, message, "{}", message.name());
            assert_eq!(got.op(), message.op());
        }
    }

    #[test]
    fn stream_read_write_round_trips() {
        let mut buf = Vec::new();
        for (i, message) in all_messages().into_iter().enumerate() {
            write_message(&mut buf, i as u64, &message).unwrap();
        }
        let mut cursor = &buf[..];
        for (i, message) in all_messages().into_iter().enumerate() {
            let (id, got) = read_message(&mut cursor).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(got, message);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn borrowed_segment_encoder_matches_the_message_encoder() {
        let image = sample_image();
        let via_message = encode_message(
            42,
            &Message::Segment {
                image: image.clone(),
            },
        )
        .unwrap();
        assert_eq!(encode_segment(42, &image).unwrap(), via_message);
    }

    #[test]
    fn zero_area_image_round_trips() {
        let message = Message::Segment {
            image: RgbImage::from_fn(0, 0, |_, _| Rgb::new(0, 0, 0)),
        };
        let frame = encode_message(1, &message).unwrap();
        let (_, got) = decode_message(&frame).unwrap();
        assert_eq!(got, message);
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking() {
        let frame = encode_message(
            7,
            &Message::Segment {
                image: sample_image(),
            },
        )
        .unwrap();
        for cut in [
            0,
            1,
            HEADER_LEN - 1,
            HEADER_LEN,
            HEADER_LEN + 5,
            frame.len() - 1,
        ] {
            let err = decode_message(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Io(ref e) if e.kind() == io::ErrorKind::UnexpectedEof),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bad_magic_version_op_and_reserved_are_rejected() {
        let good = encode_message(1, &Message::Ping).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_message(&bad).unwrap_err(),
            ProtocolError::BadMagic(_)
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_message(&bad).unwrap_err(),
            ProtocolError::BadVersion(99)
        ));

        let mut bad = good.clone();
        bad[6] = 0x7E;
        assert!(matches!(
            decode_message(&bad).unwrap_err(),
            ProtocolError::UnknownOp(0x7E)
        ));

        let mut bad = good;
        bad[7] = 1;
        assert!(matches!(
            decode_message(&bad).unwrap_err(),
            ProtocolError::BadReserved(1)
        ));
    }

    #[test]
    fn oversized_payload_length_is_rejected_before_allocation() {
        let mut frame = encode_message(1, &Message::Ping).unwrap();
        frame[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        // The length field alone triggers the error; no 4 GiB allocation.
        assert!(matches!(
            decode_message(&frame).unwrap_err(),
            ProtocolError::PayloadTooLarge { .. }
        ));
    }

    #[test]
    fn dimension_overflow_and_pixel_limit_are_rejected() {
        // Declared dims whose product overflows the payload bound.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_body(Op::Segment, &payload).unwrap_err(),
            ProtocolError::BadDimensions { .. }
        ));
        // A Segment whose payload disagrees with its declared dims.
        let mut payload = Vec::new();
        payload.extend_from_slice(&4u32.to_le_bytes());
        payload.extend_from_slice(&4u32.to_le_bytes());
        payload.extend_from_slice(&[0; 5]);
        assert!(matches!(
            decode_body(Op::Segment, &payload).unwrap_err(),
            ProtocolError::BadLength {
                op: Op::Segment,
                expected: Some(56),
                got: 13,
            }
        ));
        // A header too short to even carry dimensions.
        assert!(matches!(
            decode_body(Op::SegmentReply, &[1, 2, 3]).unwrap_err(),
            ProtocolError::BadLength { expected: None, .. }
        ));
        // An in-bounds reply still encodes fine.
        assert!(encode_message(
            1,
            &Message::SegmentReply {
                labels: LabelMap::from_vec(1, 1, vec![0]).unwrap(),
            },
        )
        .is_ok());
    }

    #[test]
    fn empty_op_payloads_must_be_empty() {
        for op in [
            Op::Ping,
            Op::Pong,
            Op::Stats,
            Op::Shutdown,
            Op::ShutdownReply,
            Op::Busy,
        ] {
            assert!(matches!(
                decode_body(op, &[0]).unwrap_err(),
                ProtocolError::BadLength { .. }
            ));
            assert!(decode_body(op, &[]).is_ok());
        }
    }

    #[test]
    fn cached_segment_flags_round_trip_and_undefined_bits_are_rejected() {
        let image = sample_image();
        let frame = encode_segment_cached(11, &image, true).unwrap();
        let via_message = encode_message(
            11,
            &Message::SegmentCached {
                image: image.clone(),
                bypass: true,
            },
        )
        .unwrap();
        assert_eq!(frame, via_message);
        let (id, got) = decode_message(&frame).unwrap();
        assert_eq!(id, 11);
        assert_eq!(
            got,
            Message::SegmentCached {
                image,
                bypass: true
            }
        );

        // An undefined flag bit is a typed error, not silently ignored.
        let mut bad = frame.clone();
        bad[HEADER_LEN] |= 0x02;
        assert!(matches!(
            decode_message(&bad).unwrap_err(),
            ProtocolError::BadFlags {
                op: Op::SegmentCached,
                flags: 0x03,
            }
        ));
        // A payload too short even for the flags word is a length error.
        assert!(matches!(
            decode_body(Op::SegmentCachedReply, &[0, 0]).unwrap_err(),
            ProtocolError::BadLength { expected: None, .. }
        ));
    }

    #[test]
    fn delta_ops_round_trip_counters_and_reject_any_flag_bit() {
        let image = sample_image();
        let frame = encode_segment_delta(21, &image).unwrap();
        let via_message = encode_message(
            21,
            &Message::SegmentDelta {
                image: image.clone(),
            },
        )
        .unwrap();
        assert_eq!(frame, via_message);
        let (id, got) = decode_message(&frame).unwrap();
        assert_eq!(id, 21);
        assert_eq!(got, Message::SegmentDelta { image });

        // The delta ops define no flags at all: even bit 0 (legal on the
        // cached ops) is a typed error here.
        let mut bad = frame.clone();
        bad[HEADER_LEN] |= 0x01;
        assert!(matches!(
            decode_message(&bad).unwrap_err(),
            ProtocolError::BadFlags {
                op: Op::SegmentDelta,
                flags: 0x01,
            }
        ));

        let reply = Message::SegmentDeltaReply {
            labels: LabelMap::from_vec(5, 3, (0..15).collect()).unwrap(),
            tiles_hit: u32::MAX,
            tiles_recomputed: 0,
        };
        let frame = encode_message(22, &reply).unwrap();
        let (_, got) = decode_message(&frame).unwrap();
        assert_eq!(got, reply);
        let mut bad = frame;
        bad[HEADER_LEN] |= 0x01;
        assert!(matches!(
            decode_message(&bad).unwrap_err(),
            ProtocolError::BadFlags {
                op: Op::SegmentDeltaReply,
                flags: 0x01,
            }
        ));
        // A reply payload too short for the tile counters is a length error.
        assert!(matches!(
            decode_body(Op::SegmentDeltaReply, &[0, 0, 0, 0, 1, 2]).unwrap_err(),
            ProtocolError::BadLength { expected: None, .. }
        ));
    }

    #[test]
    fn version_1_frames_are_rejected_with_a_typed_error() {
        let mut frame = encode_message(1, &Message::Ping).unwrap();
        frame[4..6].copy_from_slice(&1u16.to_le_bytes());
        match decode_message(&frame).unwrap_err() {
            ProtocolError::BadVersion(1) => {}
            other => panic!("expected BadVersion(1), got {other}"),
        }
        assert!(ProtocolError::BadVersion(1)
            .to_string()
            .contains("expected 2"));
    }

    #[test]
    fn invalid_utf8_text_payloads_are_rejected() {
        for op in [Op::StatsReply, Op::Error] {
            assert!(matches!(
                decode_body(op, &[0xFF, 0xFE]).unwrap_err(),
                ProtocolError::BadText
            ));
        }
    }

    #[test]
    fn errors_render_human_readable_diagnostics() {
        let err = ProtocolError::PayloadTooLarge {
            len: 1 << 30,
            max: MAX_PAYLOAD_BYTES,
        };
        assert!(err.to_string().contains("exceeds"));
        assert!(ProtocolError::BadMagic(*b"HTTP")
            .to_string()
            .contains("magic"));
        assert!(ProtocolError::BadText.to_string().contains("UTF-8"));
    }
}
