//! A minimal `poll(2)` shim over raw libc, in the same spirit as the
//! workspace's other dependency shims: the workspace is offline, so there is
//! no `mio`/`tokio`/`libc` crate to lean on — but `std` already links the
//! platform C library, so declaring the one symbol we need is enough.
//!
//! Only what the evented server uses is wrapped: readable/writable/error
//! readiness on a set of file descriptors with a millisecond timeout, plus a
//! best-effort `RLIMIT_NOFILE` raise so thousand-connection sweeps do not
//! trip the default soft descriptor limit.  Everything is `cfg(unix)`; on
//! other platforms the evented serve mode falls back to thread-per-connection
//! (see `ServerConfig::mode`).

#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readable readiness (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (`POLLERR`; only ever returned in `revents`).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (`POLLHUP`; only ever returned in `revents`).
pub const POLLHUP: i16 = 0x010;
/// Invalid descriptor (`POLLNVAL`; only ever returned in `revents`).
pub const POLLNVAL: i16 = 0x020;

/// One entry in a poll set: a file descriptor, the events of interest, and
/// (after [`poll`]) the events that fired.  Layout-compatible with the C
/// `struct pollfd` on every unix libc, which is what makes the direct FFI
/// call sound.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Interest in `events` (a mask of [`POLLIN`] / [`POLLOUT`]; error and
    /// hang-up conditions are always reported) on `fd`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The registered descriptor.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Whether the descriptor has readable data (or a pending hang-up /
    /// error, which a read will surface as EOF or an error — exactly what
    /// the caller's read path wants to observe).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Whether the descriptor can accept writes.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// Whether the descriptor is in an error / hang-up state.
    pub fn has_error(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }

    /// Whether any registered or error condition fired.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

mod sys {
    #[allow(non_camel_case_types)]
    pub type nfds_t = std::os::raw::c_ulong;

    extern "C" {
        pub fn poll(fds: *mut super::PollFd, nfds: nfds_t, timeout: std::os::raw::c_int) -> i32;
    }
}

/// Waits until at least one descriptor in `fds` is ready or `timeout`
/// elapses (`None` = wait forever).  Returns the number of ready entries;
/// `0` means the timeout fired.  `EINTR` is retried internally.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: std::os::raw::c_int = match timeout {
        // Round up so a 100µs deadline does not busy-spin as timeout 0.
        Some(t) => t
            .as_millis()
            .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as std::os::raw::c_int,
        None => -1,
    };
    loop {
        for fd in fds.iter_mut() {
            fd.revents = 0;
        }
        let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as sys::nfds_t, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(target_os = "linux")]
mod rlimit {
    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    pub const RLIMIT_NOFILE: std::os::raw::c_int = 7;

    extern "C" {
        pub fn getrlimit(resource: std::os::raw::c_int, rlim: *mut Rlimit) -> i32;
        pub fn setrlimit(resource: std::os::raw::c_int, rlim: *const Rlimit) -> i32;
    }
}

/// Best-effort raise of the soft open-file limit to at least `want`
/// descriptors (clamped to the hard limit).  Returns the resulting soft
/// limit, or `None` when it cannot be determined.  A thousand pipelined
/// connections needs ~2× that many descriptors in one process (client and
/// server ends both count when loadgen drives a local daemon), which
/// overruns the common 1024-descriptor default soft limit.
pub fn raise_nofile_limit(want: u64) -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let mut limit = rlimit::Rlimit { cur: 0, max: 0 };
        if unsafe { rlimit::getrlimit(rlimit::RLIMIT_NOFILE, &mut limit) } != 0 {
            return None;
        }
        if limit.cur < want && limit.cur < limit.max {
            let raised = rlimit::Rlimit {
                cur: want.min(limit.max),
                max: limit.max,
            };
            if unsafe { rlimit::setrlimit(rlimit::RLIMIT_NOFILE, &raised) } == 0 {
                limit.cur = raised.cur;
            }
        }
        Some(limit.cur)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = want;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_reports_readable_after_a_write_and_times_out_when_idle() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        // Idle: a short timeout elapses with nothing ready.
        let n = poll(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].ready());
        // One byte in flight: readable fires well before the timeout.
        a.write_all(&[42]).unwrap();
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].writable());
    }

    #[test]
    fn poll_reports_writable_on_a_fresh_socket_and_hangup_after_peer_drop() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
        drop(a);
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        // Peer gone surfaces as readable (a read will observe EOF).
        assert!(fds[0].readable());
    }

    #[test]
    fn raise_nofile_limit_reports_a_usable_limit_on_linux() {
        if cfg!(target_os = "linux") {
            let limit = raise_nofile_limit(256).expect("linux exposes RLIMIT_NOFILE");
            assert!(limit >= 256 || limit > 0);
        }
    }
}
