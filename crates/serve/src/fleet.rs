//! The multi-daemon fleet layer: consistent-hash routing over N daemons.
//!
//! One daemon's content-addressed cache tops out at one machine's memory
//! and one accept loop.  A [`FleetClient`] scales the hit path horizontally
//! by routing every `SegmentCached`/`SegmentDelta` request to the daemon
//! that *owns* the image's content hash on a deterministic consistent-hash
//! ring ([`HashRing`], hand-rolled, virtual nodes) — so each daemon's LRU
//! only ever sees its own slice of the key space and stays hot.
//!
//! Failover is part of routing, not an afterthought: when an owner is
//! unreachable (connect refused, or the connection dies because the daemon
//! is draining), the request moves to the next distinct owner clockwise on
//! the ring, the skip is counted against the dead endpoint, and the reply
//! comes back as [`SegmentOutcome::Failover`] — a correct answer that was
//! almost certainly a miss at its fallback.  Killing one daemon therefore
//! degrades to misses, never to errors.
//!
//! All routing is client-side and deterministic: every fleet client with
//! the same endpoint list computes the same ring, so independent load
//! generators agree on placement without any coordination service.

use crate::client::{Client, ClientConfig, SegmentOutcome, ServeError};
use crate::protocol::ProtocolError;
use imaging::RgbImage;
use iqft_pipeline::route_hash;
use std::collections::BTreeMap;
use std::io;

/// Virtual nodes per endpoint on the ring.  Enough that removing one of N
/// endpoints moves close to the ideal 1/N of the key space (the ring test
/// suite bounds it at 2/N) without making ring construction noticeable.
pub const DEFAULT_VNODES: usize = 64;

/// FNV-1a over `bytes` — the same seedless hash the stats and cache layers
/// use for fingerprints; collisions on ring points are broken by sort
/// order, so cryptographic strength is not required, only determinism.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The splitmix64 finalizer: spreads consecutive vnode indices across the
/// full 64-bit ring so an endpoint's virtual nodes do not cluster.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A deterministic consistent-hash ring with virtual nodes.
///
/// Each endpoint label is expanded into [`DEFAULT_VNODES`] points on a
/// 64-bit ring; a key is owned by the first point clockwise from it.
/// Because points depend only on the labels (not their order or count),
/// adding or removing an endpoint moves only the keys adjacent to that
/// endpoint's own points — ≈1/N of the key space — instead of reshuffling
/// everything the way `hash % N` would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, endpoint index)` sorted by point.
    points: Vec<(u64, usize)>,
    /// How many distinct endpoints the ring covers.
    nodes: usize,
}

impl HashRing {
    /// Builds the ring over `labels` with `vnodes` virtual nodes each.
    pub fn new(labels: &[String], vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(labels.len() * vnodes);
        for (idx, label) in labels.iter().enumerate() {
            let base = fnv1a(label.as_bytes());
            for v in 0..vnodes {
                points.push((mix64(base ^ mix64(v as u64 + 1)), idx));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            nodes: labels.len(),
        }
    }

    /// How many distinct endpoints the ring covers.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The endpoint that owns `key`: the first ring point at or clockwise
    /// after it (wrapping at the top of the 64-bit space).
    pub fn owner(&self, key: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < key);
        let i = if i == self.points.len() { 0 } else { i };
        self.points[i].1
    }

    /// The failover order for `key`: its owner, then every other distinct
    /// endpoint in the order their points appear clockwise from the key.
    /// Deterministic, covers each endpoint exactly once.
    pub fn owners(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes);
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(p, _)| p < key);
        let mut seen = vec![false; self.nodes];
        for offset in 0..self.points.len() {
            let (_, node) = self.points[(start + offset) % self.points.len()];
            if !seen[node] {
                seen[node] = true;
                order.push(node);
                if order.len() == self.nodes {
                    break;
                }
            }
        }
        order
    }
}

/// Typed per-endpoint accounting, indexed like [`FleetClient::addrs`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EndpointStats {
    /// Requests this endpoint answered (including `Busy` refusals).
    pub requests: u64,
    /// Replies this endpoint served from its result cache.
    pub hits: u64,
    /// Requests this endpoint refused with `Busy` after the client's retry
    /// budget was spent.
    pub busy: u64,
    /// Connect or transport failures observed talking to this endpoint.
    pub errors: u64,
    /// Requests this endpoint owned but could not serve — each was rerouted
    /// to the next ring owner and counted here, against the endpoint that
    /// failed.
    pub failovers: u64,
}

/// A client for a fleet of `iqft-serve` daemons.
///
/// Holds at most one connection per endpoint (dialed lazily, redialed
/// transparently after a failure, so a restarted daemon rejoins the fleet
/// on its next owned request) and routes each request by content hash over
/// the [`HashRing`].  Pipelined bursts are split per endpoint and pipelined
/// on each connection independently.
#[derive(Debug)]
pub struct FleetClient {
    config: ClientConfig,
    ring: HashRing,
    connections: Vec<Option<Client>>,
    stats: Vec<EndpointStats>,
}

impl FleetClient {
    /// Builds the ring over `config.addrs` and returns the fleet client.
    /// No connection is dialed yet — endpoints connect on first use, so a
    /// fleet with one dead daemon opens fine and simply fails over.
    pub fn open(config: &ClientConfig) -> io::Result<FleetClient> {
        if config.addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "fleet config names no address",
            ));
        }
        let ring = HashRing::new(&config.addrs, DEFAULT_VNODES);
        Ok(FleetClient {
            config: config.clone(),
            connections: (0..config.addrs.len()).map(|_| None).collect(),
            stats: vec![EndpointStats::default(); config.addrs.len()],
            ring,
        })
    }

    /// The fleet's endpoint addresses, in ring-index order.
    pub fn addrs(&self) -> &[String] {
        &self.config.addrs
    }

    /// Per-endpoint accounting, indexed like [`FleetClient::addrs`].
    pub fn stats(&self) -> &[EndpointStats] {
        &self.stats
    }

    /// Total failovers across the fleet: how many times any request had to
    /// skip its ring owner.
    pub fn total_failovers(&self) -> u64 {
        self.stats.iter().map(|s| s.failovers).sum()
    }

    /// The ring used for routing (shared by every identically-configured
    /// fleet client).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Takes (or dials) the connection for endpoint `idx`; the caller puts
    /// it back on success so a transport failure drops the socket.
    fn take_connection(&mut self, idx: usize) -> io::Result<Client> {
        match self.connections[idx].take() {
            Some(client) => Ok(client),
            None => Client::dial(&self.config.addrs[idx], &self.config),
        }
    }

    /// Records a successfully-answered outcome against endpoint `idx`.
    fn record_outcome(&mut self, idx: usize, outcome: &SegmentOutcome) {
        let stats = &mut self.stats[idx];
        stats.requests += 1;
        if outcome.cached() {
            stats.hits += 1;
        }
        if outcome.is_busy() {
            stats.busy += 1;
        }
    }

    /// Routes `image`'s key over the ring and runs `call` against each
    /// owner in failover order until one answers.  `Busy` is an answer (the
    /// endpoint is alive, just saturated); only connect and transport
    /// failures move on to the next owner.
    fn route<R>(
        &mut self,
        image: &RgbImage,
        mut call: impl FnMut(&mut Client, &RgbImage) -> Result<R, ServeError>,
        outcome_of: impl Fn(&R) -> &SegmentOutcome,
        promote: impl FnOnce(R, u32) -> R,
    ) -> Result<R, ServeError> {
        let order = self.ring.owners(route_hash(image));
        let mut tried = 0u32;
        let mut last_err: Option<ServeError> = None;
        for idx in order {
            let mut client = match self.take_connection(idx) {
                Ok(client) => client,
                Err(err) => {
                    self.stats[idx].errors += 1;
                    self.stats[idx].failovers += 1;
                    tried += 1;
                    last_err = Some(err.into());
                    continue;
                }
            };
            match call(&mut client, image) {
                Ok(result) => {
                    self.connections[idx] = Some(client);
                    self.record_outcome(idx, outcome_of(&result));
                    return Ok(if tried > 0 {
                        promote(result, tried)
                    } else {
                        result
                    });
                }
                Err(ServeError::Protocol(err)) => {
                    // The connection died under us — a draining or killed
                    // daemon.  Drop the socket and move to the next owner;
                    // the ops are idempotent, so re-sending is safe.
                    self.stats[idx].errors += 1;
                    self.stats[idx].failovers += 1;
                    tried += 1;
                    last_err = Some(ServeError::Protocol(err));
                }
                Err(err) => return Err(err),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            ServeError::Protocol(ProtocolError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "no fleet endpoint reachable",
            )))
        }))
    }

    /// [`Client::segment_cached`] routed to the image's ring owner, with
    /// failover.  A reply served by a fallback owner comes back as
    /// [`SegmentOutcome::Failover`].
    pub fn segment_cached(
        &mut self,
        image: &RgbImage,
        bypass: bool,
    ) -> Result<SegmentOutcome, ServeError> {
        self.route(
            image,
            |client, image| client.segment_cached(image, bypass),
            |outcome| outcome,
            promote_outcome,
        )
    }

    /// [`Client::segment_delta`] routed to the image's ring owner, with
    /// failover.  Tile counts come from whichever endpoint answered.
    pub fn segment_delta(
        &mut self,
        image: &RgbImage,
    ) -> Result<(SegmentOutcome, u32, u32), ServeError> {
        self.route(
            image,
            |client, image| client.segment_delta(image),
            |(outcome, _, _)| outcome,
            |(outcome, hit, recomputed), tried| (promote_outcome(outcome, tried), hit, recomputed),
        )
    }

    /// Pipelined fleet segmentation: splits `images` by ring owner, runs
    /// one pipelined burst per endpoint (depth from
    /// [`ClientConfig::pipeline_depth`]), and reassembles the outcomes in
    /// input order.  An endpoint that fails mid-burst has its whole group
    /// rerouted to each image's next ring owner — already-answered images
    /// keep their replies; unanswered ones are re-sent (idempotent ops).
    pub fn segment_pipelined(
        &mut self,
        images: &[&RgbImage],
        use_cache: bool,
    ) -> Result<Vec<SegmentOutcome>, ServeError> {
        let orders: Vec<Vec<usize>> = images
            .iter()
            .map(|image| self.ring.owners(route_hash(image)))
            .collect();
        let mut results: Vec<Option<SegmentOutcome>> = (0..images.len()).map(|_| None).collect();
        // Work items: (image index, step into its failover order, skips).
        let mut pending: Vec<(usize, usize, u32)> = (0..images.len()).map(|i| (i, 0, 0)).collect();
        let mut last_err: Option<ServeError> = None;
        while !pending.is_empty() {
            let mut groups: BTreeMap<usize, Vec<(usize, usize, u32)>> = BTreeMap::new();
            for item in pending.drain(..) {
                let (image, step, _) = item;
                if step >= orders[image].len() {
                    return Err(last_err.unwrap_or_else(|| {
                        ServeError::Protocol(ProtocolError::Io(io::Error::new(
                            io::ErrorKind::NotConnected,
                            "no fleet endpoint reachable",
                        )))
                    }));
                }
                groups.entry(orders[image][step]).or_default().push(item);
            }
            for (endpoint, group) in groups {
                let mut client = match self.take_connection(endpoint) {
                    Ok(client) => client,
                    Err(err) => {
                        self.stats[endpoint].errors += 1;
                        self.stats[endpoint].failovers += group.len() as u64;
                        last_err = Some(err.into());
                        pending.extend(
                            group
                                .into_iter()
                                .map(|(image, step, tried)| (image, step + 1, tried + 1)),
                        );
                        continue;
                    }
                };
                let burst: Vec<&RgbImage> =
                    group.iter().map(|&(image, _, _)| images[image]).collect();
                match client.segment_pipelined(&burst, use_cache) {
                    Ok(outcomes) => {
                        self.connections[endpoint] = Some(client);
                        for (&(image, _, tried), outcome) in group.iter().zip(outcomes) {
                            self.record_outcome(endpoint, &outcome);
                            results[image] = Some(promote_outcome(outcome, tried));
                        }
                    }
                    Err(ServeError::Protocol(err)) => {
                        self.stats[endpoint].errors += 1;
                        self.stats[endpoint].failovers += group.len() as u64;
                        last_err = Some(ServeError::Protocol(err));
                        pending.extend(
                            group
                                .into_iter()
                                .map(|(image, step, tried)| (image, step + 1, tried + 1)),
                        );
                    }
                    Err(err) => return Err(err),
                }
            }
        }
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("every image was routed"))
            .collect())
    }

    /// Asks every reachable daemon in the fleet to drain and stop.  Returns
    /// how many acknowledged; unreachable endpoints are skipped (they are
    /// already down).
    pub fn shutdown_all(&mut self) -> usize {
        let mut acknowledged = 0;
        for idx in 0..self.connections.len() {
            let Ok(mut client) = self.take_connection(idx) else {
                continue;
            };
            if client.shutdown().is_ok() {
                acknowledged += 1;
            }
        }
        acknowledged
    }
}

/// Re-labels an outcome that had to skip `tried` dead owners as
/// [`SegmentOutcome::Failover`]; `Busy` and zero-skip outcomes pass
/// through unchanged.
fn promote_outcome(outcome: SegmentOutcome, tried: u32) -> SegmentOutcome {
    match outcome {
        SegmentOutcome::Done { labels, cached }
        | SegmentOutcome::Failover { labels, cached, .. }
            if tried > 0 =>
        {
            SegmentOutcome::Failover {
                labels,
                cached,
                tried,
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use imaging::Rgb;
    use iqft_pipeline::CacheConfig;
    use seg_engine::SegmentPlan;

    fn labels(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// The same xorshift64 the experiments crate uses for synthetic load.
    fn xorshift_keys(count: usize, mut state: u64) -> Vec<u64> {
        (0..count)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    #[test]
    fn ring_is_deterministic_and_order_independent() {
        let a = HashRing::new(&labels(&["10.0.0.1:7700", "10.0.0.2:7700"]), 64);
        let b = HashRing::new(&labels(&["10.0.0.1:7700", "10.0.0.2:7700"]), 64);
        assert_eq!(a, b);
        // Same endpoints listed in a different order: indices differ but
        // the owning *label* of every key is identical.
        let c = HashRing::new(&labels(&["10.0.0.2:7700", "10.0.0.1:7700"]), 64);
        let names = ["10.0.0.1:7700", "10.0.0.2:7700"];
        let swapped = ["10.0.0.2:7700", "10.0.0.1:7700"];
        for key in xorshift_keys(1000, 7) {
            assert_eq!(names[a.owner(key)], swapped[c.owner(key)]);
        }
    }

    #[test]
    fn failover_order_covers_every_node_once_starting_at_the_owner() {
        let ring = HashRing::new(&labels(&["a:1", "b:1", "c:1", "d:1"]), 64);
        for key in xorshift_keys(200, 99) {
            let order = ring.owners(key);
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], ring.owner(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "each node appears once");
        }
    }

    #[test]
    fn adding_a_node_moves_at_most_two_over_n_of_the_keys() {
        let four = labels(&["a:1", "b:1", "c:1", "d:1"]);
        let mut five = four.clone();
        five.push("e:1".to_string());
        let before = HashRing::new(&four, DEFAULT_VNODES);
        let after = HashRing::new(&five, DEFAULT_VNODES);
        let keys = xorshift_keys(100_000, 42);
        let moved = keys
            .iter()
            .filter(|&&k| four[before.owner(k)] != five[after.owner(k)])
            .count();
        // Ideal movement is 1/5 of the keys (only those the new node takes
        // over); the 2/N bound leaves room for vnode placement variance.
        assert!(
            moved <= keys.len() * 2 / four.len(),
            "moved {moved} of {} keys",
            keys.len()
        );
        // Every moved key must have moved TO the new node — consistent
        // hashing never shuffles keys between surviving nodes.
        for &k in &keys {
            if four[before.owner(k)] != five[after.owner(k)] {
                assert_eq!(five[after.owner(k)], "e:1");
            }
        }
    }

    #[test]
    fn removing_a_node_strands_only_its_own_keys() {
        let four = labels(&["a:1", "b:1", "c:1", "d:1"]);
        let three = labels(&["a:1", "b:1", "d:1"]);
        let before = HashRing::new(&four, DEFAULT_VNODES);
        let after = HashRing::new(&three, DEFAULT_VNODES);
        let keys = xorshift_keys(100_000, 1234);
        let mut moved = 0usize;
        for &k in &keys {
            let was = &four[before.owner(k)];
            let now = &three[after.owner(k)];
            if was != now {
                moved += 1;
                assert_eq!(was, "c:1", "only the removed node's keys move");
            }
        }
        assert!(moved <= keys.len() * 2 / four.len(), "moved {moved}");
        assert!(moved > 0, "the removed node owned something");
    }

    #[test]
    fn ring_distributes_xorshift_keys_within_bounds() {
        let names = labels(&["a:1", "b:1", "c:1", "d:1"]);
        let ring = HashRing::new(&names, 128);
        let keys = xorshift_keys(100_000, 5150);
        let mut counts = vec![0usize; names.len()];
        for &k in &keys {
            counts[ring.owner(k)] += 1;
        }
        let fair = keys.len() / names.len();
        for (node, &count) in counts.iter().enumerate() {
            assert!(
                count >= fair / 2 && count <= fair * 2,
                "node {node} owns {count} of {} keys (fair share {fair})",
                keys.len()
            );
        }
    }

    // ---- fleet integration: in-process daemons on loopback ----

    fn test_image(seed: u8) -> RgbImage {
        let mut img = RgbImage::new(48, 32, Rgb::new(0u8, 0, 0));
        for y in 0..32 {
            for x in 0..48 {
                let v = (x as u8)
                    .wrapping_mul(31)
                    .wrapping_add((y as u8).wrapping_mul(17))
                    .wrapping_add(seed);
                img.set(x, y, Rgb::new(v, v.wrapping_add(40), v.wrapping_add(80)));
            }
        }
        img
    }

    fn boot_daemon() -> Server {
        Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(SegmentPlan::default())
                .with_max_inflight(2)
                .with_cache(CacheConfig::with_capacity_mb(8)),
        )
        .unwrap()
    }

    fn fleet_config(servers: &[&Server]) -> ClientConfig {
        ClientConfig::fleet(servers.iter().map(|s| s.local_addr().to_string()))
    }

    #[test]
    fn fleet_routes_by_content_and_each_owner_cache_stays_hot() {
        let servers = [boot_daemon(), boot_daemon()];
        let mut fleet = FleetClient::open(&fleet_config(&[&servers[0], &servers[1]])).unwrap();
        let images: Vec<RgbImage> = (0..8).map(test_image).collect();
        let mut first: Vec<_> = Vec::new();
        for img in &images {
            let outcome = fleet.segment_cached(img, false).unwrap();
            assert!(!outcome.cached(), "first sight is a miss");
            first.push(outcome.unwrap_done().0);
        }
        // Second pass: every repeat hits, because routing pinned each image
        // to one daemon's cache.
        for (img, reference) in images.iter().zip(&first) {
            let outcome = fleet.segment_cached(img, false).unwrap();
            assert!(outcome.cached(), "repeat must hit its ring owner's cache");
            assert_eq!(outcome.unwrap_done().0, *reference);
        }
        let stats = fleet.stats();
        assert_eq!(stats.iter().map(|s| s.requests).sum::<u64>(), 16);
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), 8);
        assert_eq!(fleet.total_failovers(), 0);
        assert_eq!(fleet.shutdown_all(), 2);
        for server in servers {
            server.join();
        }
    }

    #[test]
    fn killing_one_daemon_degrades_to_failover_misses_not_errors() {
        let servers = vec![boot_daemon(), boot_daemon(), boot_daemon()];
        let config = fleet_config(&[&servers[0], &servers[1], &servers[2]]);
        let mut fleet = FleetClient::open(&config).unwrap();
        let images: Vec<RgbImage> = (0..12).map(test_image).collect();
        let mut reference = Vec::new();
        for img in &images {
            reference.push(fleet.segment_cached(img, false).unwrap().unwrap_done().0);
        }
        // Kill the daemon that owns at least one image.
        let ring = fleet.ring().clone();
        let victim = ring.owner(route_hash(&images[0]));
        let mut owned = 0;
        for img in &images {
            if ring.owner(route_hash(img)) == victim {
                owned += 1;
            }
        }
        assert!(owned >= 1);
        {
            let mut direct =
                Client::open(&ClientConfig::new(config.addrs[victim].clone())).unwrap();
            direct.shutdown().unwrap();
        }
        let mut servers: Vec<Option<Server>> = servers.into_iter().map(Some).collect();
        servers[victim].take().unwrap().join();
        // Every image still answers byte-identically; the victim's keys
        // come back as Failover (served by the next owner, cold there).
        let mut failovers = 0;
        for (img, want) in images.iter().zip(&reference) {
            let outcome = fleet.segment_cached(img, false).unwrap();
            let tried = outcome.tried();
            let (labels, _) = outcome.unwrap_done();
            assert_eq!(labels, *want, "failover replies stay byte-identical");
            if ring.owner(route_hash(img)) == victim {
                assert_eq!(tried, 1, "victim's keys skip exactly one endpoint");
                failovers += 1;
            } else {
                assert_eq!(tried, 0);
            }
        }
        assert_eq!(failovers, owned);
        assert_eq!(fleet.stats()[victim].failovers, owned as u64);
        assert!(fleet.stats()[victim].errors >= 1);
        fleet.shutdown_all();
        for server in servers.into_iter().flatten() {
            server.join();
        }
    }

    #[test]
    fn pipelined_fleet_bursts_reassemble_in_input_order_across_endpoints() {
        let servers = [boot_daemon(), boot_daemon()];
        let mut fleet = FleetClient::open(&fleet_config(&[&servers[0], &servers[1]])).unwrap();
        let images: Vec<RgbImage> = (0..10).map(test_image).collect();
        let refs: Vec<&RgbImage> = images.iter().collect();
        let first = fleet.segment_pipelined(&refs, true).unwrap();
        assert_eq!(first.len(), images.len());
        let again = fleet.segment_pipelined(&refs, true).unwrap();
        for (warm, cold) in again.iter().zip(&first) {
            assert!(warm.cached(), "second burst hits the owners' caches");
            assert_eq!(warm.labels(), cold.labels());
        }
        fleet.shutdown_all();
        for server in servers {
            server.join();
        }
    }

    #[test]
    fn pipelined_fleet_fails_over_when_an_endpoint_dies_between_bursts() {
        let servers = vec![boot_daemon(), boot_daemon(), boot_daemon()];
        let config = fleet_config(&[&servers[0], &servers[1], &servers[2]]);
        let mut fleet = FleetClient::open(&config).unwrap();
        let images: Vec<RgbImage> = (0..12).map(test_image).collect();
        let refs: Vec<&RgbImage> = images.iter().collect();
        let first = fleet.segment_pipelined(&refs, true).unwrap();
        let victim = fleet.ring().owner(route_hash(&images[0]));
        {
            let mut direct =
                Client::open(&ClientConfig::new(config.addrs[victim].clone())).unwrap();
            direct.shutdown().unwrap();
        }
        let mut servers: Vec<Option<Server>> = servers.into_iter().map(Some).collect();
        servers[victim].take().unwrap().join();
        let after = fleet.segment_pipelined(&refs, true).unwrap();
        let mut failovers = 0;
        for (outcome, want) in after.iter().zip(&first) {
            assert_eq!(outcome.labels(), want.labels(), "byte-identical after kill");
            if outcome.tried() > 0 {
                failovers += 1;
            }
        }
        assert!(failovers >= 1, "the victim owned at least images[0]");
        assert!(fleet.stats()[victim].failovers >= 1);
        fleet.shutdown_all();
        for server in servers.into_iter().flatten() {
            server.join();
        }
    }
}
