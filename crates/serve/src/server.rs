//! The TCP segmentation daemon.
//!
//! Two serving cores share one protocol, one warm [`SegmentPipeline`], and
//! one statistics block, selected by [`ServerConfig::mode`]:
//!
//! * [`ServeMode::Threads`] — one *acceptor* thread owns the listening
//!   socket and spawns one *connection* thread per client.  Each connection
//!   thread reads frames, executes them against the shared pipeline, and
//!   writes the reply before reading the next frame — requests on one
//!   connection are processed in order, while connections run concurrently.
//!   Concurrency across requests is bounded by
//!   [`ServerConfig::max_inflight`] via a small semaphore whose permit is
//!   taken only once a `Segment` frame has been fully read and decoded —
//!   never across a read, so a stalled peer cannot pin an execution slot.
//! * [`ServeMode::Evented`] (the default) — a small fixed set of reactor
//!   threads owns *all* connections on nonblocking sockets behind a
//!   `poll(2)` readiness loop (see the `evented` module), feeding complete
//!   frames through the sans-io [`crate::protocol::FrameDecoder`] to a
//!   worker pool of `max_inflight` threads, and queueing completion-order
//!   replies back through per-connection write buffers.  Per-connection
//!   cost is one buffered frame, not one OS thread — this is the mode that
//!   holds a thousand pipelined connections with flat memory.
//!
//! Shutdown is identical in both modes: a `Shutdown` frame (or
//! [`Server::shutdown_now`]) flips a flag, the server stops accepting, and
//! every connection finishes the frames already on the wire — a request
//! whose bytes reached the server is always answered — then closes once its
//! socket goes idle.  [`Server::join`] returns when the last connection has
//! drained.  Both modes also enforce the same per-frame read deadline
//! ([`ServerConfig::frame_deadline`]): once a frame has started, the rest of
//! it must arrive within the budget, so a client dripping bytes cannot pin
//! a connection (or the drain) forever.

use crate::protocol::{self, Header, Message, ProtocolError, HEADER_LEN};
use crate::stats::{ServerStats, StatsSnapshot};
use iqft_pipeline::{CacheConfig, PipelineConfig, SegmentPipeline, SnapshotError, SnapshotStats};
use iqft_seg::IqftClassifier;
use seg_engine::SegmentPlan;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle connection waits between checks of the shutdown flag.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(100);
/// After shutdown is signalled, how long a connection keeps listening for
/// frames already in flight before closing an idle socket.
pub(crate) const SHUTDOWN_GRACE: Duration = Duration::from_millis(200);
/// Once a frame's first byte has arrived, the *whole* rest of the frame must
/// arrive within this wall-clock budget — enforced as an overall deadline,
/// not a per-read timeout, so a client dripping one byte at a time cannot
/// keep a connection thread (and thus the drain) alive forever.  This is the
/// default for [`ServerConfig::frame_deadline`].
pub const FRAME_READ_DEADLINE: Duration = Duration::from_secs(10);
/// Per-read poll granularity while a frame deadline is in force.
const FRAME_POLL: Duration = Duration::from_millis(200);

/// Which serving core a [`Server`] runs (see the module docs for the
/// trade-off).  Both modes speak the same protocol, share the same pipeline
/// and statistics, and reply byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// One OS thread per connection; `max_inflight` enforced by a semaphore.
    Threads,
    /// Nonblocking readiness loop on a fixed reactor-thread count, with a
    /// `max_inflight`-sized worker pool.  On non-unix targets (no `poll(2)`)
    /// this silently falls back to [`ServeMode::Threads`].
    #[default]
    Evented,
}

impl ServeMode {
    /// The mode's CLI / stats spelling (`threads` | `evented`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ServeMode::Threads => "threads",
            ServeMode::Evented => "evented",
        }
    }
}

impl std::fmt::Display for ServeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ServeMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(ServeMode::Threads),
            "evented" => Ok(ServeMode::Evented),
            other => Err(format!(
                "unknown serve mode '{other}' (expected threads|evented)"
            )),
        }
    }
}

/// Tuning for a [`Server`].
///
/// Build one with [`ServerConfig::new`] and the chainable `with_*` setters —
/// struct-literal construction is discouraged so future knobs stop being
/// breaking changes:
///
/// ```no_run
/// use iqft_serve::{Server, ServerConfig, ServeMode};
/// use iqft_pipeline::CacheConfig;
///
/// let config = ServerConfig::new("classifier=table;tile=off;backend=serial".parse().unwrap())
///     .with_cache(CacheConfig::with_capacity_mb(64))
///     .with_mode(ServeMode::Evented)
///     .with_max_queue(32);
/// let server = Server::bind("127.0.0.1:0", config).unwrap();
/// # drop(server);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// The segmentation strategy (classifier × tiling × backend) the server
    /// materialises once and serves from.
    pub plan: SegmentPlan,
    /// Maximum concurrently-executing `Segment` requests across all
    /// connections (0 = the plan's effective thread count).
    pub max_inflight: usize,
    /// Content-addressed result cache for `SegmentCached` requests
    /// (default: disabled).  The cache key is salted with the plan spec, so
    /// a server never serves entries recorded under a different strategy.
    pub cache: CacheConfig,
    /// Which serving core to run (default: [`ServeMode::Evented`]).
    pub mode: ServeMode,
    /// Wall-clock budget for the rest of a frame once its first byte has
    /// arrived (default: [`FRAME_READ_DEADLINE`]).  Tests shrink this to
    /// exercise slow-loris handling without ten-second waits.
    pub frame_deadline: Duration,
    /// Admission limit: segment requests arriving while the worker pool is
    /// saturated *and* this many requests are already queued get an
    /// immediate typed `Busy` reply instead of queueing unboundedly
    /// (default 0 = unbounded queueing, the pre-admission behaviour).
    pub max_queue: usize,
    /// Startup-calibration summary to surface through Stats (empty when the
    /// plan was chosen explicitly rather than by `--plan auto`).
    pub calibration: String,
    /// Where to persist the result cache across restarts (default: `None`,
    /// no persistence).  On boot a snapshot at this path is warm-loaded —
    /// unless its salt (plan spec) or checksum disagrees, which is a clean
    /// cold start — and on a drain-then-stop shutdown the resident entries
    /// are written back.  Requires [`ServerConfig::cache`] to be enabled.
    pub cache_persist: Option<PathBuf>,
}

impl ServerConfig {
    /// A config serving `plan` with every other knob at its default.
    pub fn new(plan: SegmentPlan) -> Self {
        ServerConfig {
            plan,
            ..ServerConfig::default()
        }
    }

    /// Sets the result cache for `SegmentCached`/`SegmentDelta` requests.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Selects the serving core.
    pub fn with_mode(mut self, mode: ServeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the per-frame read deadline.
    pub fn with_frame_deadline(mut self, deadline: Duration) -> Self {
        self.frame_deadline = deadline;
        self
    }

    /// Sets the admission limit (0 = unbounded queueing).
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// Caps concurrently-executing segment requests (0 = the plan's
    /// effective thread count).
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight;
        self
    }

    /// Attaches a calibration summary for the Stats reply.
    pub fn with_calibration(mut self, calibration: String) -> Self {
        self.calibration = calibration;
        self
    }

    /// Persists the result cache to `path`: warm-load on boot, save on a
    /// drain-then-stop shutdown.
    pub fn with_cache_persist(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_persist = Some(path.into());
        self
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            plan: SegmentPlan::default(),
            max_inflight: 0,
            cache: CacheConfig::default(),
            mode: ServeMode::default(),
            frame_deadline: FRAME_READ_DEADLINE,
            max_queue: 0,
            calibration: String::new(),
            cache_persist: None,
        }
    }
}

/// A counting semaphore bounding concurrent segment requests (std-only),
/// with a waiter count so admission control can refuse instead of queueing.
#[derive(Debug)]
struct Gate {
    state: Mutex<GateState>,
    freed: Condvar,
}

#[derive(Debug)]
struct GateState {
    permits: usize,
    waiters: usize,
}

impl Gate {
    fn new(permits: usize) -> Self {
        Self {
            state: Mutex::new(GateState {
                permits: permits.max(1),
                waiters: 0,
            }),
            freed: Condvar::new(),
        }
    }

    /// Takes a permit; the returned guard gives it back on drop, so a panic
    /// while segmenting can never leak a permit and starve later requests.
    ///
    /// When every permit is taken and `max_queue` other requests are already
    /// waiting, returns `None` immediately — the admission-control rejection
    /// the caller turns into a typed `Busy` reply.  `max_queue == 0` means
    /// unbounded queueing (the pre-admission behaviour).
    fn acquire(&self, max_queue: usize) -> Option<GatePermit<'_>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.permits == 0 {
            if max_queue != 0 && state.waiters >= max_queue {
                return None;
            }
            state.waiters += 1;
            while state.permits == 0 {
                state = self.freed.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            state.waiters -= 1;
        }
        state.permits -= 1;
        Some(GatePermit(self))
    }

    fn release(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).permits += 1;
        self.freed.notify_one();
    }
}

struct GatePermit<'a>(&'a Gate);

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// State shared by every serving thread (acceptor + connection threads in
/// threads mode; reactors + workers in evented mode).
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) pipeline: SegmentPipeline<IqftClassifier>,
    plan: SegmentPlan,
    pub(crate) stats: ServerStats,
    gate: Gate,
    pub(crate) max_inflight: usize,
    /// Admission limit shared by both cores (0 = unbounded queueing).
    pub(crate) max_queue: usize,
    /// Segment jobs dispatched to the evented worker pool but not yet picked
    /// up — the evented core's admission gauge.
    pub(crate) queued_jobs: std::sync::atomic::AtomicUsize,
    /// Startup-calibration summary (empty when the plan was explicit).
    calibration: String,
    /// Result-cache persistence path (None = no persistence).
    cache_persist: Option<PathBuf>,
    /// What the boot-time warm load brought in (zero when persistence is off,
    /// the snapshot was absent, or it was rejected).
    warm_loaded: SnapshotStats,
    /// Why the boot-time warm load was rejected, if it was (a fresh boot
    /// with no snapshot yet is not an error and leaves this empty).
    warm_error: Option<String>,
    shutting_down: AtomicBool,
    started: Instant,
    addr: SocketAddr,
    /// The mode actually running (after any platform fallback).
    mode: ServeMode,
    pub(crate) frame_deadline: Duration,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    pub(crate) fn snapshot(&self, conn: &ConnStats) -> StatsSnapshot {
        let uptime_secs = self.started.elapsed().as_secs_f64();
        let pixels_total = self.stats.pixels_total();
        let cache = self
            .pipeline
            .cache()
            .map(|cache| cache.stats())
            .unwrap_or_default();
        let mut snapshot = StatsSnapshot {
            plan: self.plan.to_spec(),
            serve_mode: self.mode.as_str().to_string(),
            uptime_secs,
            connections_total: self.stats.connections_total(),
            connections_open: self.stats.connections_open(),
            requests_total: self.stats.requests_total(),
            segment_requests: self.stats.segment_requests(),
            pixels_total,
            mpix_per_sec: if uptime_secs > 0.0 {
                pixels_total as f64 / 1e6 / uptime_secs
            } else {
                0.0
            },
            protocol_errors: self.stats.protocol_errors(),
            arena_allocations: self.pipeline.arena().allocations(),
            arena_reuses: self.pipeline.arena().reuses(),
            arena_pooled: self.pipeline.arena().pooled(),
            max_inflight: self.max_inflight,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_entries: cache.entries,
            cache_bytes: cache.bytes,
            cache_capacity_bytes: cache.capacity_bytes,
            delta_tiles_hit: cache.tile_hits,
            delta_tiles_recomputed: cache.tile_recomputed,
            quant_fallback_pixels: self.pipeline.classifier().quant_fallback_pixels(),
            max_queue: self.max_queue,
            busy_rejections: self.stats.busy_rejections(),
            calibration: self.calibration.clone(),
            conn_requests: conn.requests,
            conn_pixels: conn.pixels,
            ..StatsSnapshot::default()
        };
        snapshot.set_latency(self.stats.latency_summary());
        // Persistence figures ride the forward-compat `extra` map: older
        // clients relay them untouched, newer ones read them through
        // `StatsSnapshot::extra_u64`.
        if self.cache_persist.is_some() {
            snapshot.extra.insert(
                "cache_warm_loaded_entries".to_string(),
                self.warm_loaded.entries.to_string(),
            );
            snapshot.extra.insert(
                "cache_warm_loaded_bytes".to_string(),
                self.warm_loaded.label_bytes.to_string(),
            );
            if let Some(why) = &self.warm_error {
                snapshot
                    .extra
                    .insert("cache_warm_error".to_string(), why.replace('\n', " "));
            }
        }
        snapshot
    }

    /// Writes the result cache back to the persistence path, if one is
    /// configured.  Runs exactly once, after the drain has finished (the
    /// acceptor has exited and every connection is joined), so the snapshot
    /// reflects the final resident set.  A failed save is best-effort: the
    /// next boot simply starts cold.
    fn persist_cache(&self) {
        if let (Some(path), Some(cache)) = (&self.cache_persist, self.pipeline.cache()) {
            let _ = cache.save_to(path);
        }
    }

    /// Flips the shutdown flag and pokes the (possibly blocked) acceptor
    /// with a throwaway loopback connection so it observes the flag.
    pub(crate) fn signal_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // A wildcard bind (0.0.0.0 / ::) is not itself connectable; poke
        // the loopback of the same family instead.  A failed poke just
        // means the listener is already gone.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&poke, Duration::from_secs(1));
    }
}

/// Per-connection counters (folded into the Stats reply for that client).
#[derive(Debug, Default)]
pub(crate) struct ConnStats {
    pub(crate) requests: usize,
    pub(crate) pixels: u64,
}

/// A running segmentation service bound to a TCP address.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), builds the
    /// warm pipeline for `config.plan`, and starts the acceptor thread.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let plan = config.plan;
        let pipeline = SegmentPipeline::new(plan.engine(), IqftClassifier::for_plan(&plan))
            .with_config(PipelineConfig {
                tiling: plan.tiling(),
                ..PipelineConfig::default()
            })
            .with_cache(config.cache, &plan.to_spec());
        let max_inflight = if config.max_inflight == 0 {
            plan.engine().threads()
        } else {
            config.max_inflight
        };
        // `poll(2)` only exists on unix; elsewhere the evented request
        // silently degrades to the thread-per-connection core, which speaks
        // the identical protocol.
        let mode = if cfg!(unix) {
            config.mode
        } else {
            ServeMode::Threads
        };
        // Warm-load a persisted cache snapshot before the first connection
        // is accepted, so the very first request can already hit.  Any
        // defect in the snapshot — truncation, corruption, a different
        // plan's salt — is a clean cold start, never a bind failure and
        // never a wrong label.  A simply-absent snapshot (first boot) is
        // not an error.
        let mut warm_loaded = SnapshotStats::default();
        let mut warm_error = None;
        if let (Some(path), Some(cache)) = (&config.cache_persist, pipeline.cache()) {
            match cache.load_from(path, pipeline.arena()) {
                Ok(stats) => warm_loaded = stats,
                Err(SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {}
                Err(err) => warm_error = Some(err.to_string()),
            }
        }
        let shared = Arc::new(Shared {
            pipeline,
            plan,
            stats: ServerStats::new(),
            gate: Gate::new(max_inflight),
            max_inflight,
            max_queue: config.max_queue,
            queued_jobs: std::sync::atomic::AtomicUsize::new(0),
            calibration: config.calibration,
            cache_persist: config.cache_persist,
            warm_loaded,
            warm_error,
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            addr,
            mode,
            frame_deadline: config.frame_deadline,
        });
        let acceptor = match mode {
            ServeMode::Threads => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("iqft-serve-acceptor".to_string())
                        .spawn(move || accept_loop(listener, shared))?,
                )
            }
            #[cfg(unix)]
            ServeMode::Evented => Some(crate::evented::spawn(listener, Arc::clone(&shared))?),
            #[cfg(not(unix))]
            ServeMode::Evented => unreachable!("evented mode is gated to unix above"),
        };
        Ok(Server { shared, acceptor })
    }

    /// The serving core actually running (after any platform fallback).
    pub fn mode(&self) -> ServeMode {
        self.shared.mode
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The plan the server is executing.
    pub fn plan(&self) -> SegmentPlan {
        self.shared.plan
    }

    /// Effective cap on concurrently-executing segment requests.
    pub fn max_inflight(&self) -> usize {
        self.shared.max_inflight
    }

    /// Whether a shutdown has been requested (by frame or locally).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Total frames handled so far (for post-shutdown reporting).
    pub fn requests_total(&self) -> usize {
        self.shared.stats.requests_total()
    }

    /// Total pixels segmented so far (for post-shutdown reporting).
    pub fn pixels_total(&self) -> u64 {
        self.shared.stats.pixels_total()
    }

    /// Triggers the same drain-then-stop shutdown a `Shutdown` frame does.
    pub fn shutdown_now(&self) {
        self.shared.signal_shutdown();
    }

    /// Blocks until the server has fully drained and stopped: the acceptor
    /// has exited and every connection thread has been joined.
    pub fn join(self) {
        let _ = self.join_with_counters();
    }

    /// What the boot-time warm load brought in: `(entries, label_bytes)`.
    /// Zero unless the server was configured with a persistence path and a
    /// valid matching snapshot existed.
    pub fn cache_warm_loaded(&self) -> (usize, usize) {
        (
            self.shared.warm_loaded.entries,
            self.shared.warm_loaded.label_bytes,
        )
    }

    /// Like [`Server::join`], but returns the final
    /// `(requests_total, pixels_total)` counters observed after the drain —
    /// what a supervising CLI prints as its exit summary.
    pub fn join_with_counters(mut self) -> (usize, u64) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
            self.shared.persist_cache();
        }
        (
            self.shared.stats.requests_total(),
            self.shared.stats.pixels_total(),
        )
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped server must not leak a live acceptor blocked in accept().
        if let Some(handle) = self.acceptor.take() {
            self.shared.signal_shutdown();
            let _ = handle.join();
            self.shared.persist_cache();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let draining = shared.shutting_down();
                // A connection accepted during shutdown may be a real client
                // that raced the poke and already has a frame on the wire —
                // serve it (drain semantics answer anything that arrived and
                // close once idle); the poke itself just EOFs immediately.
                spawn_connection(stream, &shared, &mut connections);
                if draining {
                    break;
                }
                // Reap handles of connections that already finished, so a
                // long-lived daemon's handle list tracks *live* connections
                // instead of growing with every client ever served.
                connections.retain(|handle| !handle.is_finished());
            }
            Err(_) => {
                if shared.shutting_down() {
                    break;
                }
                // Transient accept errors (e.g. ECONNABORTED) are not
                // fatal, but persistent ones (e.g. EMFILE) would otherwise
                // hot-loop the acceptor at 100% CPU — back off briefly.
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        }
    }
    // Serve whatever was already queued in the accept backlog at shutdown,
    // so a client that connected just before the flag flipped is answered
    // rather than silently dropped.
    if listener.set_nonblocking(true).is_ok() {
        while let Ok((stream, _peer)) = listener.accept() {
            spawn_connection(stream, &shared, &mut connections);
        }
    }
    drop(listener);
    // Drain: every connection finishes its in-flight frames before we stop.
    for handle in connections {
        let _ = handle.join();
    }
}

/// Drop-guard so the open-connection gauge stays correct even if the
/// connection thread unwinds.
struct OpenConn<'a>(&'a ServerStats);

impl Drop for OpenConn<'_> {
    fn drop(&mut self) {
        self.0.connection_closed();
    }
}

fn spawn_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    connections: &mut Vec<JoinHandle<()>>,
) {
    let shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name("iqft-serve-conn".to_string())
        .spawn(move || {
            shared.stats.connection_opened();
            let _open = OpenConn(&shared.stats);
            let _ = serve_connection(stream, &shared);
        });
    if let Ok(handle) = handle {
        connections.push(handle);
    }
}

/// Outcome of waiting for the first byte of the next frame.
enum FirstByte {
    Byte(u8),
    TimedOut,
    Eof,
}

fn wait_first_byte(stream: &mut TcpStream, wait: Duration) -> io::Result<FirstByte> {
    stream.set_read_timeout(Some(wait))?;
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => Ok(FirstByte::Eof),
        Ok(_) => Ok(FirstByte::Byte(byte[0])),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Ok(FirstByte::TimedOut)
        }
        Err(e) => Err(e),
    }
}

/// `read_exact` bounded by an overall wall-clock `deadline` (enforced across
/// reads, so progress cannot reset the budget the way a per-read timeout
/// would).
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> io::Result<()> {
    stream.set_read_timeout(Some(FRAME_POLL))?;
    let mut filled = 0;
    while filled < buf.len() {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "frame read deadline exceeded",
            ));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    // Backlog-drained sockets may inherit the listener's non-blocking mode
    // on some platforms; the read-timeout machinery below needs blocking.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let mut conn = ConnStats::default();
    loop {
        let draining = shared.shutting_down();
        let wait = if draining {
            SHUTDOWN_GRACE
        } else {
            POLL_INTERVAL
        };
        let first = match wait_first_byte(&mut stream, wait)? {
            FirstByte::Byte(byte) => byte,
            FirstByte::Eof => break,
            FirstByte::TimedOut => {
                if draining {
                    break;
                }
                continue;
            }
        };
        match handle_frame(first, &mut stream, shared, &mut conn) {
            Ok(keep_open) => {
                if !keep_open {
                    break;
                }
            }
            // Reply was unsendable or the frame unreadable at the transport
            // level: nothing more to do for this client.
            Err(ProtocolError::Io(e)) => return Err(e),
            Err(_) => break,
        }
    }
    Ok(())
}

/// Reads the remainder of one frame (whose first byte is `first`), executes
/// it, and writes the reply.  Returns whether the connection stays open.
///
/// Malformed frames get a best-effort [`Message::Error`] reply (with request
/// id 0 if the header never parsed) and close the connection, since framing
/// may be lost.
fn handle_frame(
    first: u8,
    stream: &mut TcpStream,
    shared: &Shared,
    conn: &mut ConnStats,
) -> Result<bool, ProtocolError> {
    // A frame has started: each phase of it (header, then payload) must
    // arrive within its own wall-clock deadline, so a half-sent or dripped
    // frame cannot hang the drain forever.
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    read_exact_deadline(
        stream,
        &mut header[1..],
        Instant::now() + shared.frame_deadline,
    )?;
    shared.stats.request();
    conn.requests += 1;
    let header = match protocol::parse_header(&header) {
        Ok(parsed) => parsed,
        Err(err) => {
            shared.stats.protocol_error();
            // If the magic matched, the id field's offset is shared by every
            // protocol version — echo it so e.g. a v1 client can correlate
            // the typed version error with its request.  Otherwise the
            // stream is not speaking this protocol at all; echo 0.
            let id = if header[0..4] == protocol::MAGIC {
                u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"))
            } else {
                0
            };
            reply_error(stream, id, &err);
            return Ok(false);
        }
    };
    // (Allocation bounded by MAX_PAYLOAD_BYTES; parse_header checked.)
    let mut payload = vec![0u8; header.payload_len];
    read_exact_deadline(stream, &mut payload, Instant::now() + shared.frame_deadline)?;
    let message = match protocol::decode_body(header.op, &payload) {
        Ok(message) => message,
        Err(err) => {
            shared.stats.protocol_error();
            reply_error(stream, header.request_id, &err);
            return Ok(false);
        }
    };
    // The execution permit is taken only once the whole frame has been
    // buffered and decoded — never across a read.  A peer stalling
    // mid-payload therefore burns its own frame deadline, not a
    // `max_inflight` slot, and can never delay replies on healthy
    // connections.  The permit is held through execution and released when
    // this function returns.
    let _permit = if matches!(
        header.op,
        protocol::Op::Segment | protocol::Op::SegmentCached | protocol::Op::SegmentDelta
    ) {
        match shared.gate.acquire(shared.max_queue) {
            Some(permit) => Some(permit),
            None => {
                // Admission refused: the pool and the queue are both full.
                // Count before the reply ships, answer with the typed Busy
                // frame, and keep the connection open — the request was
                // well-formed and may be retried.
                shared.stats.busy_rejection();
                protocol::write_message(stream, header.request_id, &Message::Busy)?;
                return Ok(true);
            }
        }
    } else {
        None
    };
    execute(stream, shared, conn, header, message)
}

fn reply_error(stream: &mut TcpStream, request_id: u64, err: &ProtocolError) {
    let _ = protocol::write_message(
        stream,
        request_id,
        &Message::Error {
            message: err.to_string(),
        },
    );
}

fn execute(
    stream: &mut TcpStream,
    shared: &Shared,
    conn: &mut ConnStats,
    header: Header,
    message: Message,
) -> Result<bool, ProtocolError> {
    match message {
        Message::Segment { image } => {
            // The caller (handle_frame) already holds the gate permit.
            let started = Instant::now();
            let labels = shared.pipeline.segment_request(&image);
            // Count the work before the reply ships, so a client that has
            // its reply in hand can never read a stale snapshot.
            shared.stats.record_latency(started.elapsed());
            shared.stats.segmented(labels.len());
            conn.pixels += labels.len() as u64;
            let reply = Message::SegmentReply { labels };
            let result = protocol::write_message(stream, header.request_id, &reply);
            // Reply bytes are on the wire (or the connection is dead); either
            // way the buffer can go back to the arena for the next request.
            if let Message::SegmentReply { labels } = reply {
                shared.pipeline.recycle(labels);
            }
            result?;
            Ok(true)
        }
        Message::SegmentCached { image, bypass } => {
            // Same shape as Segment, but routed through the result cache:
            // a hit is a hash + memcpy, a miss segments and stores a copy.
            let started = Instant::now();
            let (labels, cached) = shared.pipeline.segment_request_cached(&image, bypass);
            shared.stats.record_latency(started.elapsed());
            shared.stats.segmented(labels.len());
            conn.pixels += labels.len() as u64;
            let reply = Message::SegmentCachedReply { labels, cached };
            let result = protocol::write_message(stream, header.request_id, &reply);
            if let Message::SegmentCachedReply { labels, .. } = reply {
                shared.pipeline.recycle(labels);
            }
            result?;
            Ok(true)
        }
        Message::SegmentDelta { image } => {
            // Per-tile variant of SegmentCached: unchanged tiles are stitched
            // from cached label tiles, changed tiles are re-classified.
            let started = Instant::now();
            let (labels, tiles_hit, tiles_recomputed) =
                shared.pipeline.segment_request_delta(&image);
            shared.stats.record_latency(started.elapsed());
            shared.stats.segmented(labels.len());
            conn.pixels += labels.len() as u64;
            let reply = Message::SegmentDeltaReply {
                labels,
                tiles_hit,
                tiles_recomputed,
            };
            let result = protocol::write_message(stream, header.request_id, &reply);
            if let Message::SegmentDeltaReply { labels, .. } = reply {
                shared.pipeline.recycle(labels);
            }
            result?;
            Ok(true)
        }
        Message::Ping => {
            protocol::write_message(stream, header.request_id, &Message::Pong)?;
            Ok(true)
        }
        Message::Stats => {
            let text = shared.snapshot(conn).to_text();
            protocol::write_message(stream, header.request_id, &Message::StatsReply { text })?;
            Ok(true)
        }
        Message::Shutdown => {
            protocol::write_message(stream, header.request_id, &Message::ShutdownReply)?;
            shared.signal_shutdown();
            Ok(false)
        }
        // A reply op arriving as a request is a protocol violation; say so
        // precisely (the op *is* known, it is just not a request).
        other => {
            shared.stats.protocol_error();
            let _ = protocol::write_message(
                stream,
                header.request_id,
                &Message::Error {
                    message: format!(
                        "{} is a reply op and cannot be sent as a request",
                        other.name()
                    ),
                },
            );
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use imaging::{Rgb, RgbImage};
    use seg_engine::{ClassifierKind, SegmentEngine, Tiling};
    use std::io::Write;
    use std::path::Path;

    fn test_image(seed: u8) -> RgbImage {
        RgbImage::from_fn(31, 17, move |x, y| {
            Rgb::new(
                (x * 7 + seed as usize) as u8,
                (y * 11) as u8,
                ((x + y) * 5) as u8,
            )
        })
    }

    fn open_client(addr: SocketAddr) -> io::Result<Client> {
        Client::open(&crate::client::ClientConfig::new(addr.to_string()))
    }

    #[test]
    fn ephemeral_server_serves_ping_segment_stats_and_drains() {
        let plan = SegmentPlan::default().with_tiling(Tiling::Tiles {
            width: 16,
            height: 16,
        });
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(plan)
                .with_max_inflight(2)
                .with_max_queue(7),
        )
        .unwrap();
        assert_eq!(server.max_inflight(), 2);
        assert_eq!(server.plan(), plan);
        assert!(!server.is_shutting_down());

        let mut client = open_client(server.local_addr()).unwrap();
        client.ping().unwrap();
        let img = test_image(3);
        let (labels, _) = client.segment(&img).unwrap().unwrap_done();
        let expected = SegmentEngine::serial()
            .segment_rgb(&IqftClassifier::paper_default(ClassifierKind::Exact), &img);
        assert_eq!(labels, expected);

        let stats = client.stats().unwrap();
        assert_eq!(stats.segment_requests, 1);
        assert_eq!(stats.pixels_total, img.len() as u64);
        assert_eq!(stats.conn_requests, 3, "ping + segment + stats");
        assert_eq!(stats.max_inflight, 2);
        assert_eq!(stats.max_queue, 7);
        assert_eq!(stats.busy_rejections, 0);
        assert_eq!(stats.plan, plan.to_spec());
        assert_eq!(stats.lat_count, 1, "one segment = one latency sample");
        assert!(stats.lat_p50_us <= stats.lat_max_us);

        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn cached_requests_hit_after_first_miss_and_stats_report_it() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(SegmentPlan::default())
                .with_max_inflight(2)
                .with_cache(CacheConfig::with_capacity_mb(8)),
        )
        .unwrap();
        let mut client = open_client(server.local_addr()).unwrap();
        let img = test_image(5);
        let expected = SegmentEngine::serial()
            .segment_rgb(&IqftClassifier::paper_default(ClassifierKind::Exact), &img);
        let (first, hit) = client.segment_cached(&img, false).unwrap().unwrap_done();
        assert!(!hit, "cold cache misses");
        assert_eq!(first, expected);
        let (second, hit) = client.segment_cached(&img, false).unwrap().unwrap_done();
        assert!(hit, "warm cache hits");
        assert_eq!(second, expected, "hit is byte-identical to a fresh pass");
        // Bypass skips the cache but still answers identically.
        let (third, hit) = client.segment_cached(&img, true).unwrap().unwrap_done();
        assert!(!hit);
        assert_eq!(third, expected);
        let stats = client.stats().unwrap();
        assert_eq!(stats.cache_hits, 1, "{stats:?}");
        assert_eq!(stats.cache_misses, 1, "{stats:?}");
        assert_eq!(stats.cache_entries, 1);
        assert_eq!(stats.cache_capacity_bytes, 8 << 20);
        assert!(stats.cache_bytes > 0);
        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn restarted_server_serves_warm_hits_from_a_persisted_cache() {
        let dir = std::env::temp_dir().join("iqft-serve-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("restart-{}.snap", std::process::id()));
        std::fs::remove_file(&path).ok();
        let config = || {
            ServerConfig::new(SegmentPlan::default())
                .with_max_inflight(2)
                .with_cache(CacheConfig::with_capacity_mb(8))
                .with_cache_persist(&path)
        };

        // First life: populate the cache and drain (which saves).
        let server = Server::bind("127.0.0.1:0", config()).unwrap();
        assert_eq!(server.cache_warm_loaded(), (0, 0), "first boot is cold");
        let mut client = open_client(server.local_addr()).unwrap();
        let img = test_image(9);
        let (first, hit) = client.segment_cached(&img, false).unwrap().unwrap_done();
        assert!(!hit);
        let stats = client.stats().unwrap();
        assert_eq!(stats.extra_u64("cache_warm_loaded_entries"), Some(0));
        client.shutdown().unwrap();
        server.join();
        assert!(path.exists(), "drain-then-stop wrote the snapshot");

        // Second life: the very first request must hit the warm-loaded
        // entry and answer byte-identically.
        let server = Server::bind("127.0.0.1:0", config()).unwrap();
        let (entries, bytes) = server.cache_warm_loaded();
        assert_eq!(entries, 1);
        assert_eq!(bytes, img.len() * 4);
        let mut client = open_client(server.local_addr()).unwrap();
        let (second, hit) = client.segment_cached(&img, false).unwrap().unwrap_done();
        assert!(hit, "first post-restart request is a warm hit");
        assert_eq!(second, first, "warm hit is byte-identical");
        let stats = client.stats().unwrap();
        assert_eq!(stats.extra_u64("cache_warm_loaded_entries"), Some(1));
        assert_eq!(
            stats.extra_u64("cache_warm_loaded_bytes"),
            Some(img.len() as u64 * 4)
        );
        assert!(stats.extra_u64("cache_warm_error").is_none());
        client.shutdown().unwrap();
        server.join();

        // Third life under a *different plan*: the salt mismatch is a clean
        // cold start, surfaced through the stats extras — never a wrong
        // label served from a foreign snapshot.
        let other_plan: SegmentPlan = "classifier=simd;tile=off;backend=serial".parse().unwrap();
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(other_plan)
                .with_max_inflight(2)
                .with_cache(CacheConfig::with_capacity_mb(8))
                .with_cache_persist(&path),
        )
        .unwrap();
        assert_eq!(server.cache_warm_loaded(), (0, 0));
        let mut client = open_client(server.local_addr()).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.extra_u64("cache_warm_loaded_entries"), Some(0));
        assert!(
            stats
                .extra
                .get("cache_warm_error")
                .is_some_and(|why| why.contains("salt")),
            "{:?}",
            stats.extra
        );
        let (_, hit) = client.segment_cached(&img, false).unwrap().unwrap_done();
        assert!(!hit, "foreign snapshot never produces a hit");
        client.shutdown().unwrap();
        server.join();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gate_admission_refuses_only_past_the_queue_limit() {
        let gate = Arc::new(Gate::new(1));
        let held = gate.acquire(1).expect("free permit admits immediately");
        // One request may wait in the queue (max_queue = 1)…
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.acquire(1).is_some())
        };
        while gate.state.lock().unwrap().waiters == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // …but a second is refused instead of queueing unboundedly.
        assert!(gate.acquire(1).is_none(), "pool + queue saturated → Busy");
        // Unbounded mode (max_queue = 0) would still queue; verify it does
        // not refuse by checking the waiter count path is the only gate.
        drop(held);
        assert!(waiter.join().unwrap(), "queued request ran after release");
        // Pool free again: admission succeeds with the same limit.
        drop(gate.acquire(1).expect("released permit re-admits"));
    }

    #[test]
    fn config_builder_chains_every_knob() {
        let plan = SegmentPlan::default().with_classifier(ClassifierKind::Simd);
        let config = ServerConfig::new(plan)
            .with_cache(CacheConfig::with_capacity_mb(4))
            .with_mode(ServeMode::Threads)
            .with_frame_deadline(Duration::from_secs(3))
            .with_max_queue(9)
            .with_max_inflight(5)
            .with_calibration("cores=2;probes=3".to_string())
            .with_cache_persist("/tmp/iqft-cache.snap");
        assert_eq!(config.plan, plan);
        assert_eq!(config.cache, CacheConfig::with_capacity_mb(4));
        assert_eq!(config.mode, ServeMode::Threads);
        assert_eq!(config.frame_deadline, Duration::from_secs(3));
        assert_eq!(config.max_queue, 9);
        assert_eq!(config.max_inflight, 5);
        assert_eq!(config.calibration, "cores=2;probes=3");
        assert_eq!(
            config.cache_persist.as_deref(),
            Some(Path::new("/tmp/iqft-cache.snap"))
        );
        assert_eq!(ServerConfig::new(plan).max_queue, 0, "default: unbounded");
    }

    #[test]
    fn calibration_summary_travels_through_stats() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::default().with_calibration("cores=1;probes=4;exhausted=0".to_string()),
        )
        .unwrap();
        let mut client = open_client(server.local_addr()).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.calibration, "cores=1;probes=4;exhausted=0");
        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn dropped_server_does_not_leak_its_acceptor() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        drop(server); // Drop joins the acceptor; a hang here fails the test.
        assert!(
            open_client(addr).is_err() || {
                // The OS may briefly accept on the dead listener's backlog; a
                // subsequent request must still fail.
                let mut c = open_client(addr).unwrap();
                c.ping().is_err()
            }
        );
    }

    #[test]
    fn garbage_frames_get_an_error_reply_not_a_crash() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        stream.write_all(&[0u8; 16]).unwrap();
        let (id, reply) = protocol::read_message(&mut stream).unwrap();
        assert_eq!(id, 0, "header never parsed, so the error echoes id 0");
        assert!(
            matches!(reply, Message::Error { ref message } if message.contains("magic")),
            "{reply:?}"
        );
        // A well-formed frame carrying a reply op is diagnosed precisely.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(&protocol::encode_message(5, &Message::Pong).unwrap())
            .unwrap();
        let (id, reply) = protocol::read_message(&mut stream).unwrap();
        assert_eq!(id, 5);
        assert!(
            matches!(reply, Message::Error { ref message } if message.contains("reply op")),
            "{reply:?}"
        );
        // The server survives and still serves fresh connections.
        let mut client = open_client(server.local_addr()).unwrap();
        client.ping().unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.protocol_errors, 2, "bad magic + reply-op request");
        server.shutdown_now();
        server.join();
    }
}
