#![warn(missing_docs)]
//! `iqft-serve` — a TCP segmentation service on top of the warm pipeline.
//!
//! Everything the earlier layers earned — the `PhaseTable` fast path, the
//! [`iqft_pipeline::LabelArena`] recycling pool, tiled fan-out — was only
//! reachable in-process.  This crate puts a long-lived daemon in front of it:
//! a [`Server`] owns one [`seg_engine::SegmentPlan`] and one warm
//! [`iqft_pipeline::SegmentPipeline`], and serves concurrent clients over a
//! hand-rolled, length-prefixed binary protocol ([`protocol`]) built purely
//! on `std::net` — the workspace is offline, so there are no external
//! dependencies to lean on.
//!
//! * [`protocol`] — the wire format (version 2): 20-byte header (magic,
//!   version, op, request id, payload length) + checked payload.  A
//!   malformed frame can never allocate unbounded memory and never panics
//!   the peer; a v1 frame gets a typed version error.  The incremental
//!   sans-io core ([`FrameDecoder`] / [`FrameEncoder`]) does the same
//!   parsing with no I/O inside, which is what both serve modes (and the
//!   socket-free protocol test suite) are built on.
//! * [`Server`] — one warm pipeline behind a choice of serving cores
//!   ([`ServeMode`]): the classic thread-per-connection mode, or the
//!   default *evented* mode — a nonblocking readiness loop over `poll(2)`
//!   ([`poll`]) where a small fixed set of reactor threads owns every
//!   connection and dispatches segment work to a bounded worker pool, so a
//!   thousand-plus pipelined connections cost buffers, not threads.  Both
//!   modes share an opt-in content-addressed result cache
//!   ([`ServerConfig::cache`]) answering repeated `SegmentCached` requests
//!   with a memcpy, per-connection and aggregate [`ServerStats`], per-frame
//!   read deadlines ([`ServerConfig::frame_deadline`]) and graceful
//!   drain-then-stop shutdown (in-flight requests are answered).
//! * [`Client`] — the synchronous request/response side, built from a
//!   [`ClientConfig`] (endpoints, pipeline depth, deadlines, retry-on-`Busy`
//!   backoff): `ping`, `segment`, `segment_cached`, `segment_pipelined` (up
//!   to [`protocol::MAX_PIPELINE_DEPTH`] requests in flight, replies
//!   reordered by id), `stats`, `shutdown`.  Every segmentation call
//!   reports one [`SegmentOutcome`] vocabulary: `Done | Busy | Failover`.
//! * [`fleet`] — the multi-daemon layer: a [`FleetClient`] routes requests
//!   by content hash over a deterministic consistent-hash ring
//!   ([`HashRing`], virtual nodes) so each daemon's cache owns a stable
//!   slice of the key space, failing over to the next ring owner (with
//!   typed per-endpoint accounting, [`EndpointStats`]) when a daemon dies
//!   or drains.
//!
//! The `iqft-experiments` binary exposes both ends as subcommands:
//! `serve --addr … --classifier … --tile … --backend … --workers …
//! --cache-mb …` boots the daemon, and `loadgen --addr … --clients C
//! --images N --pipeline K --repeat-ratio R` drives concurrent (optionally
//! repeated and pipelined) traffic with default-on byte-identity
//! verification against a local [`seg_engine::SegmentEngine`] pass.
//!
//! # Example
//!
//! ```
//! use imaging::{Rgb, RgbImage, Segmenter};
//! use iqft_serve::{Client, ClientConfig, Server, ServerConfig};
//!
//! // Boot a server on an ephemeral loopback port.
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! // Segment over the wire; the result is byte-identical to a local pass.
//! let img = RgbImage::from_fn(24, 16, |x, y| Rgb::new((x * 10) as u8, (y * 12) as u8, 80));
//! let config = ClientConfig::new(server.local_addr().to_string());
//! let mut client = Client::open(&config).unwrap();
//! let (remote, _) = client.segment(&img).unwrap().unwrap_done();
//! let local = iqft_seg::IqftRgbSegmenter::paper_default().segment_rgb(&img);
//! assert_eq!(remote, local);
//!
//! // Drain and stop.
//! client.shutdown().unwrap();
//! server.join();
//! ```

pub mod client;
#[cfg(unix)]
mod evented;
pub mod fleet;
#[cfg(unix)]
pub mod poll;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{Client, ClientConfig, SegmentOutcome, ServeError};
pub use fleet::{EndpointStats, FleetClient, HashRing};
pub use iqft_pipeline::CacheConfig;
pub use protocol::{Frame, FrameDecoder, FrameEncoder, Message, Op, ProtocolError};
pub use server::{ServeMode, Server, ServerConfig};
pub use stats::{ServerStats, StatsSnapshot};
