//! `iqft-experiments` — CLI that regenerates every table and figure of the
//! reproduced paper.
//!
//! ```text
//! iqft-experiments <subcommand> [options]
//!
//! Subcommands:
//!   table1                     θ ↔ threshold values (paper Table I)
//!   table2  [--samples N]      θ ↔ max segment count (paper Table II)
//!   table3  [--voc N] [--xview N] [--size S] [--seed S]
//!                              mIOU / runtime comparison (paper Table III)
//!   fig1-3                     worked example: patterns and probabilities
//!   fig4    [--out DIR]        multiple thresholding on the balls scene
//!   fig5    [--out DIR]        normalisation ablation
//!   fig6    [--out DIR]        θ sweep on real scenes
//!   fig7    [--out DIR]        Otsu ↔ θ equivalence
//!   fig8    [--out DIR]        qualitative wins (VOC-like)
//!   fig9    [--out DIR]        qualitative wins (xVIEW2-like)
//!   fig10                      per-image θ adjustment
//!   throughput [--images N] [--batch B] [--size S] [--seed S]
//!              [--classifier exact|lut|table|quant|simd] [--tile WxH]
//!              [--plan SPEC|auto] [--cache-mb M] [--video]
//!              [--change-rate R] [--no-verify]
//!                              batched pipeline service workload
//!                              (--tile splits images into tile jobs;
//!                              --plan takes a whole classifier=…;tile=…;
//!                              backend=… spec, or `auto` to probe the host
//!                              and take the fastest measured plan;
//!                              --cache-mb attaches the result cache and
//!                              runs the per-request serving path; --video
//!                              streams synthetic video through the
//!                              per-tile delta path, mutating a fraction
//!                              --change-rate of each frame's blocks)
//!   serve   [--addr A] [--classifier C] [--tile T] [--plan SPEC|auto]
//!           [--workers W] [--max-queue Q]
//!           [--serve-mode threads|evented] [--cache-mb M] [--addr-file PATH]
//!           [--cache-persist PATH]
//!                              boot the iqft-serve TCP daemon and block
//!                              until a client sends Shutdown; --addr-file
//!                              records the bound (possibly ephemeral) port;
//!                              --plan auto calibrates the plan at boot (the
//!                              evidence is surfaced through Stats);
//!                              --max-queue bounds waiting segment requests
//!                              (0 = unbounded) — saturated admission gets a
//!                              typed Busy reply instead of queueing;
//!                              --serve-mode picks the serving core (default
//!                              evented: a nonblocking reactor loop that
//!                              holds 1000+ pipelined connections);
//!                              --cache-persist warm-loads the result cache
//!                              from a snapshot on boot and writes it back
//!                              on a drain-then-stop shutdown
//!   loadgen [--addr A] [--clients C] [--images N] [--size S] [--seed S]
//!           [--plan SPEC|auto] [--repeat-ratio R] [--pipeline K]
//!           [--expect-cache-hits] [--video] [--change-rate R]
//!           [--fleet A,A,...] [--kill-one] [--no-verify] [--shutdown]
//!                              drive concurrent clients against a running
//!                              daemon (byte-identity verified by default;
//!                              --plan picks the local reference pass's
//!                              plan — labels are identical either way;
//!                              --repeat-ratio generates Zipf-ish repeated
//!                              traffic, --pipeline keeps K requests in
//!                              flight per connection; --video streams each
//!                              client's own synthetic video through the
//!                              per-tile delta op; typed Busy rejections
//!                              from an admission-bounded server are
//!                              counted, not fatal; --fleet routes by
//!                              content hash over a consistent-hash ring of
//!                              daemons, failing over when one dies;
//!                              --kill-one boots a three-daemon in-process
//!                              fleet and kills one mid-run to prove
//!                              graceful degradation)
//!   ping    [--addr A] [--retries N]
//!                              readiness probe with bounded retries
//!   all     [--out DIR]        everything above with reduced sizes
//!
//! Global options:
//!   --backend serial|threads|rayon   execution backend for every experiment
//!                                    (default: threads)
//!   --threads N                      worker threads for the threads backend
//!                                    (default: 0 = one per core)
//! ```
//!
//! Label maps and scores are byte-identical across backends; the knob only
//! changes how the work is scheduled.

use experiments::figures;
use experiments::service::{self, LoadgenConfig, ServeCliConfig};
use experiments::tables::{self, Table3Config};
use experiments::throughput::{self, ThroughputConfig};
use experiments::SegmentEngine;
use std::path::PathBuf;

struct Args {
    command: String,
    out_dir: Option<PathBuf>,
    samples: usize,
    voc: usize,
    xview: usize,
    size: usize,
    seed: u64,
    backend: String,
    threads: usize,
    images: usize,
    batch: usize,
    classifier: String,
    tile: String,
    plan: String,
    max_queue: usize,
    verify: bool,
    addr: String,
    clients: usize,
    workers: usize,
    serve_mode: String,
    shutdown: bool,
    cache_mb: usize,
    repeat_ratio: f64,
    pipeline: usize,
    expect_cache_hits: bool,
    video: bool,
    change_rate: f64,
    addr_file: Option<PathBuf>,
    cache_persist: Option<PathBuf>,
    fleet: Vec<String>,
    kill_one: bool,
    retries: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        out_dir: None,
        samples: 100_000,
        voc: 200,
        xview: 148,
        size: 160,
        seed: 42,
        backend: "threads".to_string(),
        threads: 0,
        images: 64,
        batch: 16,
        classifier: "table".to_string(),
        tile: "off".to_string(),
        plan: String::new(),
        max_queue: 0,
        verify: true,
        addr: "127.0.0.1:7870".to_string(),
        clients: 4,
        workers: 0,
        serve_mode: "evented".to_string(),
        shutdown: false,
        cache_mb: 0,
        repeat_ratio: 0.0,
        pipeline: 1,
        expect_cache_hits: false,
        video: false,
        change_rate: 0.1,
        addr_file: None,
        cache_persist: None,
        fleet: Vec::new(),
        kill_one: false,
        retries: 40,
    };
    let mut iter = std::env::args().skip(1);
    if let Some(cmd) = iter.next() {
        args.command = cmd;
    }
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().unwrap_or_default();
        match flag.as_str() {
            "--out" => args.out_dir = Some(PathBuf::from(value())),
            "--samples" => args.samples = value().parse().unwrap_or(args.samples),
            "--voc" => args.voc = value().parse().unwrap_or(args.voc),
            "--xview" => args.xview = value().parse().unwrap_or(args.xview),
            "--size" => args.size = value().parse().unwrap_or(args.size),
            "--seed" => args.seed = value().parse().unwrap_or(args.seed),
            "--backend" => args.backend = value(),
            "--threads" => args.threads = value().parse().unwrap_or(args.threads),
            "--images" => args.images = value().parse().unwrap_or(args.images),
            "--batch" => args.batch = value().parse().unwrap_or(args.batch),
            "--classifier" => args.classifier = value(),
            "--tile" => args.tile = value(),
            "--plan" => args.plan = value(),
            "--max-queue" => args.max_queue = value().parse().unwrap_or(args.max_queue),
            "--no-verify" => args.verify = false,
            "--addr" => args.addr = value(),
            "--clients" => args.clients = value().parse().unwrap_or(args.clients),
            "--workers" => args.workers = value().parse().unwrap_or(args.workers),
            "--serve-mode" => args.serve_mode = value(),
            "--shutdown" => args.shutdown = true,
            "--cache-mb" => args.cache_mb = value().parse().unwrap_or(args.cache_mb),
            "--repeat-ratio" => args.repeat_ratio = value().parse().unwrap_or(args.repeat_ratio),
            "--pipeline" => args.pipeline = value().parse().unwrap_or(args.pipeline),
            "--expect-cache-hits" => args.expect_cache_hits = true,
            "--video" => args.video = true,
            "--change-rate" => args.change_rate = value().parse().unwrap_or(args.change_rate),
            "--addr-file" => args.addr_file = Some(PathBuf::from(value())),
            "--cache-persist" => args.cache_persist = Some(PathBuf::from(value())),
            "--fleet" => {
                args.fleet = value()
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--kill-one" => args.kill_one = true,
            "--retries" => args.retries = value().parse().unwrap_or(args.retries),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    args
}

fn run_table3(args: &Args, engine: &SegmentEngine) -> String {
    let config = Table3Config {
        voc_images: args.voc,
        xview_images: args.xview,
        image_size: args.size,
        seed: args.seed,
        backend: engine.backend(),
        ..Table3Config::default()
    };
    let summaries = tables::table3_run(&config);
    tables::table3_text(&summaries)
}

fn main() {
    let args = parse_args();
    let engine = match SegmentEngine::from_flags(&args.backend, args.threads) {
        Ok(engine) => engine,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let out = args.out_dir.as_deref();
    let report = match args.command.as_str() {
        "table1" => tables::table1_text(),
        "table2" => tables::table2_text(args.samples, args.seed),
        "table3" => run_table3(&args, &engine),
        "fig1-3" | "fig1" | "fig2" | "fig3" => figures::fig1_3_text(),
        "fig4" => figures::fig4_report(&engine, out),
        "fig5" => figures::fig5_report(&engine, out),
        "fig6" => figures::fig6_report(&engine, out),
        "fig7" => figures::fig7_report(&engine, out),
        "fig8" => figures::fig8_9_report(&engine, false, out, 30),
        "fig9" => figures::fig8_9_report(&engine, true, out, 30),
        "fig10" => figures::fig10_report(&engine, 30),
        "serve" => {
            let config = ServeCliConfig {
                addr: args.addr.clone(),
                plan: args.plan.clone(),
                classifier: args.classifier.clone(),
                tile: args.tile.clone(),
                backend: args.backend.clone(),
                threads: args.threads,
                workers: args.workers,
                max_queue: args.max_queue,
                serve_mode: args.serve_mode.clone(),
                cache_mb: args.cache_mb,
                addr_file: args.addr_file.clone(),
                cache_persist: args.cache_persist.clone(),
            };
            match service::serve_command(&config) {
                Ok(summary) => summary,
                Err(message) => {
                    eprintln!("{message}");
                    std::process::exit(2);
                }
            }
        }
        "loadgen" => {
            let config = LoadgenConfig {
                addr: args.addr.clone(),
                plan: args.plan.clone(),
                clients: args.clients,
                images: args.images,
                image_size: args.size,
                seed: args.seed,
                verify: args.verify,
                shutdown: args.shutdown,
                repeat_ratio: args.repeat_ratio,
                pipeline_depth: args.pipeline,
                expect_cache_hits: args.expect_cache_hits,
                video: args.video,
                change_rate: args.change_rate,
                fleet: args.fleet.clone(),
                kill_one: args.kill_one,
                ..LoadgenConfig::default()
            };
            match service::loadgen_report(&config) {
                Ok(report) => report,
                Err(message) => {
                    eprintln!("{message}");
                    std::process::exit(1);
                }
            }
        }
        "ping" => match service::ping_command(&args.addr, args.retries, 250) {
            Ok(report) => report,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(1);
            }
        },
        "throughput" => throughput::throughput_report(
            &engine,
            &ThroughputConfig {
                images: args.images,
                batch: args.batch,
                image_size: args.size,
                seed: args.seed,
                classifier: args.classifier.clone(),
                tile: args.tile.clone(),
                plan: args.plan.clone(),
                cache_mb: args.cache_mb,
                verify: args.verify,
                video: args.video,
                change_rate: args.change_rate,
            },
        ),
        "all" => {
            let mut all = String::new();
            all.push_str(&tables::table1_text());
            all.push('\n');
            all.push_str(&tables::table2_text(args.samples.min(20_000), args.seed));
            all.push('\n');
            let quick = Args {
                command: args.command.clone(),
                out_dir: args.out_dir.clone(),
                backend: args.backend.clone(),
                samples: args.samples,
                voc: args.voc.min(20),
                xview: args.xview.min(20),
                size: args.size.min(96),
                seed: args.seed,
                threads: args.threads,
                images: args.images,
                batch: args.batch,
                classifier: args.classifier.clone(),
                tile: args.tile.clone(),
                plan: args.plan.clone(),
                max_queue: args.max_queue,
                verify: args.verify,
                addr: args.addr.clone(),
                clients: args.clients,
                workers: args.workers,
                serve_mode: args.serve_mode.clone(),
                shutdown: args.shutdown,
                cache_mb: args.cache_mb,
                repeat_ratio: args.repeat_ratio,
                pipeline: args.pipeline,
                expect_cache_hits: args.expect_cache_hits,
                video: args.video,
                change_rate: args.change_rate,
                addr_file: args.addr_file.clone(),
                cache_persist: args.cache_persist.clone(),
                fleet: args.fleet.clone(),
                kill_one: args.kill_one,
                retries: args.retries,
            };
            all.push_str(&run_table3(&quick, &engine));
            all.push('\n');
            all.push_str(&figures::fig1_3_text());
            all.push('\n');
            all.push_str(&figures::fig4_report(&engine, out));
            all.push('\n');
            all.push_str(&figures::fig5_report(&engine, out));
            all.push('\n');
            all.push_str(&figures::fig6_report(&engine, out));
            all.push('\n');
            all.push_str(&figures::fig7_report(&engine, out));
            all.push('\n');
            all.push_str(&figures::fig8_9_report(&engine, false, out, 12));
            all.push('\n');
            all.push_str(&figures::fig8_9_report(&engine, true, out, 12));
            all.push('\n');
            all.push_str(&figures::fig10_report(&engine, 12));
            all.push('\n');
            all.push_str(&throughput::throughput_report(
                &engine,
                &ThroughputConfig {
                    images: args.images.min(16),
                    batch: args.batch.min(8),
                    image_size: args.size.min(96),
                    seed: args.seed,
                    classifier: args.classifier.clone(),
                    tile: args.tile.clone(),
                    cache_mb: 0,
                    verify: args.verify,
                    ..ThroughputConfig::default()
                },
            ));
            let untiled = matches!(
                seg_engine::Tiling::from_flag(&args.tile),
                Ok(seg_engine::Tiling::Whole)
            );
            if untiled {
                // `all` always exercises the tiled pipeline path too (with
                // its default-on byte-identity verification), even when the
                // user did not pass --tile.
                all.push('\n');
                all.push_str(&throughput::throughput_report(
                    &engine,
                    &ThroughputConfig {
                        images: args.images.min(16),
                        batch: args.batch.min(8),
                        image_size: args.size.min(96),
                        seed: args.seed,
                        classifier: args.classifier.clone(),
                        tile: "48x48".to_string(),
                        cache_mb: 0,
                        verify: args.verify,
                        ..ThroughputConfig::default()
                    },
                ));
            }
            // ... and the quantized SIMD classifier (whose default-on
            // verification doubles as the exactness-oracle check), even when
            // the user did not pass --classifier.
            let quantized = matches!(
                seg_engine::ClassifierKind::from_flag(&args.classifier),
                Ok(kind) if kind.is_quantized()
            );
            if !quantized {
                all.push('\n');
                all.push_str(&throughput::throughput_report(
                    &engine,
                    &ThroughputConfig {
                        images: args.images.min(16),
                        batch: args.batch.min(8),
                        image_size: args.size.min(96),
                        seed: args.seed,
                        classifier: "simd".to_string(),
                        tile: args.tile.clone(),
                        cache_mb: 0,
                        verify: args.verify,
                        ..ThroughputConfig::default()
                    },
                ));
            }
            // ... and the cached per-request serving path (byte-identity
            // verified the same way), even when the user did not pass
            // --cache-mb.
            all.push('\n');
            all.push_str(&throughput::throughput_report(
                &engine,
                &ThroughputConfig {
                    images: args.images.min(16),
                    batch: args.batch.min(8),
                    image_size: args.size.min(96),
                    seed: args.seed,
                    classifier: args.classifier.clone(),
                    tile: args.tile.clone(),
                    cache_mb: if args.cache_mb > 0 { args.cache_mb } else { 32 },
                    verify: args.verify,
                    ..ThroughputConfig::default()
                },
            ));
            // ... and the streaming-video per-tile delta path (stitched
            // byte-identity verified the same way).
            all.push('\n');
            all.push_str(&throughput::throughput_report(
                &engine,
                &ThroughputConfig {
                    images: args.images.min(8),
                    batch: args.batch.min(4),
                    image_size: args.size.min(128),
                    seed: args.seed,
                    classifier: args.classifier.clone(),
                    tile: "32x32".to_string(),
                    plan: String::new(),
                    cache_mb: if args.cache_mb > 0 { args.cache_mb } else { 32 },
                    verify: args.verify,
                    video: true,
                    change_rate: 0.25,
                },
            ));
            all
        }
        "" | "help" | "--help" | "-h" => {
            // The classifier set comes from ClassifierKind::FLAG_HELP — the
            // one place the workspace enumerates it — so this usage line can
            // never drift from what `--classifier` actually accepts.
            eprintln!(
                "usage: iqft-experiments <table1|table2|table3|fig1-3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|throughput|serve|loadgen|ping|all> [--out DIR] [--samples N] [--voc N] [--xview N] [--size S] [--seed S] [--backend serial|threads|rayon] [--threads N] [--images N] [--batch B] [--classifier {}] [--tile WxH] [--plan SPEC|auto] [--cache-mb M] [--no-verify] [--addr A] [--addr-file PATH] [--clients C] [--workers W] [--max-queue Q] [--serve-mode threads|evented] [--repeat-ratio R] [--pipeline K] [--expect-cache-hits] [--video] [--change-rate R] [--fleet A,A,...] [--kill-one] [--cache-persist PATH] [--retries N] [--shutdown]",
                seg_engine::ClassifierKind::FLAG_HELP
            );
            return;
        }
        other => {
            eprintln!("unknown subcommand '{other}'; run with --help for usage");
            std::process::exit(2);
        }
    };
    println!("{report}");
}
